# Dev recipes mirroring .github/workflows/ci.yml — keep the two in
# lockstep so "works locally" and "passes CI" mean the same thing.
# Usage: `just` lists recipes; `just verify` is the tier-1 gate.

# List available recipes.
default:
    @just --list

# Tier-1 verify (ROADMAP.md): release build + quiet workspace tests.
verify:
    cargo build --release
    cargo test -q --workspace

# Lints exactly as CI enforces them.
lint:
    cargo clippy --workspace --all-targets -- -D warnings
    cargo fmt --check

# Auto-fix formatting (lint's writable sibling).
fmt:
    cargo fmt

# Smoke-compile every criterion bench without running it.
bench-smoke:
    cargo bench --workspace --no-run

# Run the real benches (slow; criterion-shim timing output).
bench:
    cargo bench --workspace

# Engine-plane microbench (E0) → machine-readable JSON (full scale;
# BENCH_2.json at the repo root is the committed snapshot of this).
bench-json:
    cargo run --release -p bench --bin experiments -- --json bench.json E0

# End-to-end solve benches: the E0b session-vs-per-pass microbench
# (BENCH_4.json at the repo root is the committed full-scale snapshot)
# plus the criterion companion bench.
bench-solve:
    cargo run --release -p bench --bin experiments -- --json BENCH_4.json E0b
    cargo bench -p bench --bench solve_pipeline

# Throughput-mode serving benches: the E0c SolveService-vs-fresh
# microbench (BENCH_5.json at the repo root is the committed full-scale
# snapshot) plus the criterion companion bench.
bench-throughput:
    cargo run --release -p bench --bin experiments -- --json BENCH_5.json E0c
    cargo bench -p bench --bench solve_throughput

# Open-loop serving bench: the E0d fixed-arrival-rate sweep over the
# concurrent SolveServer (BENCH_6.json at the repo root is the committed
# full-scale snapshot) plus the criterion companion bench.
bench-server:
    cargo run --release -p bench --bin experiments -- --json BENCH_6.json E0d
    cargo bench -p bench --bench solve_throughput

# Chaos bench: the E0e fault-injection sweep (drop × delay × dup plans
# through the full pipeline; BENCH_7.json at the repo root is the
# committed full-scale snapshot). Its run asserts proper colorings and
# byte-identical transcripts across engine modes and threads {1, 2, 8}.
bench-chaos:
    cargo run --release -p bench --bin experiments -- --json BENCH_7.json E0e

# Sharding bench: the E0f ownership-sharding sweep (shards {1, 2, 4, 8}
# × threads {1, 2, 8} through the full pipeline; BENCH_8.json at the
# repo root is the committed full-scale snapshot). Its run asserts
# byte-identical transcripts across every cell and the owner/ghost
# engine's ≤2 barrier-waits/round budget (legacy engines: 4).
bench-sharding:
    cargo run --release -p bench --bin experiments -- --json BENCH_8.json E0f

# Crash bench: the E0g crash-chaos sweep (crash-rate × recovery-delay
# plans over the shards {1, 2, 4, 8} × threads {1, 2, 8} grid;
# BENCH_9.json at the repo root is the committed full-scale snapshot).
# Its run asserts proper colorings on the live graph and byte-identical
# transcripts across every geometry and all three engine generations
# before any timing is reported.
bench-crash:
    cargo run --release -p bench --bin experiments -- --json BENCH_9.json E0g

# Async bench: the E0h async-schedule sweep (jitter / straggler /
# anti-FIFO / burst schedule adversaries through the α-synchronizer,
# over the shards {1, 2, 4, 8} × threads {1, 2, 8} grid; BENCH_10.json
# at the repo root is the committed full-scale snapshot). Its run
# asserts byte-identical transcripts vs the synchronous engine,
# geometry-invariant overhead counters, and a loud ScheduleStalled on
# the wedged arm before any timing is reported.
bench-async:
    cargo run --release -p bench --bin experiments -- --json BENCH_10.json E0h

# Full-scale scenario sweep (S1–S6) → BENCH_3.json, the committed
# snapshot EXPERIMENTS.md's full-scale section is rendered from. Slow;
# rerun only when solver behaviour changes, then `just experiments-md`.
sweep-json:
    cargo run --release -p bench --bin experiments -- --sweep --json BENCH_3.json

# Regenerate EXPERIMENTS.md: a fresh quick-scale sweep (deterministic —
# no wall-clock data is rendered from it) + the committed BENCH_3.json.
# Byte-identical unless measured behaviour changed; CI fails on drift.
experiments-md:
    cargo run --release -p bench --bin experiments -- --sweep --quick --json target/sweep-quick.json
    cargo run --release -p bench --bin experiments -- --render-experiments EXPERIMENTS.md --from-full BENCH_3.json --from-quick target/sweep-quick.json

# Run every example end-to-end with its built-in tiny inputs.
examples:
    cargo run -q --release --example quickstart
    cargo run -q --release --example acd_explorer
    cargo run -q --release --example congestion_showdown
    cargo run -q --release --example sparsity_census
    cargo run -q --release --example triangle_monitor
    cargo run -q --release --example uniform_pipeline
    cargo run -q --release -p bench --bin experiments -- --quick E1

# Full generator × seed matrix (the nightly CI job), plus the
# fault-injection differentials and the shard-differential battery at
# nightly depth (PROPTEST_CASES is the repo-wide case-count knob; see
# tests/common/mod.rs).
test-slow:
    cargo test -q --workspace --features slow-tests
    PROPTEST_CASES=96 cargo test -q --test prop_invariants faulty_
    PROPTEST_CASES=96 cargo test -q --test prop_invariants sharded_
    PROPTEST_CASES=96 cargo test -q --test prop_invariants crashed_
    PROPTEST_CASES=96 cargo test -q --test prop_invariants async_

# Rustdoc exactly as CI enforces it (warnings are errors).
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Everything CI checks, in CI order.
ci: verify lint doc bench-smoke examples experiments-md
