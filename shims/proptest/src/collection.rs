//! Collection strategies: [`vec()`] and [`hash_set`].

use crate::strategy::Strategy;
use core::hash::Hash;
use core::ops::Range;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate vectors whose elements come from `element` and whose length is
/// uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = sample_len(&self.size, rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with target size drawn from `size`.
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate hash sets of elements from `element` with size uniform in
/// `size`. As in real proptest, duplicate draws are retried a bounded
/// number of times, so the set may come out smaller than the target when
/// the element domain is nearly exhausted.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let target = sample_len(&self.size, rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(16) + 16 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}

fn sample_len(size: &Range<usize>, rng: &mut StdRng) -> usize {
    if size.is_empty() {
        size.start
    } else {
        rng.gen_range(size.clone())
    }
}
