//! The [`Strategy`] trait and its primitive implementations.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// A recipe for generating values of `Self::Value` from a seeded RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut StdRng) -> f64 {
        self.clone().sample_from(rng)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut StdRng) -> f32 {
        self.clone().sample_from(rng)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($( ($($name:ident : $idx:tt),+) )*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "draw anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The "anything of type `T`" strategy: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
