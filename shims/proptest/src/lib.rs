//! Workspace-local stand-in for the [`proptest`] property-testing crate.
//!
//! Implements the slice of the proptest 1.x API used by this workspace's
//! test suite:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * [`ProptestConfig`] with a `cases` knob;
//! * [`Strategy`] implemented for integer/float ranges, tuples of
//!   strategies, [`any::<T>()`](any), and the [`collection`] combinators
//!   (`vec`, `hash_set`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the case index and the
//!   assertion message; inputs are regenerable from the deterministic seed.
//! * **Deterministic seeding.** Case `i` of test `f` derives its RNG from
//!   `hash(file, name, i)`, so failures reproduce exactly across runs —
//!   there is no persistence file because none is needed.
//! * **`prop_assume!` skips** the case rather than resampling; generators
//!   in this suite satisfy their assumptions overwhelmingly often.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use strategy::{any, Any, Arbitrary, Strategy};

/// Everything a `use proptest::prelude::*;` site expects.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Runtime configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject(String),
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

/// Deterministic per-case RNG: every case is reproducible from the test's
/// source location and case index.
pub fn case_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the identifying string, folded with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))
}

/// Drive one property: run `cases` deterministic cases of `run`,
/// panicking on the first failure. Called from `proptest!` expansions.
pub fn run_property(
    test_path: &str,
    config: &ProptestConfig,
    mut run: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let mut rng = case_rng(test_path, case);
        match run(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property {test_path} failed at case {case}/{}: {msg} \
                     (deterministic; rerun reproduces it)",
                    config.cases
                );
            }
        }
    }
    if rejected == config.cases && config.cases > 0 {
        panic!("property {test_path}: every case was rejected by prop_assume!");
    }
}

/// Assert a boolean condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are drawn from strategies via `pat in strat`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] — expands each property fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    concat!(file!(), "::", stringify!($name)),
                    &config,
                    |__prop_rng| {
                        $( let $arg = $crate::Strategy::new_value(&($strategy), __prop_rng); )+
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.5f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_collections_compose(
            pairs in crate::collection::vec((0u32..10, 0u32..10), 0..20),
            set in crate::collection::hash_set(0u64..1000, 1..50),
        ) {
            prop_assert!(pairs.len() < 20);
            prop_assert!(pairs.iter().all(|&(a, b)| a < 10 && b < 10));
            prop_assert!(!set.is_empty() && set.len() < 50);
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }

        #[test]
        fn any_draws_are_independent(a in any::<u64>(), b in any::<u64>()) {
            // Two draws from one case share an RNG stream but not a value;
            // a collision under 64 bits would indicate a stuck generator.
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::RngCore;
        let a = crate::case_rng("t", 3).next_u64();
        let b = crate::case_rng("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, crate::case_rng("t", 4).next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is small");
            }
        }
        always_fails();
    }
}
