//! Sequence helpers: the [`SliceRandom`] extension trait.

use crate::{RngCore, SampleRange};

/// Random operations on slices (`shuffle`, `choose`), mirroring
/// `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Pick a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_from(rng)])
        }
    }
}
