//! Minimal `rand::distributions` namespace: the [`Standard`] marker and a
//! [`Distribution`] trait, kept for source compatibility with call sites
//! that spell out `Standard.sample(&mut rng)`.

use crate::{RngCore, SampleStandard};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over the type for integers,
/// uniform in `[0, 1)` for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl<T: SampleStandard> Distribution<T> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}
