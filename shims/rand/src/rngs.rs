//! Concrete generators: [`StdRng`] and [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard pseudorandom generator: xoshiro256++ with the
/// state expanded from the seed by splitmix64 (the construction the
/// xoshiro authors recommend). Fast, 256-bit state, excellent statistical
/// quality for simulation workloads — and deterministic per seed, which is
/// the property every experiment in this repo relies on.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Mock generators for tests that need fully predictable words.
pub mod mock {
    use crate::RngCore;

    /// A "generator" that yields an arithmetic progression:
    /// `initial, initial + increment, initial + 2·increment, …`
    /// (wrapping). Mirrors `rand::rngs::mock::StepRng`.
    #[derive(Clone, Debug)]
    pub struct StepRng {
        v: u64,
        step: u64,
    }

    impl StepRng {
        /// Create a `StepRng` starting at `initial` and advancing by
        /// `increment` per call.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                v: initial,
                step: increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.v;
            self.v = self.v.wrapping_add(self.step);
            out
        }
    }
}
