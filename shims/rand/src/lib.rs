//! Workspace-local, dependency-free stand-in for the [`rand`] crate.
//!
//! The congest-coloring workspace is built in environments without access
//! to a crates registry, so this shim supplies the (small) slice of the
//! `rand` 0.8 API the codebase actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`, `fill_bytes`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a fast splitmix64-fed xoshiro256++ generator;
//! * [`rngs::mock::StepRng`] — the deterministic arithmetic-progression rng;
//! * [`seq::SliceRandom`] — `shuffle` / `choose`.
//!
//! Everything is deterministic given a seed; there is deliberately no
//! `thread_rng`/OS-entropy path, because the reproduction seeds every
//! experiment explicitly.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(10usize..20);
//! assert!((10..20).contains(&k));
//! ```
//!
//! [`rand`]: https://crates.io/crates/rand

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use core::ops::{Range, RangeInclusive};

/// The low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits (the high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution
    /// (uniform over the type for integers, uniform in `[0, 1)` for
    /// floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable by [`Rng::gen`].
pub trait SampleStandard {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Sample uniformly from `[0, width)` without modulo bias (widening
/// multiply, Lemire's method without the rejection step — the residual
/// bias is < 2⁻⁶⁴·width, far below anything observable here).
#[inline]
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * width) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard against FP rounding hitting the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(17usize..29);
            assert!((17..29).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let draws: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn step_rng_is_an_arithmetic_progression() {
        let mut rng = StepRng::new(42, 13);
        assert_eq!(rng.next_u64(), 42);
        assert_eq!(rng.next_u64(), 55);
        assert_eq!(rng.next_u64(), 68);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}
