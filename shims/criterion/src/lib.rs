//! Workspace-local, dependency-free stand-in for the [`criterion`]
//! benchmarking harness.
//!
//! The congest-coloring workspace builds in environments without registry
//! access, so this shim implements the subset of the criterion 0.5 API the
//! benches under `crates/bench/benches/` use:
//!
//! * [`Criterion::benchmark_group`] → [`BenchmarkGroup`] with chainable
//!   [`sample_size`](BenchmarkGroup::sample_size) /
//!   [`measurement_time`](BenchmarkGroup::measurement_time);
//! * [`BenchmarkGroup::bench_function`] and
//!   [`BenchmarkGroup::bench_with_input`] with [`BenchmarkId`];
//! * [`Bencher::iter`];
//! * the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark closure is warmed up once, then timed
//! for `sample_size` samples (default 10) or until `measurement_time` is
//! exhausted, whichever comes first; the median per-iteration wall time is
//! printed. This is intentionally simpler than criterion's bootstrap
//! statistics — the workspace uses these benches for smoke-compile checks
//! in CI (`cargo bench --no-run`) and for quick local comparisons, not for
//! publishable confidence intervals.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendered as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id of the form `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Build an id carrying only a parameter (criterion compatibility).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver; hands out [`BenchmarkGroup`]s.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A named collection of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Bound the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = dur;
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F, T: ?Sized>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            deadline: Instant::now() + self.measurement_time,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{id}: no samples collected", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{id}: median {:?} over {} samples",
            self.name,
            median,
            samples.len()
        );
    }

    /// Finish the group (marker for criterion source compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    deadline: Instant,
}

impl Bencher {
    /// Time `routine`, collecting up to the configured number of samples
    /// (bounded by the group's measurement time). The routine's output is
    /// passed through [`black_box`] so the optimizer cannot elide it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up run, untimed.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// Bundle benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running every listed group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_collects_samples_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("counting", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with-input", 5), &5u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // warm-up + up to 3 samples
        assert!(runs >= 2);
    }
}
