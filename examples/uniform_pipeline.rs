//! The §5 uniform toolkit, end to end.
//!
//! The paper's default algorithms are *non-uniform*: they assume shared
//! representative hash families that are only known to exist. Section 5
//! replaces them with explicit objects — pairwise-independent hashing,
//! averaging samplers, error-correcting codes — at polynomial local
//! computation. This example colors the same instance twice, once per
//! ACD variant, and compares outcomes.
//!
//! ```text
//! cargo run --release --example uniform_pipeline
//! ```

use congest_coloring::d1lc::{solve, SolveOptions};
use congest_coloring::graphs::gen;
use congest_coloring::graphs::palette::{check_coloring, random_lists};

fn main() {
    let (graph, _) = gen::planted_acd(3, 26, 0.05, 100, 0.05, 17);
    let lists = random_lists(&graph, 48, 0, 5);
    println!(
        "instance: n = {}, m = {}, Δ = {}, 48-bit color lists\n",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    let mut rows = Vec::new();
    for (label, uniform) in [
        ("representative-hash ACD", false),
        ("uniform ACD (§5)", true),
    ] {
        let opts = SolveOptions {
            uniform_acd: uniform,
            ..SolveOptions::seeded(3)
        };
        let r = solve(&graph, &lists, opts).expect("solve");
        check_coloring(&graph, &lists, &r.coloring).expect("proper coloring");
        let dense_colored: usize = r
            .stats
            .colored_by
            .iter()
            .filter(|(k, _)| {
                ["synch-trial", "put-aside", "slack-outliers", "slack-dense"].contains(k)
            })
            .map(|(_, v)| v)
            .sum();
        rows.push((
            label,
            r.rounds(),
            r.log.max_edge_bits(),
            dense_colored,
            r.stats.repairs,
        ));
    }

    println!(
        "{:<26} {:>7} {:>14} {:>18} {:>8}",
        "ACD variant", "rounds", "max bits/edge", "colored by dense", "repairs"
    );
    for (label, rounds, bits, dense, repairs) in rows {
        println!("{label:<26} {rounds:>7} {bits:>14} {dense:>18} {repairs:>8}");
    }
    println!(
        "\nboth variants produce proper colorings; the uniform one needs no\n\
         non-constructive advice — only pairwise hashing, samplers and codes\n\
         (Alg. 5–6), at polynomial local computation."
    );
}
