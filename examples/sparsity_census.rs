//! Sparsity census (Lemmas 4–5 as an application): every node estimates
//! its own local sparsity in four CONGEST rounds, and we compare the
//! estimates against exact ground truth.
//!
//! Sparsity drives the paper's coloring pipeline (sparse nodes receive
//! slack, dense nodes join almost-cliques), but it is also a useful
//! network statistic in its own right — e.g. for identifying nodes whose
//! neighborhoods are community-like versus hub-like.
//!
//! ```text
//! cargo run --release --example sparsity_census
//! ```

use congest_coloring::congest::SimConfig;
use congest_coloring::estimate::{estimate_sparsity, SimilarityScheme};
use congest_coloring::graphs::{analysis, gen, NodeId};

fn main() {
    // Half community structure, half random background.
    let graph = gen::clique_blend(
        gen::CliqueBlendParams {
            cliques: 3,
            clique_size: 25,
            removal: 0.05,
            sparse_nodes: 75,
            sparse_p: 0.12,
        },
        13,
    );
    let eps = 0.25;
    let (est, report) = estimate_sparsity(
        &graph,
        SimilarityScheme::practical(eps),
        SimConfig::seeded(3),
        29,
    )
    .expect("census run");
    println!(
        "census of {} nodes in {} rounds (max {} bits/edge/round)\n",
        graph.n(),
        report.rounds,
        report.max_edge_bits()
    );

    println!(
        "{:>5} {:>7} {:>10} {:>10} {:>8}",
        "node", "degree", "true ζ", "est ζ̂", "|err|/d"
    );
    let mut worst = 0.0f64;
    let mut shown = 0;
    for v in (0..graph.n()).step_by(graph.n() / 12) {
        let vid = v as NodeId;
        let d = graph.degree(vid);
        let truth = analysis::local_sparsity(&graph, vid);
        let e = est.local[v];
        let rel = (e - truth).abs() / d.max(1) as f64;
        worst = worst.max(rel);
        println!("{v:>5} {d:>7} {truth:>10.2} {e:>10.2} {rel:>8.3}");
        shown += 1;
    }
    println!("\n({shown} of {} nodes shown)", graph.n());

    // Aggregate accuracy across all nodes.
    let mut within = 0;
    for v in 0..graph.n() {
        let vid = v as NodeId;
        let d = graph.degree(vid).max(1) as f64;
        if (est.local[v] - analysis::local_sparsity(&graph, vid)).abs() <= eps * d {
            within += 1;
        }
    }
    println!(
        "{within}/{} nodes within the Lemma 5 bound ε·d_v (ε = {eps})",
        graph.n()
    );
}
