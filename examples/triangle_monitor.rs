//! Distributed triangle monitoring (Theorem 2 as an application).
//!
//! Scenario: a network wants every link to know — within O(1) rounds and
//! O(log n)-bit messages — whether it participates in many triangles
//! (e.g. dense peering clusters that deserve different routing policies).
//! We plant one triangle-rich edge in a noisy network and run the
//! detector of §3.4.
//!
//! ```text
//! cargo run --release --example triangle_monitor
//! ```

use congest_coloring::congest::SimConfig;
use congest_coloring::estimate::{find_triangle_rich_edges, SimilarityScheme};
use congest_coloring::graphs::{analysis, gen};

fn main() {
    let planted = 30;
    let graph = gen::triangle_rich(300, planted, 0.03, 11);
    let eps = 0.5;
    println!(
        "n = {}, m = {}, Δ = {}; edge (0,1) sits on exactly {planted} triangles",
        graph.n(),
        graph.m(),
        graph.max_degree()
    );

    let (report, run) = find_triangle_rich_edges(
        &graph,
        eps,
        SimilarityScheme::practical(0.25),
        SimConfig::seeded(5),
        17,
    )
    .expect("detector run");

    println!(
        "\ndetector finished in {} rounds, max {} bits on any edge",
        run.rounds,
        run.max_edge_bits()
    );
    println!("threshold εΔ = {:.1}; flagged edges:", report.threshold);
    for &(u, v) in &report.flagged {
        let truth = analysis::triangles_through_edge(&graph, u, v);
        println!("  ({u:>3},{v:>3})  true triangle count = {truth}");
    }
    assert!(
        report.flagged.contains(&(0, 1)),
        "the planted edge must be among the flags"
    );
    println!("\nplanted edge (0,1) detected ✓");
}
