//! Explore an almost-clique decomposition (§4.2) on a planted community
//! graph: who is dense/sparse/uneven, which cliques form, who leads them,
//! and which cliques are low-slack.
//!
//! ```text
//! cargo run --release --example acd_explorer
//! ```

use congest_coloring::congest::SimConfig;
use congest_coloring::d1lc::acd::compute_acd;
use congest_coloring::d1lc::driver::Driver;
use congest_coloring::d1lc::leader::select_leaders;
use congest_coloring::d1lc::pipeline::initial_states;
use congest_coloring::d1lc::{AcdClass, ParamProfile};
use congest_coloring::graphs::gen;
use congest_coloring::graphs::palette::degree_plus_one_lists;
use std::collections::BTreeMap;

fn main() {
    let (graph, truth) = gen::planted_acd(4, 20, 0.06, 80, 0.06, 21);
    println!(
        "planted: 4 cliques × 20 nodes + 80 background nodes (n = {}, Δ = {})\n",
        graph.n(),
        graph.max_degree()
    );

    let profile = ParamProfile::laptop();
    let lists = degree_plus_one_lists(&graph);
    let mut states = initial_states(&graph, &lists, &profile, 3);
    let mut driver = Driver::new(&graph, SimConfig::seeded(9));
    states = driver.activate(states, |_| true).expect("activate");
    states = compute_acd(&mut driver, states, &profile, 5).expect("acd");
    states = select_leaders(&mut driver, states, &profile, graph.max_degree()).expect("leaders");

    let mut class_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for st in &states {
        let label = match st.class {
            AcdClass::Dense => "dense",
            AcdClass::Sparse => "sparse",
            AcdClass::Uneven => "uneven",
            AcdClass::Unclassified => "unclassified",
        };
        *class_counts.entry(label).or_insert(0) += 1;
    }
    println!(
        "classification ({} rounds so far):",
        driver.log.total_rounds()
    );
    for (label, count) in &class_counts {
        println!("  {label:<12} {count}");
    }

    // Clique inventory.
    let mut cliques: BTreeMap<u32, (usize, Option<u32>, bool)> = BTreeMap::new();
    for st in &states {
        if let Some(c) = st.clique {
            let entry = cliques.entry(c).or_insert((0, None, false));
            entry.0 += 1;
            entry.1 = st.leader;
            entry.2 = st.low_slack_clique;
        }
    }
    println!("\nalmost-cliques found:");
    println!(
        "  {:<6} {:>5} {:>8} {:>10}",
        "hub", "size", "leader", "low-slack"
    );
    for (hub, (size, leader, low)) in &cliques {
        println!(
            "  {:<6} {:>5} {:>8} {:>10}",
            hub,
            size,
            leader.map_or("-".into(), |l| l.to_string()),
            low
        );
    }

    // How well did we recover the plant?
    let mut recovered = 0;
    let mut planted_members = 0;
    for (v, t) in truth.iter().enumerate() {
        if t.is_some() {
            planted_members += 1;
            if states[v].class == AcdClass::Dense {
                recovered += 1;
            }
        }
    }
    println!("\nplanted members classified dense: {recovered}/{planted_members}");
}
