//! Congestion showdown: why the paper exists.
//!
//! §4.1's claim: trying `x` colors at once takes `Θ(x·log|C|)` bits per
//! edge if you ship raw colors (the LOCAL approach), but only `O(log n)`
//! bits with a representative hash index plus a σ-bit window bitmap. We
//! measure both on the same graph: first a single trial operation of
//! `x = 32` colors, then the end-to-end pipelines.
//!
//! ```text
//! cargo run --release --example congestion_showdown
//! ```

use congest_coloring::congest::SimConfig;
use congest_coloring::d1lc::baseline::NaiveMultiTrialPass;
use congest_coloring::d1lc::driver::Driver;
use congest_coloring::d1lc::multitrial::MultiTrialPass;
use congest_coloring::d1lc::pipeline::initial_states;
use congest_coloring::d1lc::{solve, solve_naive_multitrial, ParamProfile, SolveOptions};
use congest_coloring::graphs::gen;
use congest_coloring::graphs::palette::{check_coloring, random_lists};

fn main() {
    let n = 1024;
    let graph = gen::gnp(n, 24.0 / n as f64, 3);
    let color_bits = 60;
    let lists = random_lists(&graph, color_bits, 4, 9);
    let bandwidth = SimConfig::congest_bits(n, 6); // "O(log n)" bits/edge/round
    println!(
        "n = {n}, Δ = {}, colors are {color_bits}-bit values, bandwidth = {bandwidth} bits/edge/round",
        graph.max_degree()
    );

    // --- One trial operation: try x = 32 colors on every node at once. ---
    let x = 32u32;
    let profile = ParamProfile::laptop();
    let make_states = || {
        let mut states = initial_states(&graph, &lists, &profile, 3);
        for st in &mut states {
            st.active = true;
            for a in &mut st.neighbor_active {
                *a = true;
            }
        }
        states
    };
    let mut driver = Driver::new(&graph, SimConfig::seeded(1));
    driver
        .run_pass("mt", make_states(), |st| {
            MultiTrialPass::new(st, x, profile, 42, n, "mt")
        })
        .expect("rep-hash pass");
    let ours_bits = driver.log.max_edge_bits();
    let mut driver = Driver::new(&graph, SimConfig::seeded(1));
    driver
        .run_pass("naive", make_states(), |st| {
            NaiveMultiTrialPass::new(st, x, color_bits)
        })
        .expect("naive pass");
    let naive_bits = driver.log.max_edge_bits();
    println!("\n-- one MultiTrial({x}) operation --");
    println!(
        "{:<40} {:>8} bits/edge",
        "representative hash + window bitmap", ours_bits
    );
    println!(
        "{:<40} {:>8} bits/edge",
        format!("naive ({x} raw {color_bits}-bit colors)"),
        naive_bits
    );
    println!(
        "{:<40} {:>8.1}x",
        "bandwidth advantage",
        naive_bits as f64 / ours_bits.max(1) as f64
    );

    // --- End to end (honesty check at laptop scale). ---
    let ours = solve(&graph, &lists, SolveOptions::seeded(1)).expect("solve");
    check_coloring(&graph, &lists, &ours.coloring).expect("proper");
    let naive = solve_naive_multitrial(&graph, &lists, 8, SolveOptions::seeded(1)).expect("naive");
    check_coloring(&graph, &lists, &naive.coloring).expect("proper");
    println!("\n-- end-to-end (laptop scale) --");
    println!("{:<40} {:>14} {:>14}", "", "pipeline (us)", "naive trials");
    println!(
        "{:<40} {:>14} {:>14}",
        "synchronous rounds",
        ours.rounds(),
        naive.rounds()
    );
    println!(
        "{:<40} {:>14} {:>14}",
        "max bits/edge/round",
        ours.log.max_edge_bits(),
        naive.log.max_edge_bits()
    );
    println!(
        "{:<40} {:>14} {:>14}",
        format!("normalized to {bandwidth}-bit messages"),
        ours.normalized_rounds(bandwidth),
        naive.normalized_rounds(bandwidth)
    );
    println!("\nnote: at n = {n} the pipeline's fixed pass structure dominates its round");
    println!("count — the asymptotic O(log^5 log n) vs O(log n) crossover lies beyond");
    println!("laptop scale. The per-edge bit costs above are the scale-free claim.");
}
