//! Quickstart: color a graph with the paper's CONGEST D1LC pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Also demonstrates the representative-hash set operators of Figures 1–2
//! (`A|_h^{≤σ}`, `A ∧_h^{≤σ} A`, `A ¬_h^{≤σ} A`).

use congest_coloring::d1lc::{solve, SolveOptions};
use congest_coloring::graphs::palette::{check_coloring, random_lists};
use congest_coloring::graphs::{analysis, gen};
use congest_coloring::prand::{RepHashFamily, RepParams};

fn main() {
    // 1. A workload: a blend of planted almost-cliques and sparse
    //    background, with 48-bit color lists (true list coloring — colors
    //    are far too wide to enumerate, which is what the paper's hashing
    //    machinery is for).
    let (graph, _truth) = gen::planted_acd(3, 24, 0.05, 120, 0.05, 42);
    let lists = random_lists(&graph, 48, 0, 7);
    println!(
        "graph: n = {}, m = {}, Δ = {}, avg degree = {:.1}",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        analysis::average_degree(&graph),
    );

    // 2. Solve the (degree+1)-list-coloring problem.
    let result = solve(&graph, &lists, SolveOptions::seeded(1)).expect("solve");
    check_coloring(&graph, &lists, &result.coloring).expect("proper coloring");
    println!("\ncolored every node in {} CONGEST rounds", result.rounds());
    println!(
        "max bits on any edge in any round: {}",
        result.log.max_edge_bits()
    );
    println!("phases run: {}", result.stats.phases);
    println!("central repairs needed: {}", result.stats.repairs);
    println!("\nwho colored whom:");
    for (pass, count) in &result.stats.colored_by {
        println!("  {pass:<20} {count}");
    }

    // 3. The paper's notation on a concrete example (Figures 1–2):
    //    a representative hash function h : U → [λ] with window [σ].
    let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, 96, 16);
    let family = RepHashFamily::new(0xfeed, params);
    let h = family.member(12);
    let a: Vec<u64> = (0..100).collect();
    let low = h.low(&a); // A|_h^{≤σ}
    let coll = h.colliding(&a, &a); // A ∧_h^{≤σ} A
    let iso = h.isolated(&a, &a); // A ¬_h^{≤σ} A
    println!(
        "\nFigure 1 demo (|A| = {}, λ = {}, σ = {}):",
        a.len(),
        params.lambda,
        params.sigma
    );
    println!(
        "  |A|_h^≤σ|   = {:>3}  (elements hashing into the window)",
        low.len()
    );
    println!(
        "  |A ∧_h A|   = {:>3}  (window elements in collision)",
        coll.len()
    );
    println!(
        "  |A ¬_h A|   = {:>3}  (window elements with unique hashes)",
        iso.len()
    );
    assert_eq!(low.len(), coll.len() + iso.len(), "the window partitions");
}
