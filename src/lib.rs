//! # congest-coloring
//!
//! A production-quality Rust reproduction of **"Overcoming Congestion in
//! Distributed Coloring"** (Halldórsson, Nolin, Tonoyan — PODC 2022,
//! arXiv:2205.14478).
//!
//! The paper introduces *representative hash functions* — small families of
//! hash functions that behave statistically like fully random ones — and
//! uses them to implement sampling and estimation primitives within the
//! `O(log n)`-bandwidth CONGEST model, culminating in an ultrafast
//! (degree+1)-list-coloring algorithm.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`congest`] — round-synchronous CONGEST simulator with per-edge
//!   bandwidth accounting;
//! * [`graphs`] — graph storage, workload generators, ground-truth analysis;
//! * [`prand`] — pseudorandomness toolkit: representative hash families
//!   (Lemma 1), pairwise-independent and universal hashing, averaging
//!   samplers, Reed–Solomon codes;
//! * [`estimate`] — §3 applications: `EstimateSimilarity`, `JointSample`,
//!   `EstimateSparsity`, local triangle/four-cycle finding;
//! * [`d1lc`] — §4–5 and the appendices: `MultiTrial`, almost-clique
//!   decomposition, `SlackColor`, the full D1LC pipeline (Theorem 1), the
//!   uniform implementations, and baselines.
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! system inventory.
//!
//! # Quickstart
//!
//! Generate a workload, run the Theorem 1 pipeline, and verify the result:
//!
//! ```
//! use congest_coloring::{d1lc, graphs};
//!
//! let graph = graphs::gen::gnp(120, 0.1, 1);
//! let lists = graphs::palette::random_lists(&graph, 48, 0, 2);
//! let result = d1lc::solve(&graph, &lists, d1lc::SolveOptions::seeded(3)).unwrap();
//! assert_eq!(
//!     graphs::palette::check_coloring(&graph, &lists, &result.coloring),
//!     Ok(())
//! );
//! assert!(result.rounds() > 0);
//! ```

#![warn(missing_docs)]

pub use congest;
pub use d1lc;
pub use estimate;
pub use graphs;
pub use prand;
