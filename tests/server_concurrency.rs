//! Interleaving tests for the concurrent serving stack: barrier-forced
//! races over the single-flight memo and the per-worker session
//! checkout/return paths, plus a duplicate-submission proptest.
//!
//! The repo has no loom dependency, so interleavings are *forced* the
//! portable way: `std::sync::Barrier` lines submitter threads up on the
//! exact race window (every thread submits the same key in the same
//! instant), and repetition covers the schedule space. The invariants
//! under test (see DESIGN.md §7):
//!
//! * **Single flight** — N concurrent submissions of one key cost at
//!   most one engine solve while the flight is open, and every submitter
//!   resolves to the *same* `Arc` (pointer identity, not just equality).
//! * **Checkout/return** — worker-resident cores survive arbitrary
//!   concurrent graph mixes: rebinds and same-graph rebinds interleave
//!   freely, and every response stays byte-identical to a one-shot
//!   solve.
//! * **Admission under contention** — a full queue with Reject sheds
//!   precisely; with Block it throttles and still serves everything.

use congest_coloring::d1lc::server::SolveServer;
use congest_coloring::d1lc::service::{Admission, ServeError, ServiceConfig, SolveRequest};
use congest_coloring::d1lc::{solve, SolveOptions};
use congest_coloring::graphs::palette::{random_lists, ListAssignment};
use congest_coloring::graphs::{gen, Graph};
use proptest::prelude::*;
use std::sync::{Arc, Barrier};
use std::thread;

fn instance(n: usize, seed: u64) -> (Arc<Graph>, Arc<ListAssignment>) {
    let graph = gen::gnp(n, 0.08, seed);
    let lists = random_lists(&graph, 32, 0, seed ^ 0x55);
    (Arc::new(graph), Arc::new(lists))
}

/// Barrier-forced single-flight: 8 threads submit the identical request
/// at the same instant; the server must run ONE engine solve and hand
/// all 8 the same `Arc`.
#[test]
fn concurrent_duplicates_share_one_flight() {
    let (g, lists) = instance(200, 1);
    for round in 0..8u64 {
        let config = ServiceConfig::builder().workers(2).build().unwrap();
        let server = SolveServer::start(config);
        let handle = server.handle();
        let barrier = Arc::new(Barrier::new(8));
        let results: Vec<_> = (0..8)
            .map(|_| {
                let handle = handle.clone();
                let barrier = Arc::clone(&barrier);
                let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(round));
                thread::spawn(move || {
                    barrier.wait();
                    handle.solve(req).expect("duplicate serves")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("submitter thread"))
            .collect();
        for other in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], other),
                "round {round}: duplicates must share one response Arc"
            );
        }
        let stats = server.stats();
        let engine_solves = stats.fresh_sessions + stats.rebinds + stats.same_graph_rebinds;
        assert_eq!(
            engine_solves, 1,
            "round {round}: concurrent duplicates must cost one engine solve \
             (stats: {stats:?})"
        );
        assert_eq!(stats.memo_hits + stats.dedup_joins, 7, "round {round}");
        assert_eq!(stats.completed, 8, "round {round}");
    }
}

/// Barrier-forced checkout/return: submitter threads race two graphs
/// through few workers (memo off, so every request runs the engine), so
/// resident cores are constantly rebound across topologies. Every
/// response must stay byte-identical to a one-shot solve.
#[test]
fn concurrent_checkout_return_stays_deterministic() {
    let (g1, l1) = instance(150, 2);
    let (g2, l2) = instance(90, 3);
    let direct = |req: &SolveRequest| solve(&req.graph, &req.lists, req.options).unwrap();
    let config = ServiceConfig::builder()
        .workers(2)
        .pool(2)
        .memo(0)
        .build()
        .unwrap();
    let server = SolveServer::start(config);
    let handle = server.handle();
    let barrier = Arc::new(Barrier::new(6));
    let threads: Vec<_> = (0..6u64)
        .map(|i| {
            let handle = handle.clone();
            let barrier = Arc::clone(&barrier);
            // Alternate graphs so cores bounce between topologies.
            let req = if i % 2 == 0 {
                SolveRequest::shared(&g1, &l1, SolveOptions::seeded(i))
            } else {
                SolveRequest::shared(&g2, &l2, SolveOptions::seeded(i))
            };
            thread::spawn(move || {
                barrier.wait();
                let served = handle.solve(req.clone()).expect("serves");
                (req, served)
            })
        })
        .collect();
    for t in threads {
        let (req, served) = t.join().expect("submitter thread");
        let reference = direct(&req);
        assert_eq!(served.coloring, reference.coloring);
        assert_eq!(served.log.passes(), reference.log.passes());
    }
    let stats = server.stats();
    assert_eq!(
        stats.fresh_sessions + stats.rebinds + stats.same_graph_rebinds,
        6,
        "memo off: every request runs the engine ({stats:?})"
    );
}

/// Admission under barrier-forced contention: Reject sheds the overflow
/// precisely (submitted = completed + rejected), Block serves everything.
#[test]
fn admission_contention_accounts_for_every_request() {
    let (g, lists) = instance(220, 4);
    for admission in [Admission::Reject, Admission::Block] {
        let config = ServiceConfig::builder()
            .workers(1)
            .queue(1)
            .memo(0)
            .admission(admission)
            .build()
            .unwrap();
        let server = SolveServer::start(config);
        let handle = server.handle();
        let barrier = Arc::new(Barrier::new(6));
        let outcomes: Vec<_> = (0..6u64)
            .map(|i| {
                let handle = handle.clone();
                let barrier = Arc::clone(&barrier);
                let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(i));
                thread::spawn(move || {
                    barrier.wait();
                    handle.solve(req)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("submitter thread"))
            .collect();
        let ok = outcomes.iter().filter(|o| o.is_ok()).count();
        let shed = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServeError::Overloaded { depth: 1 })))
            .count();
        assert_eq!(ok + shed, 6, "no request may vanish ({admission:?})");
        match admission {
            Admission::Block => assert_eq!(ok, 6, "Block admission serves everything"),
            Admission::Reject => {
                assert!(ok >= 1, "the queue always serves at least its depth")
            }
        }
        let stats = server.stats();
        assert_eq!(stats.submitted, 6);
        assert_eq!(stats.rejected as usize, shed);
        assert_eq!(stats.completed as usize, ok);
    }
}

/// PR-7 satellite: transient injected faults are absorbed by the retry
/// budget — a request whose fault plan aborts some attempts still
/// resolves its ticket with a proper coloring, the retries are counted,
/// and concurrent tickets under the same chaos all resolve.
#[test]
fn injected_faults_are_absorbed_by_retries() {
    let (g, lists) = instance(80, 5);
    // A per-round abort rate low enough that a re-rolled (re-salted)
    // attempt succeeds quickly, high enough that attempts do abort. All
    // of it is deterministic — for this seed, attempts 1-3 abort and
    // attempt 4 completes, every run of this test.
    let mut options = SolveOptions::seeded(4);
    options.sim.fault = congest_coloring::congest::FaultPlan::none().with_abort(0.02);
    let config = ServiceConfig::builder().workers(2).memo(0).build().unwrap();
    let server = SolveServer::start(config);
    let handle = server.handle();
    let tickets: Vec<_> = (0..4)
        .map(|_| handle.submit(SolveRequest::shared(&g, &lists, options).with_retry_limit(10)))
        .collect();
    for ticket in &tickets {
        let served = ticket.wait().expect("retries absorb the injected aborts");
        assert_eq!(
            congest_coloring::graphs::palette::check_coloring(&g, &lists, &served.coloring),
            Ok(()),
            "a retried solve must still be proper"
        );
    }
    let stats = server.stats();
    // Memo is off, so each of the 4 identical requests independently
    // burns the same deterministic 3 aborted attempts before recovering.
    assert_eq!(
        stats.retries, 12,
        "expected 3 deterministic retries per request ({stats:?})"
    );
    assert_eq!(
        stats.engine_errors, 0,
        "every request recovered ({stats:?})"
    );
    assert_eq!(stats.completed, 4);
}

/// PR-9 tentpole: a panicking worker is supervised. The victim ticket
/// resolves with `WorkerPanicked` (no hang), the worker's resident core
/// is quarantined (never returned to rotation), the supervisor respawns
/// the worker, and subsequent submissions serve byte-identical responses
/// — all visible through `HealthSnapshot`.
#[test]
fn worker_panic_is_supervised_and_resolves_every_ticket() {
    let (g, lists) = instance(90, 6);
    let config = ServiceConfig::builder()
        .workers(1)
        .pool(1)
        .memo(0)
        .build()
        .unwrap();
    let server = SolveServer::start(config);
    let handle = server.handle();
    assert_eq!(handle.health().live_workers, 1);

    // Warm the (single) worker's resident core with a normal solve.
    let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(11));
    let first = handle.solve(req.clone()).expect("serves before the panic");

    // Chaos: the next job panics the worker mid-service.
    let chaos = SolveRequest::shared(&g, &lists, SolveOptions::seeded(12)).with_chaos_panic();
    match handle.solve(chaos) {
        Err(ServeError::WorkerPanicked { worker: 0 }) => {}
        other => panic!("expected WorkerPanicked from worker 0, got {other:?}"),
    }

    // The respawned worker serves the identical request byte-for-byte
    // (from a cold core — the warm one was poisoned and discarded).
    let second = handle.solve(req).expect("serves after the respawn");
    assert_eq!(first.coloring, second.coloring);
    assert_eq!(first.log.passes(), second.log.passes());
    assert_eq!(first.stats, second.stats);

    let health = handle.health();
    assert_eq!(health.respawns, 1, "supervisor must respawn the worker");
    assert_eq!(
        health.quarantined_cores, 1,
        "the panicked worker's resident core must be quarantined"
    );
    assert_eq!(health.live_workers, 1, "the pool is back to strength");
    let stats = handle.stats();
    assert_eq!(
        stats.fresh_sessions, 2,
        "the replacement starts cold: both real solves build fresh ({stats:?})"
    );
}

/// Repeated panics: every chaos ticket resolves, every respawn counts,
/// and the server keeps serving between failures.
#[test]
fn repeated_panics_never_hang_tickets() {
    let (g, lists) = instance(60, 7);
    let config = ServiceConfig::builder().workers(2).memo(0).build().unwrap();
    let server = SolveServer::start(config);
    let handle = server.handle();
    for round in 0..3u64 {
        let chaos =
            SolveRequest::shared(&g, &lists, SolveOptions::seeded(round)).with_chaos_panic();
        assert!(
            matches!(handle.solve(chaos), Err(ServeError::WorkerPanicked { .. })),
            "round {round}"
        );
        let ok = handle
            .solve(SolveRequest::shared(
                &g,
                &lists,
                SolveOptions::seeded(100 + round),
            ))
            .expect("server keeps serving between panics");
        assert_eq!(
            congest_coloring::graphs::palette::check_coloring(&g, &lists, &ok.coloring),
            Ok(())
        );
    }
    let health = handle.health();
    assert_eq!(health.respawns, 3);
    assert_eq!(health.live_workers, 2);
}

/// PR-9 satellite (teardown regression): dropping the `SolveServer`
/// while tickets are outstanding must resolve every one of them promptly
/// — queued jobs fail `Closed`, nothing hangs — even with waiter threads
/// parked on the tickets from elsewhere.
#[test]
fn drop_with_outstanding_tickets_fails_closed_promptly() {
    let (g, lists) = instance(220, 8);
    let config = ServiceConfig::builder()
        .workers(1)
        .queue(16)
        .memo(0)
        .build()
        .unwrap();
    let server = SolveServer::start(config);
    let handle = server.handle();
    let tickets: Vec<_> = (0..8)
        .map(|i| handle.submit(SolveRequest::shared(&g, &lists, SolveOptions::seeded(i))))
        .collect();
    // Park waiter threads on the tail tickets BEFORE the drop: the old
    // drain-on-drop semantics would leave them blocked behind 8 solves;
    // the fix resolves them with `Closed` instead.
    let waiters: Vec<_> = tickets
        .iter()
        .skip(4)
        .map(|t| {
            let t = t.clone();
            thread::spawn(move || t.wait())
        })
        .collect();
    drop(server);
    let mut closed = 0;
    for ticket in &tickets {
        match ticket.try_result() {
            Some(Ok(_)) => {}
            Some(Err(ServeError::Closed)) => closed += 1,
            other => panic!("unresolved or unexpected ticket after drop: {other:?}"),
        }
    }
    assert!(closed > 0, "8 queued jobs cannot all finish before drop");
    for w in waiters {
        match w.join().expect("waiter thread") {
            Ok(_) | Err(ServeError::Closed) => {}
            other => panic!("parked waiter got {other:?}"),
        }
    }
    // Submissions through a surviving handle fail Closed immediately.
    let late = handle.solve(SolveRequest::shared(&g, &lists, SolveOptions::seeded(99)));
    assert_eq!(late.unwrap_err(), ServeError::Closed);
}

/// The wedged-solve watchdog escalates a solve that outlives its budget:
/// the ticket resolves with `DeadlineExceeded` carrying the watchdog
/// budget, and the worker survives to serve the next request.
#[test]
fn watchdog_escalates_wedged_solves() {
    use std::time::Duration;
    // Large instance + tiny budget: the solve cannot finish in 2ms, so
    // the watchdog cancels it at a pass boundary.
    let (g, lists) = instance(600, 9);
    let budget = Duration::from_millis(2);
    let config = ServiceConfig::builder()
        .workers(1)
        .memo(0)
        .watchdog(budget)
        .build()
        .unwrap();
    let server = SolveServer::start(config);
    let handle = server.handle();
    match handle.solve(SolveRequest::shared(&g, &lists, SolveOptions::seeded(1))) {
        Err(ServeError::DeadlineExceeded { deadline }) => assert_eq!(deadline, budget),
        other => panic!("expected watchdog escalation, got {other:?}"),
    }
    assert!(handle.stats().deadline_misses >= 1);
    // The worker is not wedged: a small request still serves.
    let (g2, l2) = instance(20, 10);
    handle
        .solve(SolveRequest::shared(&g2, &l2, SolveOptions::seeded(2)))
        .expect("small solve beats the watchdog");
}

/// Graceful degradation: with Block admission and `shed_after`, a queue
/// that stays full sheds blocked submitters instead of parking them
/// forever, and the shed count lands in `HealthSnapshot`.
#[test]
fn sustained_overload_sheds_blocked_submitters() {
    use std::time::Duration;
    let (g, lists) = instance(300, 11);
    let config = ServiceConfig::builder()
        .workers(1)
        .queue(1)
        .memo(0)
        .shed_after(Duration::from_millis(5))
        .build()
        .unwrap();
    let server = SolveServer::start(config);
    let handle = server.handle();
    // Flood from threads: 1 worker + depth-1 queue stay saturated far
    // longer than the 5ms shed threshold, so some blocked submitters
    // must shed.
    let outcomes: Vec<_> = (0..6u64)
        .map(|i| {
            let handle = handle.clone();
            let (g, lists) = (Arc::clone(&g), Arc::clone(&lists));
            thread::spawn(move || {
                handle.solve(SolveRequest::shared(&g, &lists, SolveOptions::seeded(i)))
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().expect("submitter thread"))
        .collect();
    let ok = outcomes.iter().filter(|o| o.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ServeError::Overloaded { depth: 1 })))
        .count();
    assert_eq!(ok + shed, 6, "no request may vanish");
    assert!(ok >= 1, "the queue still serves");
    assert!(shed >= 1, "sustained overload must shed someone");
    assert_eq!(handle.health().shed as usize, shed);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// PR-6 satellite: concurrent submission of N duplicates of a random
    /// request yields ONE engine solve and N pointer-identical `Arc`
    /// responses, for any worker count, submitter count, and queue depth.
    #[test]
    fn duplicate_submissions_cost_one_solve(
        n in 16usize..160,
        p in 0.02f64..0.15,
        gseed in 0u64..500,
        lseed in 0u64..500,
        seed in 0u64..500,
        workers_idx in 0usize..3,
        submitters in 2usize..9,
        queue_idx in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][workers_idx];
        let queue = [1usize, 4, 64][queue_idx];
        let graph = Arc::new(gen::gnp(n, p, gseed));
        let lists = Arc::new(random_lists(&graph, 32, 0, lseed));
        let config = ServiceConfig::builder()
            .workers(workers)
            .queue(queue)
            .build()
            .expect("valid config");
        let server = SolveServer::start(config);
        let handle = server.handle();
        let barrier = Arc::new(Barrier::new(submitters));
        let results: Vec<_> = (0..submitters)
            .map(|_| {
                let handle = handle.clone();
                let barrier = Arc::clone(&barrier);
                let req = SolveRequest::shared(&graph, &lists, SolveOptions::seeded(seed));
                thread::spawn(move || {
                    barrier.wait();
                    handle.solve(req).expect("duplicate serves")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().expect("submitter thread"))
            .collect();
        for other in &results[1..] {
            prop_assert!(
                Arc::ptr_eq(&results[0], other),
                "duplicates must share one response Arc (workers={}, queue={})",
                workers,
                queue
            );
        }
        let stats = server.stats();
        let engine_solves = stats.fresh_sessions + stats.rebinds + stats.same_graph_rebinds;
        prop_assert!(
            engine_solves == 1,
            "expected one engine solve, stats: {:?}",
            stats
        );
        // The response is the one-shot result, byte for byte.
        let direct = solve(&graph, &lists, SolveOptions::seeded(seed)).expect("one-shot");
        prop_assert!(results[0].coloring == direct.coloring);
        prop_assert!(results[0].log.passes() == direct.log.passes());
    }
}
