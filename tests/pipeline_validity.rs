//! End-to-end validity matrix: the D1LC pipeline must output a proper
//! list-coloring on every generator × list-regime × seed combination.

use congest_coloring::d1lc::{solve, SolveOptions};
use congest_coloring::graphs::palette::{
    check_coloring, degree_plus_one_lists, delta_plus_one_lists, random_lists, shared_window_lists,
    ListAssignment,
};
use congest_coloring::graphs::{gen, Graph};

fn instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp-sparse", gen::gnp(180, 0.05, 1)),
        ("gnp-mid", gen::gnp(150, 0.15, 2)),
        ("gnp-dense", gen::gnp(90, 0.5, 3)),
        ("cycle", gen::cycle(120)),
        ("path", gen::path(80)),
        ("star", gen::star(60)),
        ("complete", gen::complete(48)),
        ("grid", gen::grid(10, 12)),
        ("bipartite", gen::complete_bipartite(20, 25)),
        ("cliques", gen::disjoint_cliques(4, 18)),
        ("blend", gen::clique_blend(Default::default(), 4)),
        ("chung-lu", gen::chung_lu(150, 2.3, 8.0, 5)),
        ("hub-spokes", gen::hub_and_spokes(4, 25, 6)),
        ("min-degree", gen::gnp_min_degree(140, 0.1, 20, 7)),
        ("regular", gen::random_regular(120, 8, 9)),
    ]
}

fn list_regimes(g: &Graph, seed: u64) -> Vec<(&'static str, ListAssignment)> {
    let mut regimes = vec![
        ("d1c", degree_plus_one_lists(g)),
        ("delta1", delta_plus_one_lists(g)),
        ("random48", random_lists(g, 48, 0, seed)),
        ("random60-extra", random_lists(g, 60, 3, seed ^ 1)),
    ];
    if g.n() > 0 {
        let window = g.max_degree() as u64 + 6;
        regimes.push(("window", shared_window_lists(g, window, seed ^ 2)));
    }
    regimes
}

#[test]
fn every_instance_and_regime_colors_properly() {
    for (gname, g) in instances() {
        for (lname, lists) in list_regimes(&g, 11) {
            let result = solve(&g, &lists, SolveOptions::seeded(5))
                .unwrap_or_else(|e| panic!("{gname}/{lname}: {e}"));
            assert_eq!(
                check_coloring(&g, &lists, &result.coloring),
                Ok(()),
                "{gname}/{lname}"
            );
        }
    }
}

/// The full generator × list-regime × seed matrix. Too slow for every CI
/// run, so it is gated: `cargo test --features slow-tests` (or
/// `cargo test -- --ignored`) runs it; plain `cargo test -q` skips it.
#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "large generator × seed matrix; run with --features slow-tests or -- --ignored"
)]
fn full_matrix_across_seeds_colors_properly() {
    for (gname, g) in instances() {
        for list_seed in [11u64, 29, 47] {
            for (lname, lists) in list_regimes(&g, list_seed) {
                for solve_seed in 0..4 {
                    let result = solve(&g, &lists, SolveOptions::seeded(solve_seed))
                        .unwrap_or_else(|e| panic!("{gname}/{lname}/seed{solve_seed}: {e}"));
                    assert_eq!(
                        check_coloring(&g, &lists, &result.coloring),
                        Ok(()),
                        "{gname}/{lname}/seed{solve_seed}"
                    );
                }
            }
        }
    }
}

#[test]
fn multiple_seeds_never_break_validity() {
    let g = gen::clique_blend(Default::default(), 9);
    let lists = random_lists(&g, 48, 0, 3);
    for seed in 0..8 {
        let result = solve(&g, &lists, SolveOptions::seeded(seed)).expect("solve");
        assert_eq!(
            check_coloring(&g, &lists, &result.coloring),
            Ok(()),
            "seed {seed}"
        );
    }
}

#[test]
fn same_seed_is_fully_deterministic() {
    let g = gen::gnp(130, 0.12, 8);
    let lists = random_lists(&g, 48, 0, 6);
    let a = solve(&g, &lists, SolveOptions::seeded(17)).expect("solve");
    let b = solve(&g, &lists, SolveOptions::seeded(17)).expect("solve");
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.rounds(), b.rounds());
    assert_eq!(a.log.total_bits(), b.log.total_bits());
    assert_eq!(a.stats.repairs, b.stats.repairs);
}

#[test]
fn distributed_pipeline_rarely_needs_repair() {
    // Across a spread of instances, the distributed passes (not the
    // central repair) must do the coloring.
    let mut total_nodes = 0usize;
    let mut total_repairs = 0usize;
    for (_, g) in instances() {
        let lists = degree_plus_one_lists(&g);
        let r = solve(&g, &lists, SolveOptions::seeded(2)).expect("solve");
        total_nodes += g.n();
        total_repairs += r.stats.repairs;
    }
    assert!(
        total_repairs * 100 <= total_nodes,
        "{total_repairs} repairs over {total_nodes} nodes"
    );
}

#[test]
fn paper_profile_formulas_compose() {
    // The paper profile is not meant to color laptop graphs well, but the
    // pipeline must still terminate with a valid coloring (cleanup + the
    // shattering path absorb everything the asymptotic constants break).
    let g = gen::gnp(100, 0.1, 3);
    let lists = degree_plus_one_lists(&g);
    let opts = SolveOptions {
        profile: congest_coloring::d1lc::ParamProfile::paper(),
        ..SolveOptions::seeded(3)
    };
    let result = solve(&g, &lists, opts).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &result.coloring), Ok(()));
}

#[test]
fn multithreaded_engine_matches_sequential() {
    let g = gen::gnp(400, 0.05, 4);
    let lists = degree_plus_one_lists(&g);
    let seq = SolveOptions::seeded(9);
    let par = SolveOptions {
        sim: congest_coloring::congest::SimConfig {
            threads: 4,
            ..congest_coloring::congest::SimConfig::default()
        },
        ..SolveOptions::seeded(9)
    };
    let a = solve(&g, &lists, seq).expect("sequential");
    let b = solve(&g, &lists, par).expect("parallel");
    assert_eq!(
        a.coloring, b.coloring,
        "thread count must not change results"
    );
}
