//! Cross-system checks: different solvers on the same instance, estimators
//! against exact ground truth, and the uniform implementations against the
//! non-uniform ones.

use congest_coloring::congest::SimConfig;
use congest_coloring::d1lc::{
    greedy_oracle, solve, solve_naive_multitrial, solve_random_trial, SolveOptions,
};
use congest_coloring::estimate::{
    estimate_similarity, exact_intersection, run_neighborhood_similarity, SimilarityScheme,
};
use congest_coloring::graphs::palette::{check_coloring, degree_plus_one_lists, random_lists};
use congest_coloring::graphs::{analysis, gen, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn three_solvers_one_instance() {
    let g = gen::clique_blend(Default::default(), 6);
    let lists = random_lists(&g, 40, 0, 2);
    let a = solve(&g, &lists, SolveOptions::seeded(1)).expect("pipeline");
    let b = solve_random_trial(&g, &lists, SolveOptions::seeded(1)).expect("baseline");
    let c = solve_naive_multitrial(&g, &lists, 6, SolveOptions::seeded(1)).expect("naive");
    let d = greedy_oracle(&g, &lists);
    for (name, coloring) in [
        ("pipeline", &a.coloring),
        ("baseline", &b.coloring),
        ("naive", &c.coloring),
        ("greedy", &d),
    ] {
        assert_eq!(check_coloring(&g, &lists, coloring), Ok(()), "{name}");
    }
}

#[test]
fn similarity_estimates_track_exact_intersections() {
    // Statistical: mean absolute error across overlaps stays within the
    // ε·max bound on average.
    let scheme = SimilarityScheme::practical(0.25);
    let size = 500u64;
    for overlap_frac in [0.0f64, 0.3, 0.7, 1.0] {
        let shift = ((1.0 - overlap_frac) * size as f64) as u64;
        let su: Vec<u64> = (0..size).collect();
        let sv: Vec<u64> = (shift..shift + size).collect();
        let truth = exact_intersection(&su, &sv) as f64;
        let mut total_err = 0.0;
        let trials = 30u64;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(t);
            let out = estimate_similarity(&scheme, &su, &sv, 9, &mut rng);
            total_err += (out.estimate - truth).abs();
        }
        let mean_err = total_err / trials as f64;
        assert!(
            mean_err <= 0.25 * size as f64,
            "overlap {overlap_frac}: mean error {mean_err}"
        );
    }
}

#[test]
fn protocol_estimates_match_standalone_estimates_statistically() {
    // The CONGEST per-edge protocol and the standalone two-party function
    // implement the same Alg. 1; on a clique their estimates must both
    // concentrate around the true overlap.
    let g = gen::complete(20);
    let scheme = SimilarityScheme::practical(0.25);
    let (est, _) =
        run_neighborhood_similarity(&g, scheme, SimConfig::seeded(3), 5).expect("protocol");
    let truth = 18.0; // |N(u) ∩ N(v)| in K20
    let mut protocol_mean = 0.0;
    let mut count = 0.0;
    for row in est.iter().take(g.n()) {
        for &e in row {
            protocol_mean += e;
            count += 1.0;
        }
    }
    protocol_mean /= count;
    assert!(
        (protocol_mean - truth).abs() <= 0.25 * 19.0,
        "protocol mean {protocol_mean} vs truth {truth}"
    );
}

#[test]
fn sparsity_estimator_ranks_nodes_like_ground_truth() {
    // The estimator need not be exact, but it must order "clique member"
    // vs "random node" correctly on average — that ordering is what the
    // ACD consumes.
    let g = gen::clique_blend(
        gen::CliqueBlendParams {
            cliques: 2,
            clique_size: 25,
            removal: 0.03,
            sparse_nodes: 50,
            sparse_p: 0.15,
        },
        8,
    );
    let (est, _) = congest_coloring::estimate::estimate_sparsity(
        &g,
        SimilarityScheme::practical(0.25),
        SimConfig::seeded(4),
        11,
    )
    .expect("sparsity");
    let member_mean: f64 = (0..50)
        .map(|v| est.local[v] / g.degree(v as NodeId) as f64)
        .sum::<f64>()
        / 50.0;
    let bg_mean: f64 = (50..100)
        .map(|v| est.local[v] / g.degree(v as NodeId).max(1) as f64)
        .sum::<f64>()
        / 50.0;
    assert!(
        member_mean < bg_mean,
        "clique members ζ̂/d = {member_mean:.3} should be below background {bg_mean:.3}"
    );
}

#[test]
fn pipeline_beats_baseline_on_palette_frugality() {
    // Not a paper claim, just a sanity cross-check that both produce
    // sensible colorings: the number of *distinct* colors used is at most
    // Δ+1-ish for D1C lists for both solvers.
    let g = gen::gnp(150, 0.1, 5);
    let lists = degree_plus_one_lists(&g);
    for (name, coloring) in [
        (
            "pipeline",
            solve(&g, &lists, SolveOptions::seeded(3))
                .expect("solve")
                .coloring,
        ),
        (
            "baseline",
            solve_random_trial(&g, &lists, SolveOptions::seeded(3))
                .expect("baseline")
                .coloring,
        ),
    ] {
        let distinct: std::collections::HashSet<u64> = coloring.iter().copied().collect();
        assert!(
            distinct.len() <= g.max_degree() + 1,
            "{name} used {} distinct colors with Δ = {}",
            distinct.len(),
            g.max_degree()
        );
    }
}

#[test]
fn triangle_detector_agrees_with_exact_counts() {
    let g = gen::triangle_rich(200, 25, 0.02, 7);
    let (rep, _) = congest_coloring::estimate::find_triangle_rich_edges(
        &g,
        0.5,
        SimilarityScheme::practical(0.25),
        SimConfig::seeded(2),
        13,
    )
    .expect("detector");
    // Every flagged edge must have a nontrivial exact count (≥ εΔ/4 — the
    // detector's gray zone is a factor 2 below the threshold).
    for &(u, v) in &rep.flagged {
        let exact = analysis::triangles_through_edge(&g, u, v) as f64;
        assert!(
            exact >= rep.threshold / 4.0,
            "edge ({u},{v}) flagged with only {exact} triangles"
        );
    }
}
