//! Helpers shared by the integration-test binaries (`mod common;`).

/// Case count for a property block: the per-push default, or the
/// `PROPTEST_CASES` environment override when set.
///
/// `PROPTEST_CASES` is the repo's single documented knob for scaling
/// every property battery at once — the nightly slow-matrix CI job sets
/// it to run the differential suites at much greater depth, and local
/// soak runs can do the same (`PROPTEST_CASES=200 cargo test -q`).
/// The pre-consolidation spelling `FAULT_PROPTEST_CASES` is honored as
/// a fallback so existing scripts keep working.
pub fn proptest_cases(default_cases: u32) -> u32 {
    ["PROPTEST_CASES", "FAULT_PROPTEST_CASES"]
        .iter()
        .find_map(|var| std::env::var(var).ok()?.trim().parse().ok())
        .unwrap_or(default_cases)
}
