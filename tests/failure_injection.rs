//! Failure injection and adversarial edge cases: degenerate graphs,
//! minimal lists, hostile list structure, bandwidth faults, lossy /
//! delayed / duplicated messaging under a [`FaultPlan`], and hostile
//! asynchronous schedules under a [`SchedulePlan`].

use congest_coloring::congest::{Bandwidth, FaultPlan, SchedulePlan, SimConfig, SimError};
use congest_coloring::d1lc::{solve, SolveOptions};
use congest_coloring::graphs::palette::{check_coloring, degree_plus_one_lists, ListAssignment};
use congest_coloring::graphs::{gen, Color, GraphBuilder};

#[test]
fn degenerate_graphs() {
    for g in [
        gen::path(0),                 // empty
        gen::path(1),                 // singleton
        gen::path(2),                 // one edge
        GraphBuilder::new(7).build(), // isolated nodes
    ] {
        let lists = degree_plus_one_lists(&g);
        let r = solve(&g, &lists, SolveOptions::seeded(1)).expect("solve");
        assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    }
}

#[test]
fn disconnected_components_color_independently() {
    let mut b = GraphBuilder::new(30);
    // Three disjoint structures: a clique, a cycle, a path.
    for i in 0..10u32 {
        for j in (i + 1)..10 {
            b.add_edge(i, j);
        }
    }
    for i in 10..19u32 {
        b.add_edge(i, i + 1);
    }
    b.add_edge(19, 10);
    for i in 20..29u32 {
        b.add_edge(i, i + 1);
    }
    let g = b.build();
    let lists = degree_plus_one_lists(&g);
    let r = solve(&g, &lists, SolveOptions::seeded(4)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
}

#[test]
fn exactly_minimal_lists_on_a_clique() {
    // K_n with exactly n colors shared by everyone: the unique-ish hardest
    // D1C instance (every color must be used exactly once).
    let g = gen::complete(20);
    let lists = degree_plus_one_lists(&g);
    let r = solve(&g, &lists, SolveOptions::seeded(6)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    let distinct: std::collections::HashSet<Color> = r.coloring.iter().copied().collect();
    assert_eq!(distinct.len(), 20, "a K20 needs all 20 colors");
}

#[test]
fn adversarial_interval_lists() {
    // Node v gets the interval [v, v + d_v]: heavy asymmetric overlap.
    let g = gen::gnp(100, 0.1, 3);
    let lists: Vec<Vec<Color>> = (0..g.n())
        .map(|v| {
            let d = g.degree(v as u32) as u64;
            (v as u64..=v as u64 + d).collect()
        })
        .collect();
    let lists = ListAssignment::new(lists, 32);
    assert!(lists.is_degree_plus_one(&g));
    let r = solve(&g, &lists, SolveOptions::seeded(8)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
}

#[test]
fn colors_at_the_top_of_the_space() {
    // Colors near 2^63: no overflow in hashing or scale-up paths.
    let g = gen::cycle(24);
    let base = (1u64 << 62) - 100;
    let lists: Vec<Vec<Color>> = (0..g.n())
        .map(|v| {
            (0..3)
                .map(|i| base + (v as u64 * 7 + i * 13) % 90)
                .collect()
        })
        .collect();
    let lists = ListAssignment::new(lists, 63);
    assert!(lists.is_degree_plus_one(&g));
    let r = solve(&g, &lists, SolveOptions::seeded(9)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
}

#[test]
fn tight_bandwidth_fails_loud_not_wrong() {
    // With an absurdly small strict cap the engine must return an error —
    // never a silently truncated (and thus possibly improper) run. The
    // variant matters: this is a deterministic bandwidth violation, not a
    // transient fault the serving layer would burn retries on.
    let g = gen::gnp(64, 0.2, 2);
    let lists = degree_plus_one_lists(&g);
    let opts = SolveOptions {
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(4),
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(1)
    };
    let err = solve(&g, &lists, opts).expect_err("a 4-bit cap must overflow");
    assert!(
        matches!(err, SimError::BandwidthExceeded { limit: 4, .. }),
        "expected BandwidthExceeded, got {err:?}"
    );
    assert!(
        !err.is_transient(),
        "a strict cap violation is deterministic"
    );
}

#[test]
fn oversized_lists_only_help() {
    let g = gen::gnp(80, 0.15, 5);
    let generous: Vec<Vec<Color>> = (0..g.n())
        .map(|v| {
            (0..(3 * g.degree(v as u32) as u64 + 5))
                .map(|i| i * 3)
                .collect()
        })
        .collect();
    let lists = ListAssignment::new(generous, 16);
    let r = solve(&g, &lists, SolveOptions::seeded(2)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    assert_eq!(
        r.stats.repairs, 0,
        "generous lists should never need repair"
    );
}

#[test]
#[should_panic(expected = "deg+1")]
fn undersized_lists_are_rejected_up_front() {
    let g = gen::complete(5);
    let lists = ListAssignment::new(vec![vec![1, 2]; 5], 8);
    let _ = solve(&g, &lists, SolveOptions::seeded(1));
}

/// Options with an active fault plan and a small per-pass round cap —
/// heavily faulted passes stall waiting for lost replies, so the cap is
/// what bounds them (recovery happens in the repair sweep either way).
fn faulty_opts(seed: u64, plan: FaultPlan) -> SolveOptions {
    SolveOptions {
        sim: SimConfig {
            fault: plan,
            max_rounds: 200,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(seed)
    }
}

#[test]
fn lossy_network_still_colors_properly_at_any_drop_rate() {
    // Detect-and-repair must hold the proper-coloring guarantee at every
    // drop rate — up to and including the network that delivers nothing.
    let g = gen::gnp(64, 0.12, 21);
    let lists = degree_plus_one_lists(&g);
    for rate in [0.05, 0.3, 0.7, 0.95, 1.0] {
        let r = solve(&g, &lists, faulty_opts(5, FaultPlan::lossy(rate))).expect("solve");
        assert_eq!(
            check_coloring(&g, &lists, &r.coloring),
            Ok(()),
            "improper coloring at drop rate {rate}"
        );
    }
    // A heavy loss rate must actually have perturbed the run: the fault
    // counters prove injection happened (no silent no-op plans).
    let r = solve(&g, &lists, faulty_opts(5, FaultPlan::lossy(0.7))).expect("solve");
    assert!(r.log.fault_totals().dropped > 0, "no drops recorded at 0.7");
    assert!(!r.log.starved_union().is_empty(), "no starved nodes at 0.7");
}

#[test]
fn crashed_nodes_still_color_properly_at_any_crash_rate() {
    // Quarantine-and-recolor must hold the proper-coloring guarantee at
    // every crash rate — up to and including every node crash-stopping
    // at round 0 (the fully-silent network: nothing colors in-protocol,
    // the repair sweep colors everything centrally).
    let g = gen::gnp(64, 0.12, 23);
    let lists = degree_plus_one_lists(&g);
    for (rate, recovery) in [(0.01, 0), (0.05, 3), (0.3, 2), (1.0, 1), (1.0, 0)] {
        let plan = FaultPlan::none().with_crashes(rate, recovery);
        let r = solve(&g, &lists, faulty_opts(7, plan)).expect("solve");
        assert_eq!(
            check_coloring(&g, &lists, &r.coloring),
            Ok(()),
            "improper coloring at crash rate {rate} recovery {recovery}"
        );
    }
    // A moderate recovery plan must actually have crashed nodes — the
    // counters and the quarantine stat prove the path was exercised.
    let plan = FaultPlan::none().with_crashes(0.05, 3);
    let r = solve(&g, &lists, faulty_opts(7, plan)).expect("solve");
    assert!(r.log.fault_totals().crashes > 0, "no crash events recorded");
    assert!(!r.log.crashed_union().is_empty(), "no crashed nodes listed");
    assert!(
        r.stats.quarantined > 0,
        "recovered nodes re-colored in-protocol should still be quarantined"
    );
}

#[test]
fn crashes_compose_with_message_faults() {
    // Crash fates stack on top of drop/delay/dup: all streams fire, the
    // coloring stays proper, and the run is reproducible.
    let g = gen::gnp(72, 0.1, 24);
    let lists = degree_plus_one_lists(&g);
    let plan = FaultPlan::lossy(0.2)
        .with_delay(0.2, 3)
        .with_dup(0.2)
        .with_crashes(0.02, 2);
    let r = solve(&g, &lists, faulty_opts(8, plan)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    let totals = r.log.fault_totals();
    assert!(totals.dropped > 0 && totals.delayed > 0 && totals.duplicated > 0);
    assert!(totals.crashes > 0, "crash stream never fired");
    let again = solve(&g, &lists, faulty_opts(8, plan)).expect("solve");
    assert_eq!(r.coloring, again.coloring, "crashed solve not reproducible");
    assert_eq!(r.log.passes(), again.log.passes());
}

#[test]
fn fatal_crash_plans_fail_loud_with_transient_errors() {
    // `with_fatal_crashes` turns the first crash into `NodeCrashed`;
    // `with_quorum` turns losing too many nodes into `QuorumLost`. Both
    // are transient (a re-salted retry rolls new fates), unlike a strict
    // bandwidth violation.
    let g = gen::gnp(48, 0.15, 25);
    let lists = degree_plus_one_lists(&g);
    let fatal = FaultPlan::none().with_crashes(0.3, 0).with_fatal_crashes();
    let err = solve(&g, &lists, faulty_opts(9, fatal)).expect_err("a 0.3 rate must crash someone");
    assert!(
        matches!(err, SimError::NodeCrashed { .. }),
        "expected NodeCrashed, got {err:?}"
    );
    assert!(err.is_transient(), "crash faults are transient");
    let quorum = FaultPlan::none().with_crashes(1.0, 0).with_quorum(40);
    let err = solve(&g, &lists, faulty_opts(9, quorum)).expect_err("all nodes down loses quorum");
    assert!(
        matches!(err, SimError::QuorumLost { quorum: 40, .. }),
        "expected QuorumLost, got {err:?}"
    );
    assert!(err.is_transient());
}

/// Options with an active schedule adversary (optionally composed with a
/// fault plan): the α-synchronizer absorbs the asynchrony, so the solve
/// must behave exactly like its synchronous twin.
fn async_opts(seed: u64, sched: SchedulePlan, plan: FaultPlan) -> SolveOptions {
    SolveOptions {
        sim: SimConfig {
            fault: plan,
            sched,
            max_rounds: 200,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(seed)
    }
}

#[test]
fn schedule_adversaries_never_change_the_coloring() {
    // Jitter, stragglers, anti-FIFO edges, and skewed starts all at
    // once, on top of a lossy network: the synchronizer pays pulses and
    // sync traffic (visible in the pass log) but the coloring, stats,
    // and fault counters are byte-identical to the synchronous run.
    let g = gen::gnp(72, 0.1, 26);
    let lists = degree_plus_one_lists(&g);
    let sched = SchedulePlan::jittery(0.3, 3)
        .with_stragglers(0.1, 4)
        .with_antififo(0.2, 4)
        .with_start_spread(2)
        .with_patience(64);
    let plan = FaultPlan::lossy(0.1).with_delay(0.2, 3);
    let sync = solve(&g, &lists, async_opts(10, SchedulePlan::none(), plan)).expect("solve");
    let async_run = solve(&g, &lists, async_opts(10, sched, plan)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &async_run.coloring), Ok(()));
    assert_eq!(
        sync.coloring, async_run.coloring,
        "adversary changed the coloring"
    );
    assert_eq!(sync.stats, async_run.stats, "adversary changed the stats");
    let overhead = async_run.log.sched_totals();
    assert!(overhead.pulses > 0, "active adversary recorded no pulses");
    assert!(overhead.sync_bits > 0, "synchronizer traffic never counted");
    assert!(
        !sync.log.sched_totals().any(),
        "synchronous run counted overhead"
    );
}

#[test]
fn wedged_schedules_fail_loud_not_wrong() {
    // A certain burst longer than the watchdog's patience wedges every
    // run of the plan. The engine must surface `ScheduleStalled` — never
    // a silently wrong or spinning run — and the error is deterministic,
    // so the serving layer must not classify it as transient (a verbatim
    // retry stalls identically). Raising the patience, not retrying, is
    // what makes progress.
    let g = gen::gnp(48, 0.15, 27);
    let lists = degree_plus_one_lists(&g);
    let wedged = SchedulePlan::none().with_bursts(1.0, 6).with_patience(2);
    let err = solve(&g, &lists, async_opts(11, wedged, FaultPlan::none()))
        .expect_err("a 6-pulse burst must trip a 2-pulse watchdog");
    assert!(
        matches!(err, SimError::ScheduleStalled { .. }),
        "expected ScheduleStalled, got {err:?}"
    );
    assert!(
        !err.is_transient(),
        "schedules are pure functions of (seed, plan): retries cannot help"
    );
    let patient = wedged.with_patience(16);
    let r = solve(&g, &lists, async_opts(11, patient, FaultPlan::none()))
        .expect("patience above the burst length completes");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    assert!(
        r.log.sched_totals().max_wait >= 3,
        "burst waits not recorded"
    );
}

#[test]
fn delayed_and_duplicated_messages_are_absorbed() {
    let g = gen::gnp(72, 0.1, 22);
    let lists = degree_plus_one_lists(&g);
    let plan = FaultPlan::none().with_delay(0.4, 3).with_dup(0.4);
    let r = solve(&g, &lists, faulty_opts(6, plan)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    let totals = r.log.fault_totals();
    assert!(totals.delayed > 0, "delay stream never fired");
    assert!(totals.duplicated > 0, "dup stream never fired");
}

#[test]
fn truncating_network_survives_a_strict_cap() {
    // The same cap that fails loud above is survivable when the plan
    // models truncation: payloads are clipped to the cap (and counted)
    // instead of aborting, and repair covers the information loss.
    let g = gen::gnp(64, 0.2, 2);
    let lists = degree_plus_one_lists(&g);
    let opts = SolveOptions {
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(4),
            fault: FaultPlan::none().with_truncate(),
            max_rounds: 200,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(1)
    };
    let r = solve(&g, &lists, opts).expect("truncation absorbs the cap");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    assert!(r.log.fault_totals().truncated > 0, "nothing was clipped");
}

#[test]
fn max_rounds_cap_degrades_gracefully() {
    // An extremely small round cap leaves passes incomplete; the repair
    // sweep must still deliver a proper coloring.
    let g = gen::gnp(60, 0.2, 7);
    let lists = degree_plus_one_lists(&g);
    let opts = SolveOptions {
        sim: SimConfig {
            max_rounds: 1,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(3)
    };
    let r = solve(&g, &lists, opts).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    assert!(
        r.stats.repairs > 0,
        "with 1-round passes the repair sweep must fire"
    );
}
