//! Failure injection and adversarial edge cases: degenerate graphs,
//! minimal lists, hostile list structure, bandwidth faults.

use congest_coloring::congest::{Bandwidth, SimConfig};
use congest_coloring::d1lc::{solve, SolveOptions};
use congest_coloring::graphs::palette::{check_coloring, degree_plus_one_lists, ListAssignment};
use congest_coloring::graphs::{gen, Color, GraphBuilder};

#[test]
fn degenerate_graphs() {
    for g in [
        gen::path(0),                 // empty
        gen::path(1),                 // singleton
        gen::path(2),                 // one edge
        GraphBuilder::new(7).build(), // isolated nodes
    ] {
        let lists = degree_plus_one_lists(&g);
        let r = solve(&g, &lists, SolveOptions::seeded(1)).expect("solve");
        assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    }
}

#[test]
fn disconnected_components_color_independently() {
    let mut b = GraphBuilder::new(30);
    // Three disjoint structures: a clique, a cycle, a path.
    for i in 0..10u32 {
        for j in (i + 1)..10 {
            b.add_edge(i, j);
        }
    }
    for i in 10..19u32 {
        b.add_edge(i, i + 1);
    }
    b.add_edge(19, 10);
    for i in 20..29u32 {
        b.add_edge(i, i + 1);
    }
    let g = b.build();
    let lists = degree_plus_one_lists(&g);
    let r = solve(&g, &lists, SolveOptions::seeded(4)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
}

#[test]
fn exactly_minimal_lists_on_a_clique() {
    // K_n with exactly n colors shared by everyone: the unique-ish hardest
    // D1C instance (every color must be used exactly once).
    let g = gen::complete(20);
    let lists = degree_plus_one_lists(&g);
    let r = solve(&g, &lists, SolveOptions::seeded(6)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    let distinct: std::collections::HashSet<Color> = r.coloring.iter().copied().collect();
    assert_eq!(distinct.len(), 20, "a K20 needs all 20 colors");
}

#[test]
fn adversarial_interval_lists() {
    // Node v gets the interval [v, v + d_v]: heavy asymmetric overlap.
    let g = gen::gnp(100, 0.1, 3);
    let lists: Vec<Vec<Color>> = (0..g.n())
        .map(|v| {
            let d = g.degree(v as u32) as u64;
            (v as u64..=v as u64 + d).collect()
        })
        .collect();
    let lists = ListAssignment::new(lists, 32);
    assert!(lists.is_degree_plus_one(&g));
    let r = solve(&g, &lists, SolveOptions::seeded(8)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
}

#[test]
fn colors_at_the_top_of_the_space() {
    // Colors near 2^63: no overflow in hashing or scale-up paths.
    let g = gen::cycle(24);
    let base = (1u64 << 62) - 100;
    let lists: Vec<Vec<Color>> = (0..g.n())
        .map(|v| {
            (0..3)
                .map(|i| base + (v as u64 * 7 + i * 13) % 90)
                .collect()
        })
        .collect();
    let lists = ListAssignment::new(lists, 63);
    assert!(lists.is_degree_plus_one(&g));
    let r = solve(&g, &lists, SolveOptions::seeded(9)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
}

#[test]
fn tight_bandwidth_fails_loud_not_wrong() {
    // With an absurdly small strict cap the engine must return an error —
    // never a silently truncated (and thus possibly improper) run.
    let g = gen::gnp(64, 0.2, 2);
    let lists = degree_plus_one_lists(&g);
    let opts = SolveOptions {
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(4),
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(1)
    };
    assert!(solve(&g, &lists, opts).is_err());
}

#[test]
fn oversized_lists_only_help() {
    let g = gen::gnp(80, 0.15, 5);
    let generous: Vec<Vec<Color>> = (0..g.n())
        .map(|v| {
            (0..(3 * g.degree(v as u32) as u64 + 5))
                .map(|i| i * 3)
                .collect()
        })
        .collect();
    let lists = ListAssignment::new(generous, 16);
    let r = solve(&g, &lists, SolveOptions::seeded(2)).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    assert_eq!(
        r.stats.repairs, 0,
        "generous lists should never need repair"
    );
}

#[test]
#[should_panic(expected = "deg+1")]
fn undersized_lists_are_rejected_up_front() {
    let g = gen::complete(5);
    let lists = ListAssignment::new(vec![vec![1, 2]; 5], 8);
    let _ = solve(&g, &lists, SolveOptions::seeded(1));
}

#[test]
fn max_rounds_cap_degrades_gracefully() {
    // An extremely small round cap leaves passes incomplete; the repair
    // sweep must still deliver a proper coloring.
    let g = gen::gnp(60, 0.2, 7);
    let lists = degree_plus_one_lists(&g);
    let opts = SolveOptions {
        sim: SimConfig {
            max_rounds: 1,
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(3)
    };
    let r = solve(&g, &lists, opts).expect("solve");
    assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
    assert!(
        r.stats.repairs > 0,
        "with 1-round passes the repair sweep must fire"
    );
}
