//! CONGEST legality: under a strict bandwidth policy the engine rejects
//! any pass that puts more than the cap on one edge in one round. These
//! tests *prove* our protocols fit in `O(log n)`-bit messages (with the
//! practical profile's constants) and that the LOCAL-style baseline does
//! not.

use congest_coloring::congest::{Bandwidth, SimConfig};
use congest_coloring::d1lc::{solve, solve_naive_multitrial, solve_random_trial, SolveOptions};
use congest_coloring::estimate::{
    find_four_cycle_rich_wedges, find_triangle_rich_edges, run_neighborhood_similarity,
    SimilarityScheme,
};
use congest_coloring::graphs::gen;
use congest_coloring::graphs::palette::{check_coloring, random_lists};

/// The practical-profile cap: our largest messages are the σ-capped
/// signatures/bitmaps (≤ 512 bits) plus small headers. As a multiple of
/// log₂ n this is the O(log n) claim with an explicit constant.
fn strict_cap(n: usize) -> u64 {
    SimConfig::congest_bits(n, 64)
}

#[test]
fn full_pipeline_is_congest_legal_under_strict_cap() {
    let n = 512;
    let g = gen::gnp(n, 24.0 / n as f64, 3);
    let lists = random_lists(&g, 60, 0, 7);
    let opts = SolveOptions {
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(strict_cap(n)),
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(5)
    };
    let result = solve(&g, &lists, opts).expect("pipeline exceeded the strict bandwidth cap");
    assert_eq!(check_coloring(&g, &lists, &result.coloring), Ok(()));
}

#[test]
fn blend_pipeline_is_congest_legal() {
    let g = gen::clique_blend(Default::default(), 11);
    let lists = random_lists(&g, 48, 0, 3);
    let opts = SolveOptions {
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(strict_cap(g.n())),
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(7)
    };
    let result = solve(&g, &lists, opts).expect("dense machinery exceeded the cap");
    assert_eq!(check_coloring(&g, &lists, &result.coloring), Ok(()));
}

#[test]
fn uniform_acd_pipeline_is_congest_legal() {
    // The §5 path: explicit hashing + samplers + ECC, same O(log n) cap.
    let g = gen::clique_blend(Default::default(), 13);
    let lists = random_lists(&g, 48, 0, 9);
    let opts = SolveOptions {
        uniform_acd: true,
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(strict_cap(g.n())),
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(11)
    };
    let result = solve(&g, &lists, opts).expect("uniform pipeline exceeded the cap");
    assert_eq!(check_coloring(&g, &lists, &result.coloring), Ok(()));
}

#[test]
fn baseline_random_trial_is_congest_legal() {
    let n = 256;
    let g = gen::gnp(n, 0.08, 9);
    let lists = random_lists(&g, 48, 0, 5);
    let opts = SolveOptions {
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(strict_cap(n)),
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(1)
    };
    solve_random_trial(&g, &lists, opts).expect("one color per round fits trivially");
}

#[test]
fn naive_multitrial_blows_the_cap() {
    let n = 256;
    let g = gen::gnp(n, 0.1, 2);
    let lists = random_lists(&g, 60, 0, 3);
    let opts = SolveOptions {
        sim: SimConfig {
            bandwidth: Bandwidth::Strict(strict_cap(n)),
            ..SimConfig::default()
        },
        ..SolveOptions::seeded(1)
    };
    // 32 raw 60-bit colors = 1920 bits > 64·log₂(256) = 512.
    let result = solve_naive_multitrial(&g, &lists, 32, opts);
    assert!(
        result.is_err(),
        "the LOCAL-style baseline should violate CONGEST"
    );
}

#[test]
fn estimation_protocols_are_congest_legal() {
    let n = 200;
    let g = gen::gnp(n, 0.1, 4);
    let cfg = SimConfig {
        bandwidth: Bandwidth::Strict(strict_cap(n)),
        ..SimConfig::seeded(3)
    };
    // The standalone protocols use Lemma 2's honest ε⁻⁴-scale windows,
    // which exceed 64·log n for small ε; run them at the coarse ε used in
    // protocols (the cap then holds).
    let scheme = SimilarityScheme {
        sigma_cap: 384,
        ..SimilarityScheme::practical(0.25)
    };
    run_neighborhood_similarity(&g, scheme, cfg, 7).expect("similarity protocol");
    find_triangle_rich_edges(&g, 0.5, scheme, cfg, 9).expect("triangle protocol");
}

#[test]
fn four_cycle_detector_fits_wider_cap() {
    // Theorem 3's messages are σ-bit signatures; with the practical σ=512
    // they fit a 64·log n cap at n = 512.
    let g = gen::four_cycle_rich(300, 20, 0.02, 5);
    let cfg = SimConfig {
        bandwidth: Bandwidth::Strict(strict_cap(512)),
        ..SimConfig::seeded(2)
    };
    find_four_cycle_rich_wedges(&g, 0.5, cfg, 3).expect("four-cycle protocol");
}
