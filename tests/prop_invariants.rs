//! Property-based invariants across the whole stack.

mod common;
use common::proptest_cases;

use congest_coloring::d1lc::{greedy_oracle, solve, SolveOptions};
use congest_coloring::graphs::palette::{check_coloring, random_lists, ListAssignment};
use congest_coloring::graphs::{gen, GraphBuilder};
use congest_coloring::prand::{IdCode, PairwiseFamily, ReedSolomon, RepHashFamily, RepParams};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any random graph + random (deg+1)-lists + any seed yields a proper
    /// coloring — the repo's master invariant.
    #[test]
    fn solve_is_always_proper(
        n in 2usize..60,
        p in 0.0f64..0.6,
        gseed in 0u64..1000,
        lseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let g = gen::gnp(n, p, gseed);
        let lists = random_lists(&g, 32, 0, lseed);
        let result = solve(&g, &lists, SolveOptions::seeded(seed)).expect("solve");
        prop_assert_eq!(check_coloring(&g, &lists, &result.coloring), Ok(()));
    }

    /// The greedy oracle is proper on arbitrary edge sets.
    #[test]
    fn greedy_oracle_is_proper(edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120)) {
        let mut b = GraphBuilder::new(40);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let lists = congest_coloring::graphs::palette::degree_plus_one_lists(&g);
        let coloring = greedy_oracle(&g, &lists);
        prop_assert_eq!(check_coloring(&g, &lists, &coloring), Ok(()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Proposition 1 on random sets: the window partitions into colliding
    /// and isolated parts; the collision image is at most half its
    /// preimage; isolated images are injective when A ⊆ B.
    #[test]
    fn proposition_1_laws(
        raw in proptest::collection::hash_set(0u64..100_000, 1..200),
        member in 0u64..1024,
        extra in proptest::collection::hash_set(0u64..100_000, 0..100),
    ) {
        let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 900, 128, 10);
        let h = RepHashFamily::new(0xabcd, params).member(member);
        let mut a: Vec<u64> = raw.iter().copied().collect();
        a.sort_unstable();
        let mut b: Vec<u64> = raw.union(&extra).copied().collect();
        b.sort_unstable();

        // Partition law.
        let low: HashSet<u64> = h.low(&a).into_iter().collect();
        let coll: HashSet<u64> = h.colliding(&a, &a).into_iter().collect();
        let iso: HashSet<u64> = h.isolated(&a, &a).into_iter().collect();
        prop_assert!(coll.is_disjoint(&iso));
        let union: HashSet<u64> = coll.union(&iso).copied().collect();
        prop_assert_eq!(&union, &low);

        // Eq. (1): |h(A ∧ A)| ≤ |A ∧ A| / 2.
        let img: HashSet<u64> = coll.iter().map(|&x| h.hash(x)).collect();
        prop_assert!(2 * img.len() <= coll.len());

        // Eq. (2): A ⊆ B ⇒ |h(A ¬ B)| = |A ¬ B|.
        let iso_b = h.isolated(&a, &b);
        let img_b: HashSet<u64> = iso_b.iter().map(|&x| h.hash(x)).collect();
        prop_assert_eq!(img_b.len(), iso_b.len());

        // Eq. (3): monotonicity — A ∧ A ⊆ A ∧ B, A ¬ B ⊆ A ¬ A.
        let coll_b: HashSet<u64> = h.colliding(&a, &b).into_iter().collect();
        prop_assert!(coll.is_subset(&coll_b));
        let iso_b_set: HashSet<u64> = iso_b.into_iter().collect();
        prop_assert!(iso_b_set.is_subset(&iso));
    }

    /// Reed–Solomon distance on random message pairs.
    #[test]
    fn rs_distance_always_holds(m1 in any::<u64>(), m2 in any::<u64>()) {
        prop_assume!(m1 != m2);
        let rs = ReedSolomon::new(24, 8);
        let (a, b) = (rs.encode(&m1.to_le_bytes()), rs.encode(&m2.to_le_bytes()));
        let d = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        prop_assert!(d >= rs.distance());
    }

    /// Concatenated identifier code distance on random id pairs.
    #[test]
    fn id_code_distance_always_holds(id1 in any::<u64>(), id2 in any::<u64>()) {
        prop_assume!(id1 != id2);
        let code = IdCode::new();
        let d = IdCode::hamming(&code.encode(id1), &code.encode(id2));
        prop_assert!(d >= code.min_distance_bits());
    }

    /// Pairwise hashes stay in range and members are deterministic.
    #[test]
    fn pairwise_hash_in_range(
        lambda in 1u64..1_000_000,
        index_bits in 1u32..16,
        x in any::<u64>(),
    ) {
        let f = PairwiseFamily::new(99, lambda, index_bits);
        let h = f.member(f.family_size() - 1);
        prop_assert!(h.hash(x) < lambda);
        prop_assert_eq!(h.hash(x), f.member(f.family_size() - 1).hash(x));
    }

    /// List assignments survive roundtrips and validity checks reject
    /// corrupted colorings.
    #[test]
    fn corrupted_colorings_are_rejected(
        n in 2usize..40,
        p in 0.1f64..0.6,
        seed in 0u64..500,
        victim in 0usize..40,
    ) {
        let g = gen::gnp(n, p, seed);
        prop_assume!(g.m() > 0);
        let lists: ListAssignment =
            congest_coloring::graphs::palette::degree_plus_one_lists(&g);
        let mut coloring = greedy_oracle(&g, &lists);
        // Corrupt one endpoint of some edge to its neighbor's color.
        let (u, v) = g.edges().next().expect("m > 0");
        let victim = if victim % 2 == 0 { u } else { v };
        let other = if victim == u { v } else { u };
        coloring[victim as usize] = coloring[other as usize];
        prop_assert!(check_coloring(&g, &lists, &coloring).is_err());
    }
}

/// Differential harness for the engine's mailbox plane (PR 2): a chatty
/// protocol that uses both plane lanes, per-node randomness, and uneven
/// termination, run on the CSR mailbox plane across thread counts and on
/// the pre-PR reference plane. Everything observable must agree.
mod plane_vs_reference {
    use congest_coloring::congest::reference::run_reference;
    use congest_coloring::congest::{self, Ctx, Message, Program, SimConfig};
    use congest_coloring::graphs::{gen, Graph, NodeId};
    use rand::Rng;

    #[derive(Clone, PartialEq, Debug)]
    pub struct Note(pub u64);

    impl Message for Note {
        fn bit_cost(&self) -> u64 {
            24
        }
    }

    /// Each round: record the full inbox into a running transcript hash,
    /// then (pseudo-randomly, per-node) broadcast, send to a random
    /// subset of neighbors in a rotated order, or both interleaved.
    /// Nodes finish after `id % 7 + 3` active rounds, so done/undone
    /// nodes coexist.
    #[derive(Clone)]
    pub struct Chatter {
        pub transcript: u64,
        pub left: u32,
        pub done: bool,
    }

    impl Program for Chatter {
        type Msg = Note;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Note>) {
            if self.done {
                return;
            }
            for &(u, Note(x)) in ctx.inbox() {
                self.transcript = self
                    .transcript
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(x ^ (u64::from(u) << 32));
            }
            if self.left == 0 {
                self.done = true;
                return;
            }
            self.left -= 1;
            let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
            let style = ctx.rng().gen_range(0u32..4);
            let payload = Note(self.transcript ^ u64::from(ctx.id()));
            match style {
                0 => ctx.broadcast(payload),
                1 => {
                    // Rotated targeted sends (shuffled destination order).
                    let rot = ctx.rng().gen_range(0..neighbors.len().max(1));
                    for i in 0..neighbors.len() {
                        let w = neighbors[(i + rot) % neighbors.len()];
                        ctx.send(w, Note(payload.0.wrapping_add(i as u64)));
                    }
                }
                2 => {
                    // Both lanes interleaved, duplicates included.
                    if let Some(&w) = neighbors.first() {
                        ctx.send(w, Note(payload.0 ^ 1));
                    }
                    ctx.broadcast(payload.clone());
                    if let Some(&w) = neighbors.last() {
                        ctx.send(w, Note(payload.0 ^ 2));
                        ctx.send(w, Note(payload.0 ^ 3));
                    }
                }
                _ => {} // silent round
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    pub fn chatter_programs(n: usize) -> Vec<Chatter> {
        (0..n)
            .map(|v| Chatter {
                transcript: 0,
                left: (v % 7 + 3) as u32,
                done: false,
            })
            .collect()
    }

    pub fn graph_for(kind: usize, n: usize, p: f64, seed: u64) -> Graph {
        match kind % 5 {
            0 => gen::gnp(n, p, seed),
            1 => gen::cycle(n),
            2 => gen::complete(n.min(60)),
            3 => gen::grid(n / 8 + 1, 8),
            4 => gen::chung_lu(n, 2.5, 8.0, seed),
            _ => unreachable!(),
        }
    }

    pub fn assert_planes_agree(graph: &Graph, seed: u64) -> Result<(), String> {
        assert_planes_agree_under(graph, seed, congest::FaultPlan::none())
    }

    /// The same three-way differential under an arbitrary fault plan:
    /// the legacy reference plane, the per-pass mailbox sweep, and the
    /// session engine at threads {1, 2, 8} must produce identical
    /// transcripts and identical `RunReport`s — including the fault
    /// counters and the starved-receiver list the plan generates.
    pub fn assert_planes_agree_under(
        graph: &Graph,
        seed: u64,
        plan: congest::FaultPlan,
    ) -> Result<(), String> {
        let n = graph.n();
        let cfg = SimConfig {
            fault: plan,
            ..SimConfig::seeded(seed)
        };
        let (ref_progs, ref_report) =
            run_reference(graph, chatter_programs(n), cfg).map_err(|e| format!("{e:?}"))?;
        let (sweep_progs, sweep_report) =
            congest::reference::run_mailbox_sweep(graph, chatter_programs(n), cfg)
                .map_err(|e| format!("{e:?}"))?;
        if sweep_report != ref_report {
            return Err("RunReport diverged: sweep vs reference".into());
        }
        for (v, (a, b)) in sweep_progs.iter().zip(&ref_progs).enumerate() {
            if a.transcript != b.transcript {
                return Err(format!(
                    "transcript diverged at node {v}: sweep vs reference"
                ));
            }
        }
        for threads in [1usize, 2, 8] {
            let cfg = SimConfig { threads, ..cfg };
            let (progs, report) =
                congest::run(graph, chatter_programs(n), cfg).map_err(|e| format!("{e:?}"))?;
            if report != ref_report {
                return Err(format!("RunReport diverged at threads={threads}"));
            }
            for (v, (a, b)) in progs.iter().zip(&ref_progs).enumerate() {
                if a.transcript != b.transcript {
                    return Err(format!(
                        "transcript diverged at node {v}, threads={threads}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// PR-8 tentpole contract, engine level: the owner/ghost sharded
    /// session engine reproduces the legacy reference plane and the
    /// per-pass mailbox sweep byte for byte — same `RunReport` (fault
    /// counters and starved lists included), same per-node transcripts —
    /// for every shard count in {1, 2, 4, 8} × thread count in {1, 2, 8},
    /// under an arbitrary fault plan.
    pub fn assert_sharded_generations_agree(
        graph: &Graph,
        seed: u64,
        plan: congest::FaultPlan,
    ) -> Result<(), String> {
        let cap = SimConfig::seeded(seed).max_rounds;
        assert_sharded_generations_agree_capped(graph, seed, plan, cap)
    }

    /// [`assert_sharded_generations_agree`] with an explicit per-run
    /// round cap. Crash plans need one: a crash-stopped chatter node
    /// never reports done, so an uncapped faulty run would spin to the
    /// default 100k-round ceiling (forgiving mode never errors out).
    pub fn assert_sharded_generations_agree_capped(
        graph: &Graph,
        seed: u64,
        plan: congest::FaultPlan,
        max_rounds: u64,
    ) -> Result<(), String> {
        let n = graph.n();
        let cfg = SimConfig {
            fault: plan,
            max_rounds,
            ..SimConfig::seeded(seed)
        };
        let (ref_progs, ref_report) =
            run_reference(graph, chatter_programs(n), cfg).map_err(|e| format!("{e:?}"))?;
        let (sweep_progs, sweep_report) =
            congest::reference::run_mailbox_sweep(graph, chatter_programs(n), cfg)
                .map_err(|e| format!("{e:?}"))?;
        if sweep_report != ref_report {
            return Err("RunReport diverged: sweep vs reference".into());
        }
        for (v, (a, b)) in sweep_progs.iter().zip(&ref_progs).enumerate() {
            if a.transcript != b.transcript {
                return Err(format!(
                    "transcript diverged at node {v}: sweep vs reference"
                ));
            }
        }
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    ..cfg
                };
                let (progs, report) =
                    congest::run(graph, chatter_programs(n), cfg).map_err(|e| format!("{e:?}"))?;
                if report != ref_report {
                    return Err(format!(
                        "RunReport diverged at shards={shards} threads={threads}"
                    ));
                }
                for (v, (a, b)) in progs.iter().zip(&ref_progs).enumerate() {
                    if a.transcript != b.transcript {
                        return Err(format!(
                            "transcript diverged at node {v}, shards={shards} threads={threads}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// PR-10 tentpole contract, engine level: the α-synchronizer is
    /// correctness-preserving. Under any [`congest::SchedulePlan`] the
    /// session engine's transcripts and `RunReport` (minus the
    /// synchronizer's own overhead counters) are byte-identical to the
    /// schedule-free synchronous run, for every shard count in
    /// {1, 2, 4, 8} × thread count {1, 2, 8}, composed with an
    /// arbitrary fault plan. The overhead counters themselves must be
    /// geometry-invariant, and an inactive plan must record none.
    pub fn assert_async_schedules_agree(
        graph: &Graph,
        seed: u64,
        sched: congest::SchedulePlan,
        fault: congest::FaultPlan,
        max_rounds: u64,
    ) -> Result<(), String> {
        let n = graph.n();
        let sync_cfg = SimConfig {
            fault,
            max_rounds,
            ..SimConfig::seeded(seed)
        };
        let (sync_progs, sync_report) =
            congest::run(graph, chatter_programs(n), sync_cfg).map_err(|e| format!("{e:?}"))?;
        if sync_report.sched.any() {
            return Err("synchronous anchor recorded synchronizer overhead".into());
        }
        let mut overhead = None;
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    sched,
                    ..sync_cfg
                };
                let (progs, mut report) =
                    congest::run(graph, chatter_programs(n), cfg).map_err(|e| format!("{e:?}"))?;
                match overhead {
                    None => overhead = Some(report.sched),
                    Some(c) if c != report.sched => {
                        return Err(format!(
                            "sched counters diverged at shards={shards} threads={threads}"
                        ));
                    }
                    Some(_) => {}
                }
                if !sched.is_active() && report.sched.any() {
                    return Err("inactive SchedulePlan recorded synchronizer overhead".into());
                }
                report.sched = congest::ScheduleCounters::default();
                if report != sync_report {
                    return Err(format!(
                        "RunReport diverged at shards={shards} threads={threads}"
                    ));
                }
                for (v, (a, b)) in progs.iter().zip(&sync_progs).enumerate() {
                    if a.transcript != b.transcript {
                        return Err(format!(
                            "transcript diverged at node {v}, shards={shards} threads={threads}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: proptest_cases(12), ..ProptestConfig::default() })]

    /// PR-2 satellite: the CSR mailbox plane is observably identical to
    /// the pre-PR sort-and-scatter plane — same `RunReport`, same final
    /// program states — for every generator family, seed, and
    /// `threads ∈ {1, 2, 8}` (node counts straddle the engine's
    /// parallel threshold).
    #[test]
    fn mailbox_plane_matches_reference_semantics(
        kind in 0usize..5,
        n in 2usize..400,
        p in 0.0f64..0.15,
        gseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let graph = plane_vs_reference::graph_for(kind, n, p, gseed);
        if let Err(msg) = plane_vs_reference::assert_planes_agree(&graph, seed) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// PR-7 tentpole contract, engine level: a faulty run is a pure
    /// function of `(seed, FaultPlan)` — the legacy plane, the mailbox
    /// sweep, and the session engine at threads {1, 2, 8} draw the same
    /// drop/delay/dup fates bundle for bundle, so transcripts, fault
    /// counters, and starved lists agree byte for byte.
    #[test]
    fn faulty_planes_agree_byte_for_byte(
        kind in 0usize..5,
        n in 2usize..250,
        p in 0.0f64..0.15,
        gseed in 0u64..1000,
        seed in 0u64..1000,
        drop_pm in 0u32..800,
        delay_pm in 0u32..500,
        max_delay in 1u32..4,
        dup_pm in 0u32..500,
    ) {
        use congest_coloring::congest::FaultPlan;
        let graph = plane_vs_reference::graph_for(kind, n, p, gseed);
        let plan = FaultPlan::lossy(f64::from(drop_pm) / 1000.0)
            .with_delay(f64::from(delay_pm) / 1000.0, max_delay)
            .with_dup(f64::from(dup_pm) / 1000.0);
        if let Err(msg) = plane_vs_reference::assert_planes_agree_under(&graph, seed, plan) {
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: proptest_cases(6), ..ProptestConfig::default() })]

    /// PR-8 tentpole contract: the shard-differential battery. Every
    /// shard count {1, 2, 4, 8} × thread count {1, 2, 8} × fault plan
    /// {none, drop/delay/dup} × graph generator reproduces the preserved
    /// engine generations byte for byte (per-node transcripts and full
    /// `RunReport`s), and a full pipeline solve over the shard axis
    /// yields the identical proper coloring and pass log.
    #[test]
    fn sharded_engine_matches_all_generations(
        kind in 0usize..5,
        n in 2usize..200,
        p in 0.0f64..0.15,
        gseed in 0u64..1000,
        lseed in 0u64..500,
        seed in 0u64..1000,
        faulty in 0usize..2,
        drop_pm in 0u32..600,
        delay_pm in 0u32..400,
        max_delay in 1u32..4,
        dup_pm in 0u32..400,
    ) {
        use congest_coloring::congest::{FaultPlan, SimConfig};
        use congest_coloring::d1lc::EngineMode;

        let plan = if faulty == 1 {
            FaultPlan::lossy(f64::from(drop_pm) / 1000.0)
                .with_delay(f64::from(delay_pm) / 1000.0, max_delay)
                .with_dup(f64::from(dup_pm) / 1000.0)
        } else {
            FaultPlan::none()
        };
        let graph = plane_vs_reference::graph_for(kind, n, p, gseed);
        // Engine level: transcripts across the full shard × thread grid.
        if let Err(msg) =
            plane_vs_reference::assert_sharded_generations_agree(&graph, seed, plan)
        {
            prop_assert!(false, "{}", msg);
        }
        // Pipeline level: the solve stays proper and byte-identical to
        // the unsharded anchor for every shard count.
        let lists = random_lists(&graph, 32, 0, lseed);
        let run = |shards: usize, threads: usize| {
            let opts = SolveOptions {
                engine: EngineMode::Session,
                sim: SimConfig {
                    threads,
                    shards,
                    fault: plan,
                    max_rounds: 200,
                    ..SimConfig::default()
                },
                ..SolveOptions::seeded(seed)
            };
            solve(&graph, &lists, opts).expect("sharded solve completes")
        };
        let base = run(0, 1);
        prop_assert_eq!(check_coloring(&graph, &lists, &base.coloring), Ok(()));
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 8] {
                let other = run(shards, threads);
                prop_assert!(
                    base.coloring == other.coloring,
                    "coloring diverged: shards={} t={}",
                    shards,
                    threads
                );
                prop_assert!(
                    base.log.passes() == other.log.passes(),
                    "pass log diverged: shards={} t={}",
                    shards,
                    threads
                );
                prop_assert!(
                    base.stats == other.stats,
                    "stats diverged: shards={} t={}",
                    shards,
                    threads
                );
            }
        }
    }

    /// PR-6 tentpole contract: every completed `SolveServer` response is
    /// byte-identical — same coloring, same per-pass log — to a
    /// sequential one-shot `Driver` solve of the same request, across
    /// worker counts {1, 2, 8}, queue depths {1, 2, 8, 64}, pool sizes
    /// {0, 1, 2}, engine thread counts {1, 2, 8}, and submission orders
    /// (the stream mixes two graphs, so pooled cores rebind across
    /// topologies mid-stream, and contains a duplicate request that
    /// exercises the memo / single-flight paths).
    #[test]
    fn solve_server_matches_one_shot_driver(
        n in 8usize..300,
        p in 0.01f64..0.15,
        gseed in 0u64..500,
        lseed in 0u64..500,
        workers_idx in 0usize..3,
        queue_idx in 0usize..4,
        pool in 0usize..3,
        threads_idx in 0usize..3,
        rotation in 0usize..6,
    ) {
        use congest_coloring::congest::SimConfig;
        use congest_coloring::d1lc::server::SolveServer;
        use congest_coloring::d1lc::service::{ServiceConfig, SolveRequest};
        use congest_coloring::d1lc::SolveOptions;
        use std::sync::Arc;

        let workers = [1usize, 2, 8][workers_idx];
        let queue = [1usize, 2, 8, 64][queue_idx];
        let threads = [1usize, 2, 8][threads_idx];
        let opts = |seed: u64| SolveOptions {
            sim: SimConfig { threads, ..SimConfig::default() },
            ..SolveOptions::seeded(seed)
        };
        let g1 = Arc::new(gen::gnp(n, p, gseed));
        let l1 = Arc::new(random_lists(&g1, 32, 0, lseed));
        let g2 = Arc::new(gen::gnp(n / 2 + 8, p, gseed ^ 0x9e37));
        let l2 = Arc::new(random_lists(&g2, 32, 0, lseed ^ 0x79b9));
        let mut requests = [
            SolveRequest::shared(&g1, &l1, opts(1)),
            SolveRequest::shared(&g2, &l2, opts(1)),
            SolveRequest::shared(&g1, &l1, opts(2)),
            SolveRequest::shared(&g2, &l2, opts(2)),
            SolveRequest::shared(&g1, &l1, opts(1)), // duplicate: memo / dedup
            SolveRequest::shared(&g1, &l1, opts(3)),
        ];
        let shift = rotation % requests.len();
        requests.rotate_left(shift);
        let config = ServiceConfig::builder()
            .workers(workers)
            .queue(queue)
            .pool(pool)
            .build()
            .expect("valid config");
        let server = SolveServer::start(config);
        let handle = server.handle();
        // Submit everything up front so completions race across workers;
        // default Block admission means shallow queues throttle, never
        // reject.
        let tickets: Vec<_> = requests.iter().map(|r| handle.submit(r.clone())).collect();
        for (req, ticket) in requests.iter().zip(&tickets) {
            let served = ticket.wait().expect("server response");
            let direct = solve(&req.graph, &req.lists, req.options).expect("one-shot");
            prop_assert_eq!(check_coloring(&req.graph, &req.lists, &served.coloring), Ok(()));
            prop_assert!(
                served.coloring == direct.coloring,
                "server coloring diverged (workers={}, queue={}, pool={}, threads={})",
                workers,
                queue,
                pool,
                threads
            );
            prop_assert!(
                served.log.passes() == direct.log.passes(),
                "server pass log diverged (workers={}, queue={}, pool={}, threads={})",
                workers,
                queue,
                pool,
                threads
            );
        }
    }

    /// PR-7 tentpole contract, pipeline level: a faulty solve is exactly
    /// reproducible from `(seed, FaultPlan)` — identical coloring, pass
    /// log (fault counters and starved lists included), and stats across
    /// every engine mode and thread count — and detect-and-repair keeps
    /// the coloring proper whatever the loss pattern.
    #[test]
    fn faulty_solve_is_deterministic(
        n in 8usize..160,
        p in 0.01f64..0.15,
        gseed in 0u64..500,
        lseed in 0u64..500,
        seed in 0u64..500,
        drop_pm in 0u32..900,
        delay_pm in 0u32..500,
        dup_pm in 0u32..500,
    ) {
        use congest_coloring::congest::{FaultPlan, SimConfig};
        use congest_coloring::d1lc::EngineMode;

        let g = gen::gnp(n, p, gseed);
        let lists = random_lists(&g, 32, 0, lseed);
        let plan = FaultPlan::lossy(f64::from(drop_pm) / 1000.0)
            .with_delay(f64::from(delay_pm) / 1000.0, 3)
            .with_dup(f64::from(dup_pm) / 1000.0);
        let run = |engine: EngineMode, threads: usize| {
            let opts = SolveOptions {
                engine,
                sim: SimConfig {
                    threads,
                    fault: plan,
                    max_rounds: 200,
                    ..SimConfig::default()
                },
                ..SolveOptions::seeded(seed)
            };
            solve(&g, &lists, opts).expect("faulty solve still completes")
        };
        let base = run(EngineMode::Session, 1);
        prop_assert_eq!(check_coloring(&g, &lists, &base.coloring), Ok(()));
        for engine in [EngineMode::Session, EngineMode::PerPass, EngineMode::Reference] {
            for threads in [1usize, 2, 8] {
                if engine == EngineMode::Session && threads == 1 {
                    continue;
                }
                let other = run(engine, threads);
                prop_assert!(
                    base.coloring == other.coloring,
                    "faulty coloring diverged: {:?} t={}",
                    engine,
                    threads
                );
                prop_assert!(
                    base.log.passes() == other.log.passes(),
                    "faulty pass log diverged: {:?} t={}",
                    engine,
                    threads
                );
                prop_assert!(
                    base.stats == other.stats,
                    "faulty stats diverged: {:?} t={}",
                    engine,
                    threads
                );
            }
        }
    }

    /// PR-9 tentpole contract: crash fates are a pure function of
    /// `(pass seed, plan, node, round)`. Runs under crash-stop and
    /// crash-recovery plans (optionally composed with message loss)
    /// reproduce the preserved engine generations byte for byte — same
    /// per-node transcripts, same `RunReport` (crash counters and
    /// crashed lists included) — across shards {1, 2, 4, 8} × threads
    /// {1, 2, 8}, and a full pipeline solve over the shard axis yields
    /// the identical proper coloring via quarantine-and-recolor.
    #[test]
    fn crashed_runs_agree_byte_for_byte(
        kind in 0usize..5,
        n in 2usize..200,
        p in 0.0f64..0.15,
        gseed in 0u64..1000,
        lseed in 0u64..500,
        seed in 0u64..1000,
        crash_pm in 1u32..60,
        recovery in 0u32..5,
        drop_pm in 0u32..400,
    ) {
        use congest_coloring::congest::{FaultPlan, SimConfig};
        use congest_coloring::d1lc::EngineMode;

        let plan = FaultPlan::lossy(f64::from(drop_pm) / 1000.0)
            .with_crashes(f64::from(crash_pm) / 1000.0, recovery);
        let graph = plane_vs_reference::graph_for(kind, n, p, gseed);
        // Engine level: a crash-stopped node never finishes, so the run
        // is bounded by the cap, not by termination.
        if let Err(msg) =
            plane_vs_reference::assert_sharded_generations_agree_capped(&graph, seed, plan, 64)
        {
            prop_assert!(false, "{}", msg);
        }
        // Pipeline level: quarantine-and-recolor keeps the solve proper
        // and byte-identical to the unsharded anchor.
        let lists = random_lists(&graph, 32, 0, lseed);
        let run = |shards: usize, threads: usize| {
            let opts = SolveOptions {
                engine: EngineMode::Session,
                sim: SimConfig {
                    threads,
                    shards,
                    fault: plan,
                    max_rounds: 100,
                    ..SimConfig::default()
                },
                ..SolveOptions::seeded(seed)
            };
            solve(&graph, &lists, opts).expect("crashed solve completes")
        };
        let base = run(0, 1);
        prop_assert_eq!(check_coloring(&graph, &lists, &base.coloring), Ok(()));
        for shards in [1usize, 4, 8] {
            for threads in [1usize, 8] {
                let other = run(shards, threads);
                prop_assert!(
                    base.coloring == other.coloring,
                    "crashed coloring diverged: shards={} t={}",
                    shards,
                    threads
                );
                prop_assert!(
                    base.log.passes() == other.log.passes(),
                    "crashed pass log diverged: shards={} t={}",
                    shards,
                    threads
                );
                prop_assert!(
                    base.stats == other.stats,
                    "crashed stats diverged: shards={} t={}",
                    shards,
                    threads
                );
            }
        }
    }

    /// PR-10 tentpole contract: under any schedule adversary the
    /// α-synchronized transcript is byte-identical to the synchronous
    /// engine across schedule plans {none, jitter, straggler,
    /// anti-FIFO} × shards {1, 2, 4, 8} × threads {1, 2, 8} × fault
    /// plans {none, drop/delay}, and a full pipeline solve with the
    /// adversary in the loop yields the identical proper coloring,
    /// stats, and pass log (only the synchronizer's own overhead
    /// counters may differ from the synchronous anchor).
    #[test]
    fn async_schedules_agree_byte_for_byte(
        kind in 0usize..5,
        n in 2usize..200,
        p in 0.0f64..0.15,
        gseed in 0u64..1000,
        lseed in 0u64..500,
        seed in 0u64..1000,
        plan_kind in 0usize..4,
        rate_pm in 1u32..400,
        span in 1u32..5,
        faulty in 0usize..2,
        drop_pm in 0u32..300,
    ) {
        use congest_coloring::congest::{FaultPlan, ScheduleCounters, SchedulePlan, SimConfig};
        use congest_coloring::d1lc::{EngineMode, SolveResult};

        let rate = f64::from(rate_pm) / 1000.0;
        let sched = match plan_kind {
            0 => SchedulePlan::none(),
            1 => SchedulePlan::jittery(rate, span).with_start_spread(span),
            2 => SchedulePlan::none().with_stragglers(rate, span),
            _ => SchedulePlan::none().with_antififo(rate, span + 2),
        };
        let fault = if faulty == 1 {
            FaultPlan::lossy(f64::from(drop_pm) / 1000.0).with_delay(0.2, 3)
        } else {
            FaultPlan::none()
        };
        let graph = plane_vs_reference::graph_for(kind, n, p, gseed);
        // Engine level: the full schedule × shard × thread × fault grid
        // against the schedule-free synchronous anchor.
        if let Err(msg) =
            plane_vs_reference::assert_async_schedules_agree(&graph, seed, sched, fault, 64)
        {
            prop_assert!(false, "{}", msg);
        }
        // Pipeline level: the adversarial solve stays proper and
        // byte-identical to the synchronous unsharded anchor.
        let lists = random_lists(&graph, 32, 0, lseed);
        let run = |sched: SchedulePlan, shards: usize, threads: usize| {
            let opts = SolveOptions {
                engine: EngineMode::Session,
                sim: SimConfig {
                    threads,
                    shards,
                    fault,
                    sched,
                    max_rounds: 200,
                    ..SimConfig::default()
                },
                ..SolveOptions::seeded(seed)
            };
            solve(&graph, &lists, opts).expect("async solve completes")
        };
        let masked = |r: &SolveResult| {
            r.log
                .passes()
                .iter()
                .cloned()
                .map(|mut p| {
                    p.report.sched = ScheduleCounters::default();
                    p
                })
                .collect::<Vec<_>>()
        };
        let base = run(SchedulePlan::none(), 0, 1);
        prop_assert_eq!(check_coloring(&graph, &lists, &base.coloring), Ok(()));
        let base_log = masked(&base);
        for shards in [1usize, 4, 8] {
            for threads in [1usize, 8] {
                let other = run(sched, shards, threads);
                prop_assert!(
                    base.coloring == other.coloring,
                    "async coloring diverged: shards={} t={}",
                    shards,
                    threads
                );
                prop_assert!(
                    base_log == masked(&other),
                    "async pass log diverged: shards={} t={}",
                    shards,
                    threads
                );
                prop_assert!(
                    base.stats == other.stats,
                    "async stats diverged: shards={} t={}",
                    shards,
                    threads
                );
            }
        }
    }

    /// PR-4 satellite: a full pipeline solve on one persistent engine
    /// session is byte-identical — same coloring, same per-pass
    /// `RunReport` log — to the per-pass pre-session engine and to the
    /// legacy reference plane, for every thread count in {1, 2, 8}
    /// (node counts straddle the engine's parallel threshold, so the
    /// pooled session path is exercised too).
    #[test]
    fn session_solve_matches_legacy_engines(
        n in 8usize..320,
        p in 0.01f64..0.2,
        gseed in 0u64..500,
        lseed in 0u64..500,
        seed in 0u64..500,
    ) {
        use congest_coloring::congest::SimConfig;
        use congest_coloring::d1lc::EngineMode;

        let g = gen::gnp(n, p, gseed);
        let lists = random_lists(&g, 32, 0, lseed);
        let run = |engine: EngineMode, threads: usize| {
            let opts = SolveOptions {
                engine,
                sim: SimConfig { threads, ..SimConfig::default() },
                ..SolveOptions::seeded(seed)
            };
            solve(&g, &lists, opts).expect("solve")
        };
        let base = run(EngineMode::Session, 1);
        prop_assert_eq!(check_coloring(&g, &lists, &base.coloring), Ok(()));
        for engine in [EngineMode::Session, EngineMode::PerPass, EngineMode::Reference] {
            for threads in [1usize, 2, 8] {
                if engine == EngineMode::Session && threads == 1 {
                    continue;
                }
                let other = run(engine, threads);
                prop_assert!(
                    base.coloring == other.coloring,
                    "coloring diverged: {:?} t={}",
                    engine,
                    threads
                );
                prop_assert!(
                    base.log.passes() == other.log.passes(),
                    "pass log diverged: {:?} t={}",
                    engine,
                    threads
                );
            }
        }
    }
}
