//! Property-based invariants across the whole stack.

use congest_coloring::d1lc::{greedy_oracle, solve, SolveOptions};
use congest_coloring::graphs::palette::{check_coloring, random_lists, ListAssignment};
use congest_coloring::graphs::{gen, GraphBuilder};
use congest_coloring::prand::{IdCode, PairwiseFamily, ReedSolomon, RepHashFamily, RepParams};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any random graph + random (deg+1)-lists + any seed yields a proper
    /// coloring — the repo's master invariant.
    #[test]
    fn solve_is_always_proper(
        n in 2usize..60,
        p in 0.0f64..0.6,
        gseed in 0u64..1000,
        lseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let g = gen::gnp(n, p, gseed);
        let lists = random_lists(&g, 32, 0, lseed);
        let result = solve(&g, &lists, SolveOptions::seeded(seed)).expect("solve");
        prop_assert_eq!(check_coloring(&g, &lists, &result.coloring), Ok(()));
    }

    /// The greedy oracle is proper on arbitrary edge sets.
    #[test]
    fn greedy_oracle_is_proper(edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120)) {
        let mut b = GraphBuilder::new(40);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let lists = congest_coloring::graphs::palette::degree_plus_one_lists(&g);
        let coloring = greedy_oracle(&g, &lists);
        prop_assert_eq!(check_coloring(&g, &lists, &coloring), Ok(()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Proposition 1 on random sets: the window partitions into colliding
    /// and isolated parts; the collision image is at most half its
    /// preimage; isolated images are injective when A ⊆ B.
    #[test]
    fn proposition_1_laws(
        raw in proptest::collection::hash_set(0u64..100_000, 1..200),
        member in 0u64..1024,
        extra in proptest::collection::hash_set(0u64..100_000, 0..100),
    ) {
        let params = RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 900, 128, 10);
        let h = RepHashFamily::new(0xabcd, params).member(member);
        let mut a: Vec<u64> = raw.iter().copied().collect();
        a.sort_unstable();
        let mut b: Vec<u64> = raw.union(&extra).copied().collect();
        b.sort_unstable();

        // Partition law.
        let low: HashSet<u64> = h.low(&a).into_iter().collect();
        let coll: HashSet<u64> = h.colliding(&a, &a).into_iter().collect();
        let iso: HashSet<u64> = h.isolated(&a, &a).into_iter().collect();
        prop_assert!(coll.is_disjoint(&iso));
        let union: HashSet<u64> = coll.union(&iso).copied().collect();
        prop_assert_eq!(&union, &low);

        // Eq. (1): |h(A ∧ A)| ≤ |A ∧ A| / 2.
        let img: HashSet<u64> = coll.iter().map(|&x| h.hash(x)).collect();
        prop_assert!(2 * img.len() <= coll.len());

        // Eq. (2): A ⊆ B ⇒ |h(A ¬ B)| = |A ¬ B|.
        let iso_b = h.isolated(&a, &b);
        let img_b: HashSet<u64> = iso_b.iter().map(|&x| h.hash(x)).collect();
        prop_assert_eq!(img_b.len(), iso_b.len());

        // Eq. (3): monotonicity — A ∧ A ⊆ A ∧ B, A ¬ B ⊆ A ¬ A.
        let coll_b: HashSet<u64> = h.colliding(&a, &b).into_iter().collect();
        prop_assert!(coll.is_subset(&coll_b));
        let iso_b_set: HashSet<u64> = iso_b.into_iter().collect();
        prop_assert!(iso_b_set.is_subset(&iso));
    }

    /// Reed–Solomon distance on random message pairs.
    #[test]
    fn rs_distance_always_holds(m1 in any::<u64>(), m2 in any::<u64>()) {
        prop_assume!(m1 != m2);
        let rs = ReedSolomon::new(24, 8);
        let (a, b) = (rs.encode(&m1.to_le_bytes()), rs.encode(&m2.to_le_bytes()));
        let d = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        prop_assert!(d >= rs.distance());
    }

    /// Concatenated identifier code distance on random id pairs.
    #[test]
    fn id_code_distance_always_holds(id1 in any::<u64>(), id2 in any::<u64>()) {
        prop_assume!(id1 != id2);
        let code = IdCode::new();
        let d = IdCode::hamming(&code.encode(id1), &code.encode(id2));
        prop_assert!(d >= code.min_distance_bits());
    }

    /// Pairwise hashes stay in range and members are deterministic.
    #[test]
    fn pairwise_hash_in_range(
        lambda in 1u64..1_000_000,
        index_bits in 1u32..16,
        x in any::<u64>(),
    ) {
        let f = PairwiseFamily::new(99, lambda, index_bits);
        let h = f.member(f.family_size() - 1);
        prop_assert!(h.hash(x) < lambda);
        prop_assert_eq!(h.hash(x), f.member(f.family_size() - 1).hash(x));
    }

    /// List assignments survive roundtrips and validity checks reject
    /// corrupted colorings.
    #[test]
    fn corrupted_colorings_are_rejected(
        n in 2usize..40,
        p in 0.1f64..0.6,
        seed in 0u64..500,
        victim in 0usize..40,
    ) {
        let g = gen::gnp(n, p, seed);
        prop_assume!(g.m() > 0);
        let lists: ListAssignment =
            congest_coloring::graphs::palette::degree_plus_one_lists(&g);
        let mut coloring = greedy_oracle(&g, &lists);
        // Corrupt one endpoint of some edge to its neighbor's color.
        let (u, v) = g.edges().next().expect("m > 0");
        let victim = if victim % 2 == 0 { u } else { v };
        let other = if victim == u { v } else { u };
        coloring[victim as usize] = coloring[other as usize];
        prop_assert!(check_coloring(&g, &lists, &coloring).is_err());
    }
}
