//! Smoke test for the `congest_coloring` facade: every re-exported
//! workspace member must resolve through the facade paths, and the core
//! entry points must be callable end-to-end. Guards against a manifest or
//! re-export regression silently narrowing the public API.

use congest_coloring::{congest, d1lc, estimate, graphs, prand};

/// Every facade module path named in the crate docs resolves and the
/// central types/functions behind them are usable.
#[test]
fn facade_reexports_resolve_and_compose() {
    // graphs::gen — workload generation.
    let graph = graphs::gen::gnp(60, 0.15, 1);
    assert_eq!(graph.n(), 60);

    // prand — the representative-hash toolkit.
    let params = prand::RepParams::practical(1.0 / 12.0, 1.0 / 3.0, 600, 96, 16);
    let family = prand::RepHashFamily::new(0xc0ffee, params);
    let h = family.member(3);
    let window: Vec<u64> = (0..64).map(|i| i * 97).collect();
    let _ = h.isolated(&window, &window);

    // estimate — §3 two-party similarity estimation.
    use rand::{rngs::StdRng, SeedableRng};
    let su: Vec<u64> = (0..200).collect();
    let sv: Vec<u64> = (100..300).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let out = estimate::estimate_similarity(
        &estimate::SimilarityScheme::practical(0.25),
        &su,
        &sv,
        7,
        &mut rng,
    );
    assert!(out.estimate.is_finite());

    // congest — the simulator configuration surface.
    let sim = congest::SimConfig::seeded(2);
    assert_eq!(sim.seed, 2);

    // d1lc::solve — the Theorem 1 pipeline, end to end.
    let lists = graphs::palette::random_lists(&graph, 48, 0, 2);
    let result = d1lc::solve(&graph, &lists, d1lc::SolveOptions::seeded(4)).expect("solve");
    assert_eq!(
        graphs::palette::check_coloring(&graph, &lists, &result.coloring),
        Ok(())
    );
}

/// The facade and the underlying crates expose the same items: types
/// reached through `congest_coloring::*` paths unify with types reached
/// through the member crates directly, so downstream code can mix both.
#[test]
fn facade_matches_direct_crate_paths() {
    // Type-level unification: a facade-typed function pointer accepts the
    // direct-crate item, which only compiles if the paths name one item.
    let solve: fn(
        &graphs::Graph,
        &graphs::palette::ListAssignment,
        d1lc::SolveOptions,
    ) -> Result<d1lc::SolveResult, congest::SimError> = ::d1lc::solve;

    // Value-level: a graph built via the direct crate feeds the facade
    // path and both spellings produce identical results.
    let graph = ::graphs::gen::gnp(40, 0.2, 8);
    let lists = graphs::palette::degree_plus_one_lists(&graph);
    let a = solve(&graph, &lists, ::d1lc::SolveOptions::seeded(6)).expect("direct");
    let b = d1lc::solve(&graph, &lists, d1lc::SolveOptions::seeded(6)).expect("facade");
    assert_eq!(a.coloring, b.coloring);
}
