//! Persistent engine sessions with active-frontier scheduling.
//!
//! A [`Session`] owns everything an engine run needs that is a function
//! of the *graph*, not of one protocol pass: the mailbox plane, the
//! per-node RNG vector, the inboxes, the per-worker neighbor-lookup
//! scratch, the worker pool, and the scheduler state. Multi-pass
//! pipelines (the HNT22 driver runs dozens of short passes per solve)
//! reuse one session for every pass instead of paying a fresh `O(n + m)`
//! plane build, scratch allocation, and thread spawn per pass;
//! [`crate::run`] remains as a one-shot wrapper that builds a throwaway
//! session. Shard geometry and the 2-barrier owner/ghost worker
//! protocol are described below; results are byte-identical across
//! shard counts, thread counts, and the preserved engine generations.
//!
//! # The active frontier
//!
//! Every run starts with an **active list** of nodes (all of them for
//! [`Session::run`]; a driver-chosen subset for [`Session::run_from`]).
//! A node leaves the frontier — permanently, for the rest of the run —
//! when its program reports [`crate::Program::is_done`] after a step or
//! calls [`crate::Ctx::halt`]. The step phase iterates a compacted
//! per-worker active list instead of `0..n`, so late rounds in which a
//! handful of nodes still work cost `O(active)`, not `O(n)`. The run
//! ends when the frontier is empty. This is transcript-preserving
//! because a done program's `on_round` is contractually a no-op (see
//! [`crate::Program::is_done`]); the engine merely stops paying for the
//! no-ops.
//!
//! # Dirty-receiver delivery
//!
//! Delivery used to sweep every receiver's in-slots each round — `O(m)`
//! even when one node sent one message. The session keeps a
//! [`DirtyBoard`]: each targeted send stamps its receiver with the
//! current epoch, each broadcast stamps the sender's out-neighborhood
//! (the same `O(deg)` the per-copy delivery pays anyway), and routing
//! sweeps only receivers stamped this epoch. Inboxes filled in round `r`
//! are remembered in a per-worker `filled` worklist and cleared at the
//! start of round `r + 1`'s routing, which reproduces the old
//! clear-everything semantics without touching clean nodes.
//!
//! Epochs are a session-global round counter that never resets, so slot
//! stamps from earlier passes (or an aborted round) can never alias a
//! later round's stamp.
//!
//! # Ownership shards and the owner/ghost round protocol
//!
//! The node range is split into contiguous **ownership shards** (chunk
//! geometry from [`SimConfig::shards`], or derived from `threads` when
//! unset). A shard owns its nodes' programs, RNGs, inboxes, frontier
//! list, dirty stamps, and its receivers' targeted-slot range of the
//! mailbox plane — a per-shard CSR sub-plane. During the step phase a
//! shard writes **only** its own state: sends to receivers in other
//! shards are staged into per-(sender, receiver) shard
//! [`ExchangeLanes`] outboxes instead of the foreign sub-plane, and
//! broadcast slots are written sender-side as always. Other shards'
//! broadcast slots are the read-only **ghost state**: routing reads
//! them (frozen at the exchange barrier) without mutation.
//!
//! With `workers > 1` the session spawns its workers **once, at
//! construction**, and parks them on a pass barrier between passes.
//! Each pass posts a type-erased job — a [`WorkerTask`] trait object
//! over that pass's program type — and the workers run the whole pass
//! coordinator-free with **two barriers per round** (down from the
//! legacy engine's four, see [`crate::reference`]):
//!
//! * **Barrier A (exchange)** — after stepping its shards, a worker
//!   publishes its lane flags and waits. Crossing A freezes every
//!   shard's staged outboxes and broadcast slots.
//! * **Barrier B (round end)** — each worker drains the exchange
//!   outboxes addressed to its shards into its own sub-plane, routes
//!   its receivers, publishes its retired/load counters, and waits.
//!   Crossing B makes every counter of the round visible to every
//!   worker, which then all compute the same continue/stop decision
//!   locally — no coordinator aggregation step in between.
//!
//! Pass-level outcomes (round count, error selection, fault aborts) are
//! derived from epoch-stamped shared flags and per-worker cells; the
//! coordinator only assembles the final [`RunReport`] after the
//! pass-end barrier. See [`Session::barrier_audit`] for the test-only
//! waits-per-round accounting that pins the ≤2 budget.
//!
//! # Rebinding
//!
//! A session splits into a graph *binding* (the `&Graph` plus the chunk
//! geometry derived from it) and a [`SessionCore`] — everything else:
//! lane arrays, dirty board, RNG/inbox vectors, scheduler scratch, the
//! parked pool, and the epoch counter. [`Session::unbind`] recovers the
//! core; [`SessionCore::bind`] retargets it at any other graph, reusing
//! the allocations (growing only when the new graph is larger) and
//! keeping the parked pool whenever the worker count still matches.
//! Because the epoch counter carries over and strictly increases, slot
//! and dirty stamps written under one binding can never alias a round
//! run under a later one — a rebound session is byte-identical in
//! behaviour to a fresh one.
//!
//! ## SAFETY (shard-exclusive state and the job cell)
//!
//! * Shard `s` owns the node range `[s·chunk, (s+1)·chunk)`: its
//!   programs, RNGs, inboxes, active list, and filled list. These are
//!   handed over as plain `&mut` shards inside a
//!   per-shard `Mutex<Option<WorkerSlot>>` — locked exactly twice per
//!   pass (taken by the worker running the shard at pass start, put
//!   back at pass end), so there is no unsafe aliasing of scheduler
//!   state at all. Worker `w` runs shards `w, w + workers, …` for the
//!   whole pass; the assignment never changes mid-pass.
//! * The dirty board and each shard's targeted-slot range are **fully
//!   shard-exclusive per phase**: during the step phase only the
//!   owning shard's worker writes them (cross-shard sends and marks go
//!   through the exchange outboxes), and during routing only the owner
//!   drains, reads, and resets them. Dirty stamps stay atomic because
//!   a store and a later same-epoch load may still cross threads; the
//!   barriers order every stamp before the routing loads.
//! * Each exchange outbox cell `(from, to)` has exactly one writer (the
//!   worker stepping shard `from`, before barrier A) and one reader
//!   (the worker routing shard `to`, after barrier A); the barrier
//!   orders the hand-off.
//! * Per-worker `retired`/`round_max` counters are written between
//!   barrier A and barrier B of a round and read between barrier B and
//!   the next round's barrier A — globally ordered by the barriers, so
//!   every worker reads every round-`r` value exactly as published.
//!   The epoch-stamped lane/error flags are monotone `fetch_max`
//!   stamps, so late readers can never mistake a stale round's flag
//!   for the current one.
//! * The job cell holds a raw `*const dyn WorkerTask` with its lifetime
//!   erased. The coordinator writes it while all workers are parked at
//!   the pass-release barrier and clears it after the pass-end barrier;
//!   workers dereference it only between those two barriers, during
//!   which the coordinator's stack frame keeps the task alive. The task
//!   type is `Sync` (enforced by the trait bound), so sharing the
//!   reference across workers is sound.
//! * Mailbox-plane slots keep the exact access protocol documented in
//!   [`crate::plane`]; the frontier does not change who writes which
//!   slot, only *whether* a node is stepped at all.

use crate::engine::{Bandwidth, SimConfig};
use crate::error::SimError;
use crate::fault::{route_receiver_faulty, FaultCounters, FaultState};
use crate::message::Message;
use crate::metrics::{LoadProfile, RunReport};
use crate::plane::{
    prefetch_for_write, DirtyBoard, ExchangeLanes, MailboxPlane, NeighborIndex, Outbox, PlaneCell,
    ShardRoute, Sink, SlotSink,
};
use crate::program::{Ctx, Program};
use crate::sched::ScheduleState;
use graphs::{Graph, NodeId};
use prand::mix::mix2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Below this node count the engine always runs single-threaded: barrier
/// overhead would dominate.
pub(crate) const PAR_MIN_NODES: usize = 256;

/// Which plane lanes a round actually used (merged over all step
/// workers); the router skips dead lanes entirely.
#[derive(Clone, Copy, Default)]
struct Lanes {
    targeted: bool,
    bcast: bool,
}

/// One step shard's result.
#[derive(Default)]
struct StepOut {
    /// Nodes this shard retired from the frontier this round (done or
    /// halted — monotone, they never come back within a run).
    retired: usize,
    /// First send-side error in node order.
    err: Option<SimError>,
    /// Lanes this shard's nodes wrote.
    lanes: Lanes,
    /// Sends to non-neighbors eaten by an active fault plan.
    misrouted: u64,
}

/// Aggregated routing-phase counters for one round (or one worker shard).
#[derive(Default)]
struct RouteStats {
    max: u64,
    bits: u64,
    messages: u64,
    err: Option<SimError>,
    /// Fault events injected while routing (zero without a fault plan).
    faults: FaultCounters,
}

/// One worker's slice of the session: the node range it steps and routes.
struct WorkerSlot<'a, P: Program> {
    /// First node id of the range.
    lo: usize,
    programs: &'a mut [P],
    rngs: &'a mut [StdRng],
    inboxes: &'a mut [Vec<(NodeId, P::Msg)>],
    /// Compacted ascending list of this range's frontier nodes.
    /// **This list is the sole scheduler state** — a node is halted iff
    /// it is absent, so retirement is just dropping out of the
    /// compaction.
    active: &'a mut Vec<u32>,
    /// Receivers of this range whose inboxes were filled last round.
    filled: &'a mut Vec<u32>,
    /// The worker's persistent neighbor-position scratch.
    lookup: &'a mut NeighborIndex,
}

/// Step the shard's active frontier: run `on_round` with a slot sink
/// over each active node's out-edges and compact the frontier in place
/// (done/halted nodes drop out, order preserved). Sends to receivers
/// outside `[lo, lo + len)` are staged into `exchange_row` for their
/// owners to replay at the exchange point.
#[allow(clippy::too_many_arguments)]
fn step_shard<P: Program>(
    graph: &Graph,
    plane: &MailboxPlane<P::Msg>,
    dirty: &DirtyBoard,
    exchange_row: &[PlaneCell<Outbox<P::Msg>>],
    chunk: u32,
    slot: &mut WorkerSlot<'_, P>,
    round: u64,
    epoch: u64,
    prefetch: bool,
    fault: Option<&FaultState<P::Msg>>,
) -> StepOut {
    let offsets = graph.offsets();
    let adj = graph.adjacency();
    let forgiving = fault.is_some();
    let skip_down = fault.filter(|f| f.has_crashes());
    let mut out = StepOut::default();
    let lo = slot.lo;
    let lo32 = lo as u32;
    let hi32 = (lo + slot.programs.len()) as u32;
    let len = slot.active.len();
    // When the previous round used the targeted lane, overlap its
    // scatter misses with program compute: a node's write targets are
    // statically its rev_out entries, issued PREFETCH_AHEAD frontier
    // positions early. Only slots this shard owns are prefetched —
    // cross-shard sends never touch foreign slots (they are staged).
    const PREFETCH_AHEAD: usize = 2;
    let prefetch_node = |v: usize| {
        let win = offsets[v]..offsets[v + 1];
        for (&to, &e) in adj[win.clone()].iter().zip(&plane.rev[win]) {
            if lo32 <= to && to < hi32 {
                prefetch_for_write(plane.slots[e as usize].get());
            }
        }
    };
    if prefetch {
        for i in 0..PREFETCH_AHEAD.min(len) {
            prefetch_node(slot.active[i] as usize);
        }
    }
    let mut keep = 0usize;
    for i in 0..len {
        let v = slot.active[i] as usize;
        if prefetch && i + PREFETCH_AHEAD < len {
            prefetch_node(slot.active[i + PREFETCH_AHEAD] as usize);
        }
        // A down node skips its `on_round` entirely (no RNG draw, no
        // sends) but stays on the frontier — it is down, not retired,
        // and resumes stepping if its fate recovers it.
        if skip_down.is_some_and(|f| f.is_down(v, round)) {
            slot.active[keep] = v as u32;
            keep += 1;
            continue;
        }
        let mut halt_now = false;
        let mut ctx = Ctx {
            node: v as NodeId,
            round,
            neighbors: graph.neighbors(v as NodeId),
            inbox: &slot.inboxes[v - lo],
            rng: &mut slot.rngs[v - lo],
            halt: &mut halt_now,
            sink: Sink::Slots(SlotSink {
                slots: &plane.slots,
                spill: &plane.spill,
                bcast: &plane.bcast[v],
                bcast_spill: &plane.bcast_spill[v],
                rev_out: &plane.rev[offsets[v]..offsets[v + 1]],
                dirty,
                epoch,
                seq: 0,
                targeted: 0,
                broadcasts: 0,
                lookup: &mut *slot.lookup,
                filled: false,
                forgiving,
                misrouted: 0,
                err: &mut out.err,
                shard: ShardRoute {
                    lo: lo32,
                    hi: hi32,
                    chunk,
                    row: exchange_row,
                },
            }),
        };
        slot.programs[v - lo].on_round(&mut ctx);
        if let Sink::Slots(s) = &ctx.sink {
            out.lanes.targeted |= s.targeted > 0;
            out.lanes.bcast |= s.broadcasts > 0;
            out.misrouted += s.misrouted;
        }
        if halt_now || slot.programs[v - lo].is_done() {
            out.retired += 1;
        } else {
            slot.active[keep] = v as u32;
            keep += 1;
        }
    }
    slot.active.truncate(keep);
    out
}

/// Deliver to the shard's dirty receivers: clear the inboxes filled last
/// round, then sweep only receivers stamped with the current epoch —
/// per receiver, the exact contiguous in-slot sweep and broadcast gather
/// of the full-sweep engine, so inbox order, bit accounting, and strict
/// checks are unchanged. Lanes the round didn't use are skipped.
///
/// Dirty receivers are *found* by a sequential scan of the shard's slice
/// of the stamp array — a deliberate trade-off: the scan streams one u64
/// stamp per node per round (8n bytes, sequential and prefetch-friendly,
/// vs the old engine's O(m) *scattered* slot visits) and yields
/// receivers in ascending order with no cross-worker merging, which is
/// what keeps error selection and inbox fills deterministic.
/// Per-receiver delivery work is O(dirty); only the stamp probe is O(n).
#[allow(clippy::too_many_arguments)]
fn route_shard<M: Message>(
    graph: &Graph,
    plane: &MailboxPlane<M>,
    dirty: &DirtyBoard,
    fault: Option<&FaultState<M>>,
    inboxes: &mut [Vec<(NodeId, M)>],
    filled: &mut Vec<u32>,
    lo: usize,
    round: u64,
    epoch: u64,
    bandwidth: Bandwidth,
    lanes: Lanes,
) -> RouteStats {
    let offsets = graph.offsets();
    let mut stats = RouteStats::default();
    // Reproduce the old clear-everything semantics lazily: only inboxes
    // actually filled last round can be non-empty.
    for &v in filled.iter() {
        inboxes[v as usize - lo].clear();
    }
    filled.clear();
    // With a fault plan, a round nobody sent in can still deliver
    // held-back bundles, so the dead-lane shortcut only applies
    // fault-free.
    if !lanes.targeted && !lanes.bcast && fault.is_none() {
        return stats;
    }
    for (i, inbox) in inboxes.iter_mut().enumerate() {
        let v = lo + i;
        if let Some(f) = fault {
            // Faulty path: visit receivers that are dirty *or* have
            // held-back bundles coming due, and hand the whole
            // per-receiver sweep to the shared faulty router so all
            // engines inject identically.
            if !dirty.is_dirty(v, epoch) && !f.has_pending(v) {
                continue;
            }
            filled.push(v as u32);
            match route_receiver_faulty(
                graph,
                plane,
                f,
                inbox,
                v,
                round,
                epoch,
                bandwidth,
                lanes.targeted,
                lanes.bcast,
            ) {
                Ok(flow) => {
                    stats.max = stats.max.max(flow.max);
                    stats.bits += flow.bits;
                    stats.messages += flow.messages;
                    stats.faults.merge(&flow.faults);
                }
                Err(e) => {
                    stats.err = Some(e);
                    return stats;
                }
            }
            continue;
        }
        if !dirty.is_dirty(v, epoch) {
            continue;
        }
        filled.push(v as u32);
        let base = offsets[v];
        for (j, &u) in graph.neighbors(v as NodeId).iter().enumerate() {
            // Targeted lane: contiguous in-slot sweep.
            // SAFETY: slots are receiver-side keyed and routing workers
            // own disjoint receiver ranges, so slot `base + j` is reached
            // by exactly one worker; the phase barrier orders this access
            // after every step-phase write.
            let eslot = lanes
                .targeted
                .then(|| unsafe { &mut *plane.slots[base + j].get() })
                .filter(|s| s.stamp == epoch);
            // Broadcast lane: cache-resident gather by sender id.
            // SAFETY: broadcast slots are only *read* during routing (and
            // written solely by their owner in the step phase).
            let bslot = lanes
                .bcast
                .then(|| unsafe { &*plane.bcast[u as usize].get() })
                .filter(|b| b.stamp == epoch);
            if eslot.is_none() && bslot.is_none() {
                continue;
            }
            let edge_bits = eslot.as_ref().map_or(0u64, |s| u64::from(s.bits))
                + bslot.map_or(0u64, |b| u64::from(b.bits));
            if let Bandwidth::Strict(limit) = bandwidth {
                if edge_bits > limit {
                    stats.err = Some(SimError::BandwidthExceeded {
                        from: u,
                        to: v as NodeId,
                        bits: edge_bits,
                        limit,
                        round,
                    });
                    return stats;
                }
            }
            stats.max = stats.max.max(edge_bits);
            stats.bits += edge_bits;
            match (eslot, bslot) {
                (Some(s), None) => {
                    let msg = s.first.take().expect("live slot has a first message");
                    stats.messages += 1 + u64::from(s.spilled);
                    inbox.push((u, msg));
                    if s.spilled > 0 {
                        s.spilled = 0;
                        // SAFETY: same receiver-range exclusivity.
                        let sp = unsafe { &mut *plane.spill[base + j].get() };
                        inbox.extend(sp.drain(..).map(|(m, _)| (u, m)));
                    }
                }
                (None, Some(b)) => {
                    let msg = b.first.clone().expect("live slot has a first message");
                    stats.messages += 1 + u64::from(b.spilled);
                    inbox.push((u, msg));
                    if b.spilled > 0 {
                        // SAFETY: read-only, like the hot broadcast slot.
                        let sp = unsafe { &*plane.bcast_spill[u as usize].get() };
                        inbox.extend(sp.iter().map(|(m, _)| (u, m.clone())));
                    }
                }
                (Some(s), Some(b)) => {
                    // Rare: one neighbor used both lanes this round.
                    // Interleave back into exact send order by sequence.
                    stats.messages += 2 + u64::from(s.spilled) + u64::from(b.spilled);
                    let first_t = s.first.take().expect("live slot has a first message");
                    s.spilled = 0;
                    // SAFETY: as in the single-lane branches above.
                    let sp_t = unsafe { &mut *plane.spill[base + j].get() };
                    let sp_b = unsafe { &*plane.bcast_spill[u as usize].get() };
                    let mut te = std::iter::once((s.seq, first_t))
                        .chain(sp_t.drain(..).map(|(m, q)| (q, m)))
                        .peekable();
                    let first_b = b.first.clone().expect("live slot has a first message");
                    let mut be = std::iter::once((b.seq, first_b))
                        .chain(sp_b.iter().map(|(m, q)| (*q, m.clone())))
                        .peekable();
                    loop {
                        let take_targeted = match (te.peek(), be.peek()) {
                            (Some((tq, _)), Some((bq, _))) => tq < bq,
                            (Some(_), None) => true,
                            (None, Some(_)) => false,
                            (None, None) => break,
                        };
                        let (_, m) = if take_targeted {
                            te.next().expect("peeked")
                        } else {
                            be.next().expect("peeked")
                        };
                        inbox.push((u, m));
                    }
                }
                (None, None) => unreachable!("filtered above"),
            }
        }
    }
    stats
}

/// A type-erased pass the pool workers execute. `Sync` is load-bearing:
/// workers share one `&dyn WorkerTask` across threads.
trait WorkerTask: Sync {
    /// Run worker `w`'s side of the whole pass — every round of the
    /// 2-barrier owner/ghost protocol — returning when the pass exits
    /// (all workers compute the same exit locally).
    fn run_worker(&self, w: usize, shared: &PoolShared);
}

/// Shareable cell for the posted job pointer.
struct JobCell(UnsafeCell<Option<*const (dyn WorkerTask + 'static)>>);

/// SAFETY: written only by the coordinator while every worker is parked
/// at the pass-release barrier, read by workers only between that
/// barrier and the pass-end barrier (module docs). The pointee itself is
/// `Sync` (the [`WorkerTask`] supertrait), so sharing the pointer is
/// sound.
unsafe impl Sync for JobCell {}

/// SAFETY: as above — the cell only travels inside the `Arc<PoolShared>`
/// handed to the pool threads at spawn, before any job exists.
unsafe impl Send for JobCell {}

/// Coordinator ⇄ worker shared state, fixed for the session's lifetime.
///
/// The lane and error flags are **epoch-stamped** monotone counters
/// rather than per-round booleans: "the targeted lane was used in the
/// round of epoch `e`" is encoded as `targeted == e + 1` (stamps only
/// grow via `fetch_max`, `0` = never). Because the session epoch
/// counter never reuses a value, a stale stamp can never be mistaken
/// for the current round's, so the flags never need resetting between
/// rounds, passes, or rebinds — which is what lets the round protocol
/// run with two barriers and no coordinator turn-around.
struct PoolShared {
    /// Pass barrier over `workers + 1` parties (workers + coordinator):
    /// crossed twice per pass (release, end) and once at pool exit.
    pass_barrier: Barrier,
    /// Round barrier over the workers only — the exchange barrier (A)
    /// and the round-end barrier (B). The only per-round waits.
    round_barrier: Barrier,
    /// Raised on drop to terminate the worker threads.
    pool_exit: AtomicBool,
    /// The current pass's type-erased job.
    job: JobCell,
    /// Epochs the current pass consumed (worker 0 publishes per round;
    /// the coordinator folds it into the session counter at pass end).
    epochs_used: AtomicU64,
    /// Epoch-stamped lane flags (see struct docs).
    targeted: AtomicU64,
    bcast: AtomicU64,
    /// Epoch-stamped error flags: a step (route) error occurred in the
    /// round of epoch `e` iff the stamp equals `e + 1`.
    step_err: AtomicU64,
    route_err: AtomicU64,
    /// Per-worker cumulative retired counts for the current pass,
    /// written in the route window of each round (between barriers A
    /// and B) and read by every worker after barrier B.
    retired: Vec<AtomicU64>,
    /// Per-worker max edge load of the current round (same windows;
    /// read by worker 0 only, for the load profile).
    round_max: Vec<AtomicU64>,
}

/// The persistent worker pool: threads parked between passes.
struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    fn spawn(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            pass_barrier: Barrier::new(workers + 1),
            round_barrier: Barrier::new(workers),
            pool_exit: AtomicBool::new(false),
            job: JobCell(UnsafeCell::new(None)),
            epochs_used: AtomicU64::new(0),
            targeted: AtomicU64::new(0),
            bcast: AtomicU64::new(0),
            step_err: AtomicU64::new(0),
            route_err: AtomicU64::new(0),
            retired: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            round_max: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("congest-session-{w}"))
                    .spawn(move || worker_main(w, &shared))
                    .expect("spawn session worker")
            })
            .collect();
        Pool { shared, handles }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.pool_exit.store(true, Ordering::Release);
        self.shared.pass_barrier.wait();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A pool worker's outer loop: park until a pass (or pool exit) is
/// posted, run it, sync the pass-end barrier, repeat.
fn worker_main(w: usize, shared: &PoolShared) {
    loop {
        shared.pass_barrier.wait(); // pass posted (or pool exit)
        if shared.pool_exit.load(Ordering::Acquire) {
            break;
        }
        // SAFETY: the coordinator posted the job before releasing the
        // barrier and keeps the task alive until the pass-end barrier
        // below; between the two the pointee is valid and Sync.
        let task = unsafe { &*(*shared.job.0.get()).expect("job posted before release") };
        task.run_worker(w, shared);
        shared.pass_barrier.wait(); // pass-end: coordinator reclaims the task
    }
}

/// How a pass exited. Every worker computes the same exit from shared
/// per-round state; the coordinator reassembles the result from it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum ExitKind {
    /// Frontier empty — the pass completed.
    #[default]
    Done,
    /// Round cap hit (`completed = false`).
    Cap,
    /// Modeled crash before the round's step phase.
    Fault(u64),
    /// A step-phase error (selection: minimum erroring shard).
    StepErr,
    /// A routing-phase error (same selection).
    RouteErr,
}

/// What worker 0 publishes about the pass at exit.
#[derive(Default)]
struct PassOutcome {
    kind: ExitKind,
    /// Rounds fully or partially executed (the exit round for errors).
    rounds: u64,
    /// Round-barrier waits worker 0 performed — 2 per clean round.
    waits: u64,
    /// Per-round max edge loads (recorded by worker 0 only).
    profile: LoadProfile,
}

/// One worker's pass-lifetime accumulators, published at pass end.
/// Sums and fault counters are commutative, so per-worker grouping
/// merges to the same totals as the legacy per-round aggregation.
#[derive(Default)]
struct PassAccum {
    bits: u64,
    messages: u64,
    faults: FaultCounters,
}

/// One pass's job: the borrowed engine state plus per-shard slots.
struct PassTask<'a, P: Program> {
    graph: &'a Graph,
    plane: &'a MailboxPlane<P::Msg>,
    dirty: &'a DirtyBoard,
    exchange: &'a ExchangeLanes<P::Msg>,
    bandwidth: Bandwidth,
    /// The run's fault-injection state, if a plan is active. Shared by
    /// the workers under the same receiver-range exclusivity as the
    /// plane's slot arrays.
    fault: Option<&'a FaultState<P::Msg>>,
    /// The run's α-synchronizer state, if a schedule plan is active.
    /// Its clocks advance under the same receiver-range exclusivity,
    /// double-buffered by round parity (see `crate::sched`).
    sched: Option<&'a ScheduleState>,
    /// Shard geometry of this binding.
    chunk: usize,
    workers: usize,
    n: usize,
    max_rounds: u64,
    /// First epoch of the pass: round `r` runs at `epoch0 + r`.
    epoch0: u64,
    /// Nodes outside the frontier at pass start.
    init_halted: usize,
    /// Taken (strided) by the workers at pass start, returned at end.
    slots: Vec<Mutex<Option<WorkerSlot<'a, P>>>>,
    /// Per-worker: first error found, with its shard id (ascending
    /// strided iteration makes it the worker's minimum).
    err_out: Vec<Mutex<Option<(u32, SimError)>>>,
    /// Per-worker pass accumulators.
    acc_out: Vec<Mutex<PassAccum>>,
    /// Written once, by worker 0, at pass exit.
    outcome: Mutex<PassOutcome>,
}

impl<P: Program> WorkerTask for PassTask<'_, P> {
    fn run_worker(&self, w: usize, shared: &PoolShared) {
        // Worker w owns shards w, w + workers, … for the whole pass.
        let mut my: Vec<(usize, WorkerSlot<'_, P>)> = (w..self.slots.len())
            .step_by(self.workers)
            .map(|s| {
                let slot = self.slots[s]
                    .lock()
                    .expect("worker slot poisoned")
                    .take()
                    .expect("worker slot present");
                (s, slot)
            })
            .collect();
        let mut acc = PassAccum::default();
        let mut err: Option<(u32, SimError)> = None;
        let mut profile = LoadProfile::default();
        let mut waits = 0u64;
        let mut my_retired = 0u64;
        let mut halted = self.init_halted;
        let mut round = 0u64;
        let kind = loop {
            // Exit checks from state every worker computes identically.
            if halted == self.n {
                break ExitKind::Done;
            }
            if round >= self.max_rounds {
                break ExitKind::Cap;
            }
            if let Some(f) = self.fault {
                // Same abort placement as the sequential loop: before
                // the step phase; the aborted round consumes no epoch.
                if f.abort_round(round) {
                    break ExitKind::Fault(round);
                }
                // Each worker advances crash fates over its own shards
                // before stepping them; foreign ranges are only *read*
                // (sender-down checks) in the routing phase, on the far
                // side of barrier A.
                if f.has_crashes() {
                    for (_, slot) in &my {
                        f.advance_crashes(slot.lo, slot.lo + slot.programs.len(), round);
                    }
                }
            }
            let epoch = self.epoch0 + round;
            if w == 0 {
                shared.epochs_used.store(round + 1, Ordering::Release);
            }
            // Prefetch iff the previous round used the targeted lane:
            // the stamp of that round is exactly `epoch`. (At a pass's
            // round 0 a retained stamp from the previous pass's last
            // round reads the same way — prefetch is a pure hint, so
            // this cross-pass carry-over cannot affect transcripts.)
            let prefetch = shared.targeted.load(Ordering::Acquire) == epoch;
            let mut lanes = Lanes::default();
            for (s, slot) in &mut my {
                let out = step_shard(
                    self.graph,
                    self.plane,
                    self.dirty,
                    self.exchange.row(*s),
                    self.chunk as u32,
                    slot,
                    round,
                    epoch,
                    prefetch,
                    self.fault,
                );
                my_retired += out.retired as u64;
                acc.faults.misrouted += out.misrouted;
                lanes.targeted |= out.lanes.targeted;
                lanes.bcast |= out.lanes.bcast;
                if let Some(e) = out.err {
                    if err.is_none() {
                        err = Some((*s as u32, e));
                    }
                }
            }
            if lanes.targeted {
                shared.targeted.fetch_max(epoch + 1, Ordering::AcqRel);
            }
            if lanes.bcast {
                shared.bcast.fetch_max(epoch + 1, Ordering::AcqRel);
            }
            if err.is_some() {
                shared.step_err.fetch_max(epoch + 1, Ordering::AcqRel);
            }
            waits += 1;
            shared.round_barrier.wait(); // barrier A: exchange
            if shared.step_err.load(Ordering::Acquire) == epoch + 1 {
                // Abort before routing, like the legacy engines; the
                // staged outboxes stay fenced off by their stamps.
                break ExitKind::StepErr;
            }
            let lanes = Lanes {
                targeted: shared.targeted.load(Ordering::Acquire) == epoch + 1,
                bcast: shared.bcast.load(Ordering::Acquire) == epoch + 1,
            };
            let mut round_max = 0u64;
            let mut route_errored = false;
            for (s, slot) in &mut my {
                self.exchange.apply_into(*s, self.plane, self.dirty, epoch);
                // Clock advancement before the shard's deliveries, on
                // the far side of barrier A: crash cells are read-only
                // in this phase and the previous round's clock parity
                // was written two barriers ago. A stall feeds the same
                // min-shard error selection as a routing error.
                if let Some(sc) = self.sched {
                    let hi = slot.lo + slot.programs.len();
                    if let Some(e) = sc.advance_clocks(self.graph, self.fault, slot.lo, hi, round) {
                        if err.is_none() {
                            err = Some((*s as u32, e));
                        }
                        route_errored = true;
                    }
                }
                let stats = route_shard(
                    self.graph,
                    self.plane,
                    self.dirty,
                    self.fault,
                    &mut *slot.inboxes,
                    &mut *slot.filled,
                    slot.lo,
                    round,
                    epoch,
                    self.bandwidth,
                    lanes,
                );
                round_max = round_max.max(stats.max);
                acc.bits += stats.bits;
                acc.messages += stats.messages;
                acc.faults.merge(&stats.faults);
                if let Some(e) = stats.err {
                    if err.is_none() {
                        err = Some((*s as u32, e));
                    }
                    route_errored = true;
                }
            }
            if route_errored {
                shared.route_err.fetch_max(epoch + 1, Ordering::AcqRel);
            }
            shared.retired[w].store(my_retired, Ordering::Release);
            shared.round_max[w].store(round_max, Ordering::Release);
            waits += 1;
            shared.round_barrier.wait(); // barrier B: round end
            if shared.route_err.load(Ordering::Acquire) == epoch + 1 {
                break ExitKind::RouteErr;
            }
            // Read window (B, next A): every worker derives the same
            // halted count; worker 0 also folds the round's edge load.
            halted = self.init_halted
                + shared
                    .retired
                    .iter()
                    .map(|a| a.load(Ordering::Acquire) as usize)
                    .sum::<usize>();
            if w == 0 {
                let gmax = shared
                    .round_max
                    .iter()
                    .map(|a| a.load(Ordering::Acquire))
                    .max()
                    .unwrap_or(0);
                profile.record(gmax);
            }
            round += 1;
        };
        *self.err_out[w].lock().expect("error slot poisoned") = err;
        *self.acc_out[w].lock().expect("accum slot poisoned") = acc;
        if w == 0 {
            // A step/route error exits from inside its round: count it,
            // matching the sequential loop's accounting.
            let rounds = match kind {
                ExitKind::StepErr | ExitKind::RouteErr => round + 1,
                _ => round,
            };
            *self.outcome.lock().expect("outcome poisoned") = PassOutcome {
                kind,
                rounds,
                waits,
                profile,
            };
        }
        for (s, slot) in my {
            *self.slots[s].lock().expect("worker slot poisoned") = Some(slot);
        }
    }
}

/// The graph-independent half of a [`Session`]: every allocation the
/// engine owns that survives retargeting to a *different* graph — the
/// mailbox-plane lane arrays, the dirty board, the per-node RNG and inbox
/// vectors, the per-worker scheduler scratch, the parked worker pool, and
/// the session-global epoch counter.
///
/// A core cycles through bindings:
///
/// ```text
/// SessionCore::new() ── bind(graph) ──▶ Session ── unbind() ──▶ SessionCore
///        ▲                                                          │
///        └────────────────── bind(next graph) ◀────────────────────┘
/// ```
///
/// [`SessionCore::bind`] retargets the storage at a new graph in place:
/// lane arrays are resized (capacity reused, growing only when the new
/// graph is larger), the reverse-CSR permutation is rebuilt, and the
/// worker pool is kept parked whenever the new binding needs the same
/// worker count (it is respawned only when the worker count changes, and
/// retained across sequential bindings). The **epoch counter carries
/// over**: it never resets, so slot stamps and dirty-board stamps written
/// under a previous binding can never alias a round of a later one —
/// stale payloads from the old graph are unreachable by construction.
///
/// Solver stacks use this to run a stream of solves over varying graphs
/// on one warm engine (see `d1lc::server::SolveServer`).
pub struct SessionCore<M: Message> {
    plane: MailboxPlane<M>,
    dirty: DirtyBoard,
    exchange: ExchangeLanes<M>,
    rngs: Vec<StdRng>,
    inboxes: Vec<Vec<(NodeId, M)>>,
    active: Vec<Vec<u32>>,
    filled: Vec<Vec<u32>>,
    lookups: Vec<NeighborIndex>,
    /// Session-global round counter; strictly increasing, never reused
    /// (so stale slot stamps can never alias a later round), including
    /// across rebinds.
    epoch: u64,
    pool: Option<Pool>,
    /// Node count of the graph last bound (0 before the first binding).
    bound_n: usize,
    /// Directed-edge count of the graph last bound.
    bound_m: usize,
}

impl<M: Message> Default for SessionCore<M> {
    fn default() -> Self {
        SessionCore::new()
    }
}

impl<M: Message> SessionCore<M> {
    /// An empty core, bound to no graph. The first [`SessionCore::bind`]
    /// allocates; later binds reuse.
    pub fn new() -> Self {
        SessionCore {
            plane: MailboxPlane::empty(),
            dirty: DirtyBoard::new(0),
            exchange: ExchangeLanes::empty(),
            rngs: Vec::new(),
            inboxes: Vec::new(),
            active: Vec::new(),
            filled: Vec::new(),
            lookups: Vec::new(),
            epoch: 0,
            pool: None,
            bound_n: 0,
            bound_m: 0,
        }
    }

    /// Bind the core to `graph`, producing a ready [`Session`]. All
    /// graph-shaped storage is retargeted in place (O(n + m), reusing
    /// capacity); the worker pool and epoch counter carry over as
    /// described on [`SessionCore`].
    pub fn bind(mut self, graph: &Graph, config: SimConfig) -> Session<'_, M> {
        self.plane.rebuild(graph);
        self.finish_bind(graph, config)
    }

    /// Like [`SessionCore::bind`], but skips rebuilding the mailbox-plane
    /// permutation: the caller asserts `graph` is **structurally
    /// identical** (same node ids, same adjacency) to the graph this core
    /// was last bound to — e.g. the same `Arc<Graph>` resolved again.
    /// Node and edge counts are always checked; debug builds verify the
    /// retained permutation edge by edge against `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `graph`'s node or directed-edge count differs from the
    /// previous binding's.
    pub fn bind_same_graph(self, graph: &Graph, config: SimConfig) -> Session<'_, M> {
        assert_eq!(
            (graph.n(), graph.adjacency().len()),
            (self.bound_n, self.bound_m),
            "bind_same_graph: graph shape differs from the previous binding"
        );
        #[cfg(debug_assertions)]
        {
            let offsets = graph.offsets();
            let adj = graph.adjacency();
            for v in 0..graph.n() {
                for (j, &u) in graph.neighbors(v as NodeId).iter().enumerate() {
                    let e = self.plane.rev[offsets[v] + j] as usize;
                    debug_assert!(
                        offsets[u as usize] <= e
                            && e < offsets[u as usize + 1]
                            && adj[e] == v as NodeId,
                        "bind_same_graph: retained permutation does not match this graph"
                    );
                }
            }
        }
        self.finish_bind(graph, config)
    }

    /// The binding steps shared by both entry points: derive the shard
    /// and worker geometry, resize the graph-sized and shard-sized
    /// storage, and reconcile the worker pool with the worker count.
    fn finish_bind(mut self, graph: &Graph, config: SimConfig) -> Session<'_, M> {
        let n = graph.n();
        // Ownership-shard count: an explicit `config.shards` is honored
        // as requested (clamped to n); `0` derives it from `threads`
        // with the pre-sharding auto heuristic, so default configs keep
        // the seed geometry exactly.
        let auto_parallel = config.threads > 1 && n >= PAR_MIN_NODES;
        let shard_request = if config.shards > 0 {
            config.shards
        } else if auto_parallel {
            config.threads
        } else {
            1
        };
        let chunk = n.div_ceil(shard_request).max(1);
        let shards = n.div_ceil(chunk).max(1);
        // Worker threads: never more than the shards they execute
        // (strided); `threads == 1` always stays on the sequential
        // path, whatever the shard count.
        let workers = if config.threads <= 1 {
            1
        } else {
            config.threads.min(shards)
        };
        self.dirty.grow(n);
        self.exchange.ensure(shards);
        self.inboxes.resize_with(n, Vec::new);
        self.rngs.truncate(n); // grown lazily by the per-pass reseed
        self.active.resize_with(shards, Vec::new);
        self.filled.resize_with(shards, Vec::new);
        self.lookups.resize_with(shards, || NeighborIndex::new(n));
        for lookup in &mut self.lookups {
            lookup.grow(n);
        }
        // Keep a parked pool whenever its worker count still fits (in
        // particular across sequential bindings, where the sequential
        // path simply ignores it); respawn only on a genuine mismatch.
        let pool_workers = self.pool.as_ref().map_or(0, |p| p.handles.len());
        if workers > 1 && pool_workers != workers {
            self.pool = Some(Pool::spawn(workers));
        }
        self.bound_n = n;
        self.bound_m = graph.adjacency().len();
        Session {
            graph,
            config,
            chunk,
            shards,
            workers,
            audit: BarrierAudit::default(),
            core: self,
        }
    }
}

/// Synchronization diagnostics of a session's most recent pass — the
/// regression hook behind the barrier-budget guarantee.
///
/// The owner/ghost worker protocol spends exactly **2 round-barrier
/// waits per full round** (the exchange barrier and the round-end
/// barrier); the legacy pooled generations spend 4 per round (see the
/// scoped pool in [`crate::reference`]). The sequential path spends 0.
/// Waits are counted by worker 0; an error round can end after a single
/// wait (a step error aborts before routing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BarrierAudit {
    /// Rounds the pass executed (error rounds included).
    pub rounds: u64,
    /// Round-barrier waits performed by worker 0 during the pass.
    pub round_waits: u64,
}

/// A persistent engine session: plane, RNGs, inboxes, scratch, worker
/// pool, and scheduler state, reused across every pass of a solve.
///
/// Build one with [`Session::new`], then call [`Session::run`] once per
/// pass; results are byte-identical to running each pass through
/// [`crate::run`] — including across thread counts — while amortizing
/// all per-pass setup. To reuse the allocations across *solves over
/// different graphs*, recover the graph-independent storage with
/// [`Session::unbind`] (or retarget directly with [`Session::rebind`]).
///
/// # Example
///
/// ```
/// use congest::{Ctx, Program, Session, SimConfig};
///
/// /// Announces once, then halts.
/// struct Ping { heard: usize, done: bool }
/// #[derive(Clone)]
/// struct Hi;
/// impl congest::Message for Hi {
///     fn bit_cost(&self) -> u64 { 1 }
/// }
/// impl Program for Ping {
///     type Msg = Hi;
///     fn on_round(&mut self, ctx: &mut Ctx<'_, Hi>) {
///         if ctx.round() == 0 {
///             ctx.broadcast(Hi);
///         } else {
///             self.heard = ctx.inbox().len();
///             self.done = true;
///         }
///     }
///     fn is_done(&self) -> bool { self.done }
/// }
///
/// let g = graphs::gen::cycle(8);
/// let mut session = Session::new(&g, SimConfig::default());
/// for pass_seed in [1u64, 2, 3] {
///     let mut programs: Vec<Ping> =
///         (0..8).map(|_| Ping { heard: 0, done: false }).collect();
///     let report = session.run(&mut programs, pass_seed).unwrap();
///     assert_eq!(report.rounds, 2);
///     assert!(programs.iter().all(|p| p.heard == 2));
/// }
/// ```
pub struct Session<'g, M: Message> {
    graph: &'g Graph,
    config: SimConfig,
    chunk: usize,
    /// Ownership-shard count of *this binding*.
    shards: usize,
    /// Worker threads of *this binding* (≤ `shards`; 1 = sequential —
    /// the parked pool, if any, may differ when it was retained across
    /// a sequential binding).
    workers: usize,
    /// Synchronization diagnostics of the most recent pass.
    audit: BarrierAudit,
    core: SessionCore<M>,
}

impl<'g, M: Message> Session<'g, M> {
    /// Build a session for `graph`. `config.seed` is not used — each
    /// [`Session::run`] takes its own pass seed; bandwidth policy, round
    /// cap, and thread count come from `config`.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        SessionCore::new().bind(graph, config)
    }

    /// The graph this session runs on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The engine configuration the session was built with.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Synchronization diagnostics of the most recent pass (all zeros
    /// before the first run). See [`BarrierAudit`]: the owner/ghost
    /// protocol pins `round_waits` to `2 × rounds` on a clean pooled
    /// pass and `0` on the sequential path.
    pub fn barrier_audit(&self) -> BarrierAudit {
        self.audit
    }

    /// Ownership-shard count of this binding (see [`SimConfig::shards`]).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Worker threads executing this binding's shards (1 = sequential).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Release the graph binding, recovering the reusable
    /// [`SessionCore`] (allocations, parked worker pool, epoch counter).
    pub fn unbind(self) -> SessionCore<M> {
        self.core
    }

    /// Retarget this session at a new graph (and config) in place:
    /// shorthand for [`Session::unbind`] + [`SessionCore::bind`]. The
    /// returned session is byte-identical in behaviour to a fresh
    /// [`Session::new`] for `graph` — reuse only changes who owns the
    /// allocations.
    pub fn rebind<'h>(self, graph: &'h Graph, config: SimConfig) -> Session<'h, M> {
        self.core.bind(graph, config)
    }

    /// Run one pass over **all** nodes: node `v`'s RNG is reseeded from
    /// `(seed, v)` exactly as [`crate::run`] does, the frontier starts
    /// with every node whose program is not already done, and the run
    /// ends when the frontier is empty (or the round cap is hit).
    ///
    /// `programs` are advanced in place — on error they still hold each
    /// node's last consistent state, so callers can report partial
    /// results.
    ///
    /// # Errors
    ///
    /// As [`crate::run`]: [`SimError::NotANeighbor`] or, in strict mode,
    /// [`SimError::BandwidthExceeded`], with the same deterministic
    /// first-offender selection for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != graph.n()`.
    pub fn run<P: Program<Msg = M>>(
        &mut self,
        programs: &mut [P],
        seed: u64,
    ) -> Result<RunReport, SimError> {
        self.run_from(programs, seed, |_| true)
    }

    /// Like [`Session::run`], but the driver chooses the initial
    /// frontier: node `v` starts active iff `active(v)` (and its program
    /// is not already done). Nodes left out are never stepped this run —
    /// they count as finished for termination but still receive (and are
    /// billed for) messages. This is the reactivation half of the
    /// halt/reactivate protocol: [`crate::Ctx::halt`] retires a node,
    /// the next `run_from` decides who returns.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != graph.n()`.
    pub fn run_from<P: Program<Msg = M>>(
        &mut self,
        programs: &mut [P],
        seed: u64,
        mut active: impl FnMut(NodeId) -> bool,
    ) -> Result<RunReport, SimError> {
        let n = self.graph.n();
        assert_eq!(programs.len(), n, "need exactly one program per node");
        // Per-pass reset: reseed RNGs, drop leftover deliveries, rebuild
        // the frontier. All O(n) — the plane, pool, and scratch carry
        // over untouched. The RNG vector grows in place (capacity is
        // reused across passes and rebinds).
        let kept = self.core.rngs.len().min(n);
        for (v, rng) in self.core.rngs.iter_mut().take(kept).enumerate() {
            *rng = StdRng::seed_from_u64(mix2(seed, v as u64));
        }
        for v in kept..n {
            self.core
                .rngs
                .push(StdRng::seed_from_u64(mix2(seed, v as u64)));
        }
        for inbox in &mut self.core.inboxes {
            inbox.clear();
        }
        for filled in &mut self.core.filled {
            filled.clear();
        }
        let mut halted_count = 0usize;
        for (w, list) in self.core.active.iter_mut().enumerate() {
            list.clear();
            let lo = w * self.chunk;
            let hi = (lo + self.chunk).min(n);
            for (v, program) in programs.iter().enumerate().take(hi).skip(lo) {
                if active(v as NodeId) && !program.is_done() {
                    list.push(v as u32);
                } else {
                    halted_count += 1;
                }
            }
        }
        let slots = make_slots(
            programs,
            &mut self.core.rngs,
            &mut self.core.inboxes,
            &mut self.core.active,
            &mut self.core.filled,
            &mut self.core.lookups,
            self.chunk,
        );
        // Fault-injection state lives for exactly this run: holdback
        // queues die at the pass boundary (a synchronization point), so a
        // delayed bundle can never leak into a later pass or rebinding.
        let fault = self
            .config
            .fault
            .is_active()
            .then(|| FaultState::new(self.config.fault, seed, self.graph));
        // Synchronizer state likewise: the virtual pulse clocks are
        // keyed by this run's pass seed and die at the pass boundary.
        let sched = self
            .config
            .sched
            .is_active()
            .then(|| ScheduleState::new(self.config.sched, seed, self.graph));
        let mut result = if self.workers > 1 {
            let pool = self
                .core
                .pool
                .as_ref()
                .expect("multi-worker binding has a pool");
            run_rounds_pooled(
                self.graph,
                &self.core.plane,
                &self.core.dirty,
                &self.core.exchange,
                self.config,
                fault.as_ref(),
                sched.as_ref(),
                &pool.shared,
                slots,
                self.chunk,
                self.workers,
                &mut self.core.epoch,
                halted_count,
                &mut self.audit,
            )
        } else {
            run_rounds_sequential(
                self.graph,
                &self.core.plane,
                &self.core.dirty,
                &self.core.exchange,
                self.config,
                fault.as_ref(),
                sched.as_ref(),
                slots,
                self.chunk,
                &mut self.core.epoch,
                halted_count,
                &mut self.audit,
            )
        };
        // The synchronizer's overhead counters fold in first — they are
        // pure timing diagnostics, read by the coordinator after the
        // last phase barrier, and never gate the run's outcome.
        if let (Ok(report), Some(s)) = (&mut result, &sched) {
            report.sched = s.collect(report.rounds, self.graph);
        }
        let crash_err = if let (Ok(report), Some(f)) = (&mut result, &fault) {
            report.starved = f.collect_starved();
            report.crashed = f.collect_crashed();
            report.faults.crashes = f.crash_event_total();
            // The opt-in fail-fast verdicts fire last, after the report
            // is fully assembled — same placement in every engine.
            f.crash_outcome(report.rounds).err()
        } else {
            None
        };
        if let Some(e) = crash_err {
            return Err(e);
        }
        result
    }
}

/// Partition every per-node array into the per-worker slots.
#[allow(clippy::too_many_arguments)]
fn make_slots<'a, P: Program>(
    programs: &'a mut [P],
    rngs: &'a mut [StdRng],
    inboxes: &'a mut [Vec<(NodeId, P::Msg)>],
    active: &'a mut [Vec<u32>],
    filled: &'a mut [Vec<u32>],
    lookups: &'a mut [NeighborIndex],
    chunk: usize,
) -> Vec<WorkerSlot<'a, P>> {
    let mut slots = Vec::with_capacity(active.len());
    let mut lo = 0usize;
    let iter = programs
        .chunks_mut(chunk)
        .zip(rngs.chunks_mut(chunk))
        .zip(inboxes.chunks_mut(chunk))
        .zip(active.iter_mut())
        .zip(filled.iter_mut())
        .zip(lookups.iter_mut());
    for (((((programs, rngs), inboxes), active), filled), lookup) in iter {
        let lo_w = lo;
        lo += programs.len();
        slots.push(WorkerSlot {
            lo: lo_w,
            programs,
            rngs,
            inboxes,
            active,
            filled,
            lookup,
        });
    }
    slots
}

/// The single-threaded round loop: no barriers, one scratch. Multi-shard
/// bindings run here too when `workers == 1` — step every shard (staging
/// cross-shard sends), then per shard replay the inbound exchange cells
/// and route; byte-identical to the pooled protocol by construction.
#[allow(clippy::too_many_arguments)]
fn run_rounds_sequential<P: Program>(
    graph: &Graph,
    plane: &MailboxPlane<P::Msg>,
    dirty: &DirtyBoard,
    exchange: &ExchangeLanes<P::Msg>,
    config: SimConfig,
    fault: Option<&FaultState<P::Msg>>,
    sched: Option<&ScheduleState>,
    mut slots: Vec<WorkerSlot<'_, P>>,
    chunk: usize,
    epoch_counter: &mut u64,
    mut halted_count: usize,
    audit: &mut BarrierAudit,
) -> Result<RunReport, SimError> {
    let n = graph.n();
    let mut report = RunReport {
        completed: true,
        ..Default::default()
    };
    let mut round = 0u64;
    let mut prefetch = false;
    *audit = BarrierAudit::default();
    loop {
        audit.rounds = round;
        if halted_count == n {
            break;
        }
        if round >= config.max_rounds {
            report.completed = false;
            break;
        }
        // The modeled crash fires before the round's step phase, at the
        // same pass-local round in every engine and thread count.
        if let Some(f) = fault {
            if f.abort_round(round) {
                return Err(SimError::FaultInjected { round });
            }
            if f.has_crashes() {
                f.advance_crashes(0, n, round);
            }
        }
        // Reserve the epoch up front so an aborted round can never be
        // aliased by a later one.
        let epoch = *epoch_counter;
        *epoch_counter += 1;
        audit.rounds = round + 1;
        let mut lanes = Lanes::default();
        let mut err = None;
        for (s, slot) in slots.iter_mut().enumerate() {
            let out = step_shard(
                graph,
                plane,
                dirty,
                exchange.row(s),
                chunk as u32,
                slot,
                round,
                epoch,
                prefetch,
                fault,
            );
            if err.is_none() {
                err = out.err;
            }
            lanes.targeted |= out.lanes.targeted;
            lanes.bcast |= out.lanes.bcast;
            halted_count += out.retired;
            report.faults.misrouted += out.misrouted;
        }
        if let Some(e) = err {
            return Err(e);
        }
        prefetch = lanes.targeted;
        let mut stats = RouteStats::default();
        for (s, slot) in slots.iter_mut().enumerate() {
            exchange.apply_into(s, plane, dirty, epoch);
            // The synchronizer's clocks advance in the routing phase —
            // crash cells are read-only here and the previous round's
            // clock parity is settled — before the shard's deliveries,
            // so a stall outranks this shard's routing errors exactly as
            // in the pooled protocol.
            if let Some(sc) = sched {
                let hi = slot.lo + slot.programs.len();
                if let Some(e) = sc.advance_clocks(graph, fault, slot.lo, hi, round) {
                    if stats.err.is_none() {
                        stats.err = Some(e);
                    }
                }
            }
            let st = route_shard(
                graph,
                plane,
                dirty,
                fault,
                &mut *slot.inboxes,
                &mut *slot.filled,
                slot.lo,
                round,
                epoch,
                config.bandwidth,
                lanes,
            );
            stats.max = stats.max.max(st.max);
            stats.bits += st.bits;
            stats.messages += st.messages;
            stats.faults.merge(&st.faults);
            if stats.err.is_none() {
                stats.err = st.err;
            }
        }
        if let Some(e) = stats.err {
            return Err(e);
        }
        report.total_bits += stats.bits;
        report.messages += stats.messages;
        report.faults.merge(&stats.faults);
        report.edge_load.record(stats.max);
        round += 1;
    }
    report.rounds = round;
    Ok(report)
}

/// The pooled round loop: post the pass to the parked workers, then
/// park until they finish. The workers run the whole 2-barrier
/// owner/ghost protocol among themselves ([`PassTask::run_worker`]);
/// the coordinator only reassembles the result afterwards. Determinism:
/// per-node work is independent of sharding, counters merge with
/// commutative ops, and first-error selection takes the minimum
/// erroring shard id — ascending node order, like every legacy engine.
#[allow(clippy::too_many_arguments)]
fn run_rounds_pooled<P: Program>(
    graph: &Graph,
    plane: &MailboxPlane<P::Msg>,
    dirty: &DirtyBoard,
    exchange: &ExchangeLanes<P::Msg>,
    config: SimConfig,
    fault: Option<&FaultState<P::Msg>>,
    sched: Option<&ScheduleState>,
    shared: &PoolShared,
    slots: Vec<WorkerSlot<'_, P>>,
    chunk: usize,
    workers: usize,
    epoch_counter: &mut u64,
    halted_count: usize,
    audit: &mut BarrierAudit,
) -> Result<RunReport, SimError> {
    let task = PassTask {
        graph,
        plane,
        dirty,
        exchange,
        bandwidth: config.bandwidth,
        fault,
        sched,
        chunk,
        workers,
        n: graph.n(),
        max_rounds: config.max_rounds,
        epoch0: *epoch_counter,
        init_halted: halted_count,
        slots: slots.into_iter().map(|s| Mutex::new(Some(s))).collect(),
        err_out: (0..workers).map(|_| Mutex::new(None)).collect(),
        acc_out: (0..workers)
            .map(|_| Mutex::new(PassAccum::default()))
            .collect(),
        outcome: Mutex::new(PassOutcome::default()),
    };
    let raw: *const (dyn WorkerTask + '_) = &task;
    // SAFETY: lifetime erasure only — the pointer is dereferenced solely
    // between the pass-release and pass-end barriers, both inside this
    // call, while `task` is alive on this stack frame (module docs).
    let raw: *const (dyn WorkerTask + 'static) = unsafe { std::mem::transmute(raw) };
    // A pass that exits before its first round (empty frontier, zero
    // round cap, round-0 abort) consumes no epochs.
    shared.epochs_used.store(0, Ordering::Release);
    // SAFETY: all workers are parked at the pass-release barrier; no one
    // reads the cell until the wait below.
    unsafe {
        *shared.job.0.get() = Some(raw);
    }
    shared.pass_barrier.wait(); // pass release — workers run the whole pass
    shared.pass_barrier.wait(); // pass end — workers returned their slots
                                // SAFETY: every worker is parked again; the task borrow is dead.
    unsafe {
        *shared.job.0.get() = None;
    }
    *epoch_counter += shared.epochs_used.load(Ordering::Acquire);
    let outcome = std::mem::take(&mut *task.outcome.lock().expect("outcome poisoned"));
    *audit = BarrierAudit {
        rounds: outcome.rounds,
        round_waits: outcome.waits,
    };
    match outcome.kind {
        ExitKind::Done | ExitKind::Cap => {
            let mut report = RunReport {
                completed: outcome.kind == ExitKind::Done,
                rounds: outcome.rounds,
                edge_load: outcome.profile,
                ..Default::default()
            };
            for cell in &task.acc_out {
                let acc = std::mem::take(&mut *cell.lock().expect("accum slot poisoned"));
                report.total_bits += acc.bits;
                report.messages += acc.messages;
                report.faults.merge(&acc.faults);
            }
            Ok(report)
        }
        ExitKind::Fault(round) => Err(SimError::FaultInjected { round }),
        ExitKind::StepErr | ExitKind::RouteErr => {
            let mut first: Option<(u32, SimError)> = None;
            for cell in &task.err_out {
                let found = std::mem::take(&mut *cell.lock().expect("error slot poisoned"));
                if let Some((shard, e)) = found {
                    if first.as_ref().is_none_or(|(s, _)| shard < *s) {
                        first = Some((shard, e));
                    }
                }
            }
            let (_, e) = first.expect("an erroring pass records at least one error");
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::reference::run_reference;
    use graphs::gen;

    /// Counts how often it is stepped; halts itself after `active_rounds`
    /// steps and panics if stepped again.
    struct HaltCounter {
        active_rounds: u64,
        steps: u64,
        halted: bool,
    }

    impl Program for HaltCounter {
        type Msg = ();
        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>) {
            assert!(!self.halted, "node {} stepped after halt()", ctx.id());
            self.steps += 1;
            ctx.broadcast(());
            if self.steps >= self.active_rounds {
                self.halted = true;
                ctx.halt();
            }
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    /// Satellite: a halted node is never stepped again, and halting
    /// counts as finished for run termination even with `is_done` false.
    #[test]
    fn halted_node_is_never_stepped() {
        let g = gen::cycle(10);
        let mut session: Session<'_, ()> = Session::new(&g, SimConfig::default());
        let mut programs: Vec<HaltCounter> = (0..10)
            .map(|v| HaltCounter {
                active_rounds: 1 + v % 4,
                steps: 0,
                halted: false,
            })
            .collect();
        let report = session.run(&mut programs, 3).expect("run");
        assert!(report.completed);
        // The run ends one round after the slowest halter's last step.
        assert_eq!(report.rounds, 4);
        for (v, p) in programs.iter().enumerate() {
            assert_eq!(p.steps, 1 + (v as u64) % 4, "node {v} step count");
        }
    }

    /// Halting with threads > 1 behaves identically (and the pooled
    /// never-step invariant holds via the same panic guard).
    #[test]
    fn halted_node_is_never_stepped_pooled() {
        let n = 400; // above PAR_MIN_NODES
        let g = gen::cycle(n);
        let mk = || -> Vec<HaltCounter> {
            (0..n)
                .map(|v| HaltCounter {
                    active_rounds: 1 + (v as u64) % 5,
                    steps: 0,
                    halted: false,
                })
                .collect()
        };
        let mut seq: Session<'_, ()> = Session::new(&g, SimConfig::default());
        let mut a = mk();
        let ra = seq.run(&mut a, 7).expect("run");
        let cfg = SimConfig {
            threads: 4,
            ..SimConfig::default()
        };
        let mut pooled: Session<'_, ()> = Session::new(&g, cfg);
        let mut b = mk();
        let rb = pooled.run(&mut b, 7).expect("run");
        assert_eq!(ra, rb);
        assert!(a.iter().zip(&b).all(|(x, y)| x.steps == y.steps));
    }

    /// `run_from` keeps excluded nodes out of the frontier entirely.
    #[test]
    fn run_from_respects_the_initial_frontier() {
        let g = gen::cycle(8);
        let mut session: Session<'_, ()> = Session::new(&g, SimConfig::default());
        let mut programs: Vec<HaltCounter> = (0..8)
            .map(|_| HaltCounter {
                active_rounds: 2,
                steps: 0,
                halted: false,
            })
            .collect();
        let report = session
            .run_from(&mut programs, 1, |v| v % 2 == 0)
            .expect("run");
        assert!(report.completed);
        for (v, p) in programs.iter().enumerate() {
            let expect = if v % 2 == 0 { 2 } else { 0 };
            assert_eq!(p.steps, expect, "node {v}");
        }
    }

    use crate::engine::tests::min_flood_programs;

    /// Session reuse across passes is byte-identical to a fresh
    /// `congest::run` per pass and to the legacy reference plane, for
    /// every thread count.
    #[test]
    fn session_reuse_matches_per_pass_runs() {
        let g = gen::gnp(400, 0.02, 17);
        for threads in [1usize, 2, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::default()
            };
            let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
            for pass_seed in [5u64, 99, 123] {
                let mut programs = min_flood_programs(400);
                let rs = session.run(&mut programs, pass_seed).expect("session");
                let (one_shot, ro) = run(
                    &g,
                    min_flood_programs(400),
                    SimConfig {
                        seed: pass_seed,
                        ..cfg
                    },
                )
                .expect("one-shot");
                let (refr, rr) = run_reference(
                    &g,
                    min_flood_programs(400),
                    SimConfig {
                        seed: pass_seed,
                        ..cfg
                    },
                )
                .expect("reference");
                assert_eq!(rs, ro, "pass {pass_seed} threads {threads}: one-shot");
                assert_eq!(rs, rr, "pass {pass_seed} threads {threads}: reference");
                assert!(programs.iter().zip(&one_shot).all(|(a, b)| a.min == b.min));
                assert!(programs.iter().zip(&refr).all(|(a, b)| a.min == b.min));
            }
        }
    }

    /// Mixed-degree message sparsity: only dirty receivers get swept, but
    /// the bit/message accounting matches the full-sweep wrapper exactly.
    #[test]
    fn dirty_receiver_accounting_matches_full_sweep() {
        #[derive(Clone)]
        struct Loner {
            done: bool,
        }
        impl Program for Loner {
            type Msg = crate::engine::tests::IdMsg;
            fn on_round(&mut self, ctx: &mut Ctx<'_, crate::engine::tests::IdMsg>) {
                if ctx.round() < 3 {
                    if ctx.id() == 0 {
                        if let Some(&w) = ctx.neighbors().first() {
                            ctx.send(w, crate::engine::tests::IdMsg(ctx.id()));
                        }
                    }
                } else {
                    self.done = true;
                }
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let g = gen::gnp(300, 0.05, 3);
        let mk = || vec![Loner { done: false }; 300];
        let (a, ra) = run(&g, mk(), SimConfig::seeded(2)).expect("run");
        let (b, rb) = run_reference(&g, mk(), SimConfig::seeded(2)).expect("reference");
        assert_eq!(ra, rb);
        assert!(a.iter().zip(&b).all(|(x, y)| x.done == y.done));
    }

    /// A program that must observe an empty world: sends nothing and
    /// asserts its inbox stays empty. If a rebound session ever delivered
    /// stale slots (epoch aliasing across rebinds), this panics.
    struct MustHearNothing {
        rounds: u64,
        done: bool,
    }

    impl Program for MustHearNothing {
        type Msg = crate::engine::tests::IdMsg;
        fn on_round(&mut self, ctx: &mut Ctx<'_, crate::engine::tests::IdMsg>) {
            assert!(
                ctx.inbox().is_empty(),
                "node {} heard a stale message after rebind",
                ctx.id()
            );
            if ctx.round() + 1 >= self.rounds {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    /// Satellite: a rebound session never aliases stale epochs or slots
    /// from the previous graph — a silent pass on the new graph hears
    /// nothing, and a real pass matches a fresh session byte for byte.
    #[test]
    fn rebound_session_never_aliases_stale_state() {
        // Saturate every slot of a dense graph...
        let dense = gen::complete(8);
        let mut session: Session<'_, crate::engine::tests::IdMsg> =
            Session::new(&dense, SimConfig::default());
        let mut programs = min_flood_programs(8);
        session.run(&mut programs, 11).expect("dense pass");
        // ...then retarget at a different topology (more nodes, fewer
        // edges per node): no leftover payload may surface.
        let sparse = gen::cycle(12);
        let mut session = session.rebind(&sparse, SimConfig::default());
        let mut silent: Vec<MustHearNothing> = (0..12)
            .map(|_| MustHearNothing {
                rounds: 3,
                done: false,
            })
            .collect();
        let report = session.run(&mut silent, 13).expect("silent pass");
        assert_eq!(report.messages, 0);
        // A real pass on the rebound session is byte-identical to a
        // fresh-session run of the same pass.
        let mut reused = min_flood_programs(12);
        let report_reused = session.run(&mut reused, 17).expect("rebound pass");
        let mut fresh_session: Session<'_, crate::engine::tests::IdMsg> =
            Session::new(&sparse, SimConfig::default());
        let mut fresh = min_flood_programs(12);
        let report_fresh = fresh_session.run(&mut fresh, 17).expect("fresh pass");
        assert_eq!(report_reused, report_fresh);
        assert!(reused.iter().zip(&fresh).all(|(a, b)| a.min == b.min));
    }

    /// Rebinding across sizes and shard counts: the pool is kept when the
    /// shard count matches, survives a single-shard binding in between,
    /// and every binding matches a fresh session.
    #[test]
    fn rebind_across_sizes_matches_fresh_sessions() {
        let cfg = SimConfig {
            threads: 4,
            ..SimConfig::default()
        };
        let big = gen::gnp(400, 0.02, 5);
        let small = gen::cycle(10);
        let bigger = gen::gnp(600, 0.015, 7);
        let mut core: SessionCore<crate::engine::tests::IdMsg> = SessionCore::new();
        for (graph, seed) in [(&big, 3u64), (&small, 4), (&bigger, 5), (&big, 6)] {
            let n = graph.n();
            let mut session = core.bind(graph, cfg);
            let mut programs = min_flood_programs(n);
            let report = session.run(&mut programs, seed).expect("rebound run");
            let mut fresh_session: Session<'_, crate::engine::tests::IdMsg> =
                Session::new(graph, cfg);
            let mut fresh = min_flood_programs(n);
            let fresh_report = fresh_session.run(&mut fresh, seed).expect("fresh run");
            assert_eq!(report, fresh_report, "n={n}");
            assert!(programs.iter().zip(&fresh).all(|(a, b)| a.min == b.min));
            core = session.unbind();
        }
    }

    /// `bind_same_graph` (the permutation-reusing fast path) behaves
    /// exactly like a full bind, and rejects a different-shaped graph.
    #[test]
    fn bind_same_graph_matches_full_bind() {
        let g = gen::gnp(50, 0.1, 9);
        let mut session: Session<'_, crate::engine::tests::IdMsg> =
            Session::new(&g, SimConfig::default());
        let mut a = min_flood_programs(50);
        let ra = session.run(&mut a, 21).expect("first bind");
        let mut session = session.unbind().bind_same_graph(&g, SimConfig::default());
        let mut b = min_flood_programs(50);
        let rb = session.run(&mut b, 21).expect("same-graph rebind");
        assert_eq!(ra, rb);
        assert!(a.iter().zip(&b).all(|(x, y)| x.min == y.min));
        let other = gen::cycle(50);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = session
                .unbind()
                .bind_same_graph(&other, SimConfig::default());
        }));
        assert!(caught.is_err(), "shape mismatch must be rejected");
    }

    /// A strict-bandwidth abort leaves the session reusable: the next run
    /// starts from a clean frontier, clean inboxes, and a fresh epoch.
    #[test]
    fn session_survives_an_engine_error() {
        #[derive(Clone)]
        struct Burst {
            loud: bool,
            done: bool,
        }
        #[derive(Clone)]
        struct Fat;
        impl Message for Fat {
            fn bit_cost(&self) -> u64 {
                100
            }
        }
        impl Program for Burst {
            type Msg = Fat;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Fat>) {
                if ctx.round() == 0 && self.loud {
                    ctx.broadcast(Fat);
                    ctx.broadcast(Fat);
                }
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let g = gen::cycle(8);
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(150),
            ..SimConfig::default()
        };
        let mut session: Session<'_, Fat> = Session::new(&g, cfg);
        let mut noisy: Vec<Burst> = (0..8)
            .map(|_| Burst {
                loud: true,
                done: false,
            })
            .collect();
        let err = session.run(&mut noisy, 1).expect_err("expected overflow");
        assert!(matches!(err, SimError::BandwidthExceeded { .. }));
        // Programs survive the error with consistent state.
        assert!(noisy.iter().all(|p| p.done));
        // The session keeps working afterwards.
        let mut quiet: Vec<Burst> = (0..8)
            .map(|_| Burst {
                loud: false,
                done: false,
            })
            .collect();
        let report = session.run(&mut quiet, 2).expect("clean run");
        assert!(report.completed);
        assert_eq!(report.messages, 0);
    }

    /// Satellite: the barrier-budget regression guard. The owner/ghost
    /// worker protocol spends exactly 2 round-barrier waits per round on
    /// a clean pooled pass — strictly under the legacy engines' 4 — and
    /// the sequential path spends none.
    #[test]
    fn barrier_budget_is_at_most_two_waits_per_round() {
        let g = gen::gnp(400, 0.02, 31);
        for (threads, shards) in [(4usize, 0usize), (2, 8), (8, 4)] {
            let cfg = SimConfig {
                threads,
                shards,
                ..SimConfig::default()
            };
            let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
            assert!(session.worker_count() > 1, "pooled geometry expected");
            let mut programs = min_flood_programs(400);
            let report = session.run(&mut programs, 41).expect("pooled pass");
            let audit = session.barrier_audit();
            assert_eq!(audit.rounds, report.rounds, "audit round count");
            assert!(audit.rounds > 0, "the pass must do work");
            assert_eq!(
                audit.round_waits,
                2 * audit.rounds,
                "threads {threads} shards {shards}: 2 waits per round"
            );
            assert!(
                audit.round_waits <= 2 * audit.rounds && audit.round_waits < 4 * audit.rounds,
                "budget regression: {} waits over {} rounds",
                audit.round_waits,
                audit.rounds
            );
        }
        // The sequential path never touches a barrier, whatever the
        // shard count.
        let cfg = SimConfig {
            threads: 1,
            shards: 8,
            ..SimConfig::default()
        };
        let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
        assert_eq!(session.worker_count(), 1);
        assert_eq!(session.shard_count(), 8);
        let mut programs = min_flood_programs(400);
        let report = session.run(&mut programs, 41).expect("sequential pass");
        let audit = session.barrier_audit();
        assert_eq!(audit.rounds, report.rounds);
        assert_eq!(audit.round_waits, 0, "sequential pass uses no barriers");
    }

    /// Shard geometry: explicit `config.shards` is honored (even on
    /// graphs below the auto-parallel threshold), `0` reproduces the
    /// pre-sharding seed geometry, and workers never exceed shards.
    #[test]
    fn shard_geometry_honors_explicit_requests_and_keeps_seed_default() {
        let small = gen::cycle(10);
        let big = gen::gnp(400, 0.02, 5);
        // Explicit shards on a small graph: honored, clamped to n.
        let cfg = SimConfig {
            threads: 1,
            shards: 4,
            ..SimConfig::default()
        };
        let s: Session<'_, ()> = Session::new(&small, cfg);
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.worker_count(), 1);
        // More shards than nodes: one node per shard, no more.
        let cfg = SimConfig {
            threads: 2,
            shards: 64,
            ..SimConfig::default()
        };
        let s: Session<'_, ()> = Session::new(&small, cfg);
        assert_eq!(s.shard_count(), 10);
        assert_eq!(s.worker_count(), 2);
        // Default (shards == 0): small graphs stay single-shard even
        // with threads > 1 — the seed's auto heuristic.
        let cfg = SimConfig {
            threads: 8,
            ..SimConfig::default()
        };
        let s: Session<'_, ()> = Session::new(&small, cfg);
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.worker_count(), 1);
        // Default on a large graph: shards == threads, as before.
        let s: Session<'_, ()> = Session::new(&big, cfg);
        assert_eq!(s.shard_count(), 8);
        assert_eq!(s.worker_count(), 8);
        // Workers are capped by the shard count.
        let cfg = SimConfig {
            threads: 8,
            shards: 3,
            ..SimConfig::default()
        };
        let s: Session<'_, ()> = Session::new(&big, cfg);
        assert_eq!(s.shard_count(), 3);
        assert_eq!(s.worker_count(), 3);
    }

    /// Smoke differential over the shard axis: every shard count ×
    /// thread count reproduces the single-shard sequential transcript
    /// byte for byte (the full battery lives in `tests/prop_invariants`).
    #[test]
    fn sharded_sessions_match_for_every_shard_count() {
        let g = gen::gnp(300, 0.03, 23);
        let mut anchor_session: Session<'_, crate::engine::tests::IdMsg> =
            Session::new(&g, SimConfig::default());
        let mut anchor = min_flood_programs(300);
        let anchor_report = anchor_session.run(&mut anchor, 77).expect("anchor");
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    ..SimConfig::default()
                };
                let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
                let mut programs = min_flood_programs(300);
                let report = session.run(&mut programs, 77).expect("sharded run");
                assert_eq!(report, anchor_report, "shards {shards} threads {threads}");
                assert!(
                    programs.iter().zip(&anchor).all(|(a, b)| a.min == b.min),
                    "shards {shards} threads {threads}: program state"
                );
            }
        }
    }

    /// First-offender selection stays deterministic across shard and
    /// worker counts: a strict-bandwidth overflow reports the same
    /// offending node whatever the geometry.
    #[test]
    fn errors_are_deterministic_across_shard_counts() {
        #[derive(Clone)]
        struct Wide;
        impl Message for Wide {
            fn bit_cost(&self) -> u64 {
                64
            }
        }
        #[derive(Clone)]
        struct Shout {
            done: bool,
        }
        impl Program for Shout {
            type Msg = Wide;
            fn on_round(&mut self, ctx: &mut Ctx<'_, Wide>) {
                if ctx.id() >= 150 {
                    ctx.broadcast(Wide);
                    ctx.broadcast(Wide);
                }
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let g = gen::cycle(300);
        let mut witness = None;
        for shards in [0usize, 1, 2, 4, 8] {
            for threads in [1usize, 2, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    bandwidth: Bandwidth::Strict(100),
                    ..SimConfig::default()
                };
                let mut session: Session<'_, Wide> = Session::new(&g, cfg);
                let mut programs = vec![Shout { done: false }; 300];
                let err = session.run(&mut programs, 9).expect_err("must overflow");
                match &witness {
                    None => witness = Some(err),
                    Some(w) => {
                        assert_eq!(*w, err, "shards {shards} threads {threads}")
                    }
                }
            }
        }
        assert!(matches!(witness, Some(SimError::BandwidthExceeded { .. })));
    }
}
