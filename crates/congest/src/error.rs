//! Simulation errors.

use graphs::NodeId;

/// Errors surfaced by the simulation engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A node attempted to message a non-neighbor — illegal in CONGEST.
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Attempted recipient.
        to: NodeId,
        /// Round in which the attempt happened.
        round: u64,
    },
    /// In strict mode, a directed edge carried more bits in one round than
    /// the bandwidth cap allows.
    BandwidthExceeded {
        /// Sender side of the directed edge.
        from: NodeId,
        /// Receiver side of the directed edge.
        to: NodeId,
        /// Bits the edge carried this round.
        bits: u64,
        /// The configured cap.
        limit: u64,
        /// Round in which the overflow happened.
        round: u64,
    },
    /// The run was cancelled cooperatively between passes — a serving
    /// layer's deadline or shutdown token fired at a pass boundary (the
    /// engine never interrupts a pass mid-round). The states recovered
    /// alongside this error are a consistent partial result.
    Cancelled {
        /// Engine passes that had completed when the cancellation fired.
        after_passes: u64,
    },
    /// An active [`FaultPlan`](crate::FaultPlan) fired its per-round
    /// abort — the modeled crash/timeout of a faulty network. Transient
    /// (see [`SimError::is_transient`]): a retry under a re-salted plan
    /// may well succeed, which is exactly what the serving layer's retry
    /// budget exists for.
    FaultInjected {
        /// Round (within the failing pass) at which the fault fired.
        round: u64,
    },
    /// A crash plan with [`crash_fatal`](crate::FaultPlan::crash_fatal)
    /// saw a node crash; the earliest crash event of the run is reported.
    /// Transient like [`SimError::FaultInjected`] — a re-salted retry
    /// re-rolls the crash dice.
    NodeCrashed {
        /// The node that crashed first (ties broken by lowest id).
        node: NodeId,
        /// Round (within the failing pass) at which it crashed.
        round: u64,
    },
    /// A crash plan with [`min_live`](crate::FaultPlan::min_live) ended a
    /// run with fewer live nodes than its quorum floor. Transient: a
    /// re-salted retry draws different crash fates.
    QuorumLost {
        /// Nodes still up when the round loop ended.
        live: u64,
        /// The configured quorum floor.
        quorum: u64,
        /// Round at which the census was taken (the run's last round).
        round: u64,
    },
    /// The α-synchronizer's progress watchdog fired: under the active
    /// [`SchedulePlan`](crate::SchedulePlan), a node waited more pulses
    /// between consecutive rounds than the plan's
    /// [`patience`](crate::SchedulePlan::patience) allows — the schedule
    /// adversary wedged the run. **Not** transient: the schedule is a
    /// pure function of `(seed, plan)`, so an unmodified retry stalls
    /// identically; a serving layer must fail fast instead of burning
    /// its retry budget (re-plan or re-salt to make progress).
    ScheduleStalled {
        /// The first stalled node (lowest id among that round's stalls).
        node: NodeId,
        /// Round (within the failing pass) the node could not reach in
        /// time.
        round: u64,
        /// Pulses the node waited (strictly above the plan's patience).
        waited: u64,
    },
}

impl SimError {
    /// Whether retrying the run could plausibly succeed.
    ///
    /// The fault-plan family — [`SimError::FaultInjected`],
    /// [`SimError::NodeCrashed`], [`SimError::QuorumLost`] — is
    /// transient: each is a roll of the plan's dice, so a retry under a
    /// re-salted plan rolls again. Everything else is deterministic — a
    /// protocol addressing a non-neighbor, a strict bandwidth cap it
    /// genuinely exceeds, a cooperative cancellation, or a schedule
    /// adversary that wedged the synchronizer past its patience
    /// ([`SimError::ScheduleStalled`] replays identically because the
    /// schedule is a pure function of `(seed, plan)`) — and would fail
    /// identically on every retry; a serving layer must not burn its
    /// retry budget on those.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::FaultInjected { .. }
                | SimError::NodeCrashed { .. }
                | SimError::QuorumLost { .. }
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotANeighbor { from, to, round } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                bits,
                limit,
                round,
            } => write!(
                f,
                "round {round}: edge {from}->{to} carried {bits} bits, limit {limit}"
            ),
            SimError::Cancelled { after_passes } => {
                write!(
                    f,
                    "run cancelled at a pass boundary after {after_passes} passes"
                )
            }
            SimError::FaultInjected { round } => {
                write!(f, "round {round}: injected fault aborted the run")
            }
            SimError::NodeCrashed { node, round } => {
                write!(f, "round {round}: node {node} crashed (fatal-crash plan)")
            }
            SimError::QuorumLost {
                live,
                quorum,
                round,
            } => write!(
                f,
                "round {round}: quorum lost, {live} nodes live of {quorum} required"
            ),
            SimError::ScheduleStalled {
                node,
                round,
                waited,
            } => write!(
                f,
                "round {round}: schedule stalled, node {node} waited {waited} pulses"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BandwidthExceeded {
            from: 1,
            to: 2,
            bits: 99,
            limit: 32,
            round: 7,
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("32") && s.contains("round 7"));
        let e2 = SimError::NotANeighbor {
            from: 3,
            to: 4,
            round: 1,
        };
        assert!(e2.to_string().contains("non-neighbor"));
        let e3 = SimError::FaultInjected { round: 12 };
        assert!(e3.to_string().contains("round 12") && e3.to_string().contains("fault"));
        let e4 = SimError::NodeCrashed { node: 5, round: 3 };
        assert!(e4.to_string().contains("node 5") && e4.to_string().contains("round 3"));
        let e5 = SimError::QuorumLost {
            live: 2,
            quorum: 8,
            round: 40,
        };
        assert!(e5.to_string().contains("2 nodes live") && e5.to_string().contains('8'));
        let e6 = SimError::ScheduleStalled {
            node: 6,
            round: 11,
            waited: 9,
        };
        let s6 = e6.to_string();
        assert!(s6.contains("node 6") && s6.contains("round 11") && s6.contains("9 pulses"));
    }

    /// The full classification table: the fault-plan family is transient
    /// (worth a re-salted retry), everything deterministic is not.
    #[test]
    fn transient_classification_table() {
        let table: [(SimError, bool); 7] = [
            (SimError::FaultInjected { round: 0 }, true),
            (SimError::NodeCrashed { node: 1, round: 2 }, true),
            (
                SimError::QuorumLost {
                    live: 0,
                    quorum: 4,
                    round: 9,
                },
                true,
            ),
            (
                SimError::NotANeighbor {
                    from: 0,
                    to: 1,
                    round: 0,
                },
                false,
            ),
            (
                SimError::BandwidthExceeded {
                    from: 0,
                    to: 1,
                    bits: 10,
                    limit: 5,
                    round: 0,
                },
                false,
            ),
            (SimError::Cancelled { after_passes: 3 }, false),
            // A stalled schedule replays identically — retrying it
            // verbatim can never succeed.
            (
                SimError::ScheduleStalled {
                    node: 2,
                    round: 5,
                    waited: 17,
                },
                false,
            ),
        ];
        for (err, transient) in table {
            assert_eq!(err.is_transient(), transient, "misclassified: {err}");
        }
    }
}
