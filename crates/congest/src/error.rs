//! Simulation errors.

use graphs::NodeId;

/// Errors surfaced by the simulation engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A node attempted to message a non-neighbor — illegal in CONGEST.
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Attempted recipient.
        to: NodeId,
        /// Round in which the attempt happened.
        round: u64,
    },
    /// In strict mode, a directed edge carried more bits in one round than
    /// the bandwidth cap allows.
    BandwidthExceeded {
        /// Sender side of the directed edge.
        from: NodeId,
        /// Receiver side of the directed edge.
        to: NodeId,
        /// Bits the edge carried this round.
        bits: u64,
        /// The configured cap.
        limit: u64,
        /// Round in which the overflow happened.
        round: u64,
    },
    /// The run was cancelled cooperatively between passes — a serving
    /// layer's deadline or shutdown token fired at a pass boundary (the
    /// engine never interrupts a pass mid-round). The states recovered
    /// alongside this error are a consistent partial result.
    Cancelled {
        /// Engine passes that had completed when the cancellation fired.
        after_passes: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotANeighbor { from, to, round } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                bits,
                limit,
                round,
            } => write!(
                f,
                "round {round}: edge {from}->{to} carried {bits} bits, limit {limit}"
            ),
            SimError::Cancelled { after_passes } => {
                write!(
                    f,
                    "run cancelled at a pass boundary after {after_passes} passes"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BandwidthExceeded {
            from: 1,
            to: 2,
            bits: 99,
            limit: 32,
            round: 7,
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("32") && s.contains("round 7"));
        let e2 = SimError::NotANeighbor {
            from: 3,
            to: 4,
            round: 1,
        };
        assert!(e2.to_string().contains("non-neighbor"));
    }
}
