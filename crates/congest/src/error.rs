//! Simulation errors.

use graphs::NodeId;

/// Errors surfaced by the simulation engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A node attempted to message a non-neighbor — illegal in CONGEST.
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Attempted recipient.
        to: NodeId,
        /// Round in which the attempt happened.
        round: u64,
    },
    /// In strict mode, a directed edge carried more bits in one round than
    /// the bandwidth cap allows.
    BandwidthExceeded {
        /// Sender side of the directed edge.
        from: NodeId,
        /// Receiver side of the directed edge.
        to: NodeId,
        /// Bits the edge carried this round.
        bits: u64,
        /// The configured cap.
        limit: u64,
        /// Round in which the overflow happened.
        round: u64,
    },
    /// The run was cancelled cooperatively between passes — a serving
    /// layer's deadline or shutdown token fired at a pass boundary (the
    /// engine never interrupts a pass mid-round). The states recovered
    /// alongside this error are a consistent partial result.
    Cancelled {
        /// Engine passes that had completed when the cancellation fired.
        after_passes: u64,
    },
    /// An active [`FaultPlan`](crate::FaultPlan) fired its per-round
    /// abort — the modeled crash/timeout of a faulty network. This is the
    /// only **transient** simulation error (see
    /// [`SimError::is_transient`]): a retry under a re-salted plan may
    /// well succeed, which is exactly what the serving layer's retry
    /// budget exists for.
    FaultInjected {
        /// Round (within the failing pass) at which the fault fired.
        round: u64,
    },
}

impl SimError {
    /// Whether retrying the run could plausibly succeed.
    ///
    /// Only [`SimError::FaultInjected`] is transient: it is a roll of the
    /// fault plan's dice, so a retry under a re-salted plan rolls again.
    /// Everything else is deterministic — a protocol addressing a
    /// non-neighbor, a strict bandwidth cap it genuinely exceeds, or a
    /// cooperative cancellation — and would fail identically on every
    /// retry; a serving layer must not burn its retry budget on those.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::FaultInjected { .. })
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotANeighbor { from, to, round } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            SimError::BandwidthExceeded {
                from,
                to,
                bits,
                limit,
                round,
            } => write!(
                f,
                "round {round}: edge {from}->{to} carried {bits} bits, limit {limit}"
            ),
            SimError::Cancelled { after_passes } => {
                write!(
                    f,
                    "run cancelled at a pass boundary after {after_passes} passes"
                )
            }
            SimError::FaultInjected { round } => {
                write!(f, "round {round}: injected fault aborted the run")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BandwidthExceeded {
            from: 1,
            to: 2,
            bits: 99,
            limit: 32,
            round: 7,
        };
        let s = e.to_string();
        assert!(s.contains("99") && s.contains("32") && s.contains("round 7"));
        let e2 = SimError::NotANeighbor {
            from: 3,
            to: 4,
            round: 1,
        };
        assert!(e2.to_string().contains("non-neighbor"));
        let e3 = SimError::FaultInjected { round: 12 };
        assert!(e3.to_string().contains("round 12") && e3.to_string().contains("fault"));
    }

    #[test]
    fn only_injected_faults_are_transient() {
        assert!(SimError::FaultInjected { round: 0 }.is_transient());
        assert!(!SimError::NotANeighbor {
            from: 0,
            to: 1,
            round: 0
        }
        .is_transient());
        assert!(!SimError::BandwidthExceeded {
            from: 0,
            to: 1,
            bits: 10,
            limit: 5,
            round: 0
        }
        .is_transient());
        assert!(!SimError::Cancelled { after_passes: 3 }.is_transient());
    }
}
