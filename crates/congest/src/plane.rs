//! The CSR edge-indexed mailbox plane.
//!
//! The plane has **two lanes**, chosen per send call:
//!
//! * **Broadcast lane** — `Ctx::broadcast` sends one value across every
//!   out-edge, so it needs no per-edge storage at all: the payload goes
//!   into the sender's own slot of an `n`-sized array (one contiguous
//!   write, no destination resolution). Delivery gathers each receiver's
//!   in-neighbors' broadcast slots — an array small enough to stay
//!   cache-resident. This is the hot lane: HNT22-style coloring
//!   protocols are broadcast-dominated (trials, slack announcements,
//!   hash-family indices all go to every neighbor).
//! * **Targeted lane** — `Ctx::send(to, ..)` writes the slot of the
//!   directed edge `(u, to)`, keyed by the *receiver-side* CSR edge id
//!   `offsets[to] + pos(u in N(to))`, reached through the reverse-CSR
//!   permutation `rev[offsets[u] + k]`. Keying by receiver makes
//!   delivery a contiguous sweep of `offsets[v]..offsets[v+1]` and puts
//!   the unavoidable cache scatter on the *store* side, where the engine
//!   hides it with software prefetch. Destination resolution is O(1) via
//!   a lazily filled per-worker [`NeighborIndex`] (with a small-degree
//!   fast path), not a per-message `binary_search`.
//!
//! Slots inline the round's **first** message next to the epoch stamp and
//! the per-edge bit counter — in the CONGEST model an edge almost always
//! carries at most one message per round — and spill further same-round
//! messages to cold side arrays. Every message is tagged with the
//! sender's per-round send sequence, so a receiver that gets both lanes
//! from one neighbor in one round merges them back into exact send-call
//! order. Slots reset lazily by epoch stamp (the round of their last
//! write): no per-round clearing pass, no steady-state allocation.
//!
//! Bandwidth accounting is folded into the writes: a targeted write
//! accumulates its bits in the edge slot, a broadcast write accumulates
//! its per-copy bits in the sender's broadcast slot, and delivery sums
//! the two for the per-directed-edge round load.
//!
//! # Ownership sharding and the exchange lanes
//!
//! The session engine partitions the node range into contiguous
//! **ownership shards** (see [`crate::session`]). Each shard owns its
//! receivers' targeted-slot range (a per-shard CSR sub-plane: the
//! contiguous `offsets[lo]..offsets[hi]` block of `slots`/`spill`), its
//! senders' broadcast slots, and its receivers' dirty stamps. During the
//! step phase a sender writes **only** slots its own shard owns; a send
//! whose receiver lives in another shard is *staged* into an
//! [`ExchangeLanes`] outbox cell keyed `(sender shard, receiver shard)`
//! instead of touching the foreign sub-plane. At the exchange point
//! (one barrier later) each shard drains its inbound column and replays
//! the staged writes into its own sub-plane — reconstructing the exact
//! inline-first/spill/sequence slot state a direct write would have
//! produced, because every directed edge still has exactly one sender
//! and the staged records carry the sender's send-sequence tags.
//!
//! Broadcast slots are the **ghost state**: during routing a shard
//! *reads* any sender's broadcast slot (cross-shard included) without
//! mutation — a read-only ghost copy frozen at the exchange barrier.
//!
//! Lane storage is `UnsafeCell`-based because the phases access slots at
//! value-dependent disjoint indices the borrow checker cannot see:
//!
//! * **step phase** — worker `w` owns senders `[lo_w, hi_w)`: it writes
//!   their broadcast slots (disjoint, contiguous) and, of their
//!   out-edges' targeted slots, exactly those owned by its own shards
//!   (disjoint because every directed edge has exactly one sender *and*
//!   cross-shard writes are staged, never direct).
//! * **exchange + routing phase** — worker `w` drains the exchange
//!   cells addressed to its shards (each cell has exactly one writer
//!   shard and one reader shard) into its own receivers' contiguous
//!   targeted slots, then mutates only those slots, and performs
//!   **reads** of broadcast slots (no mutation; broadcast payloads are
//!   cloned per receiving edge, exactly the copies the legacy plane
//!   made at send time).
//!
//! The phases are separated by a barrier (or by program order in the
//! sequential engine), so no slot is ever written by one thread while
//! another touches it, and no exchange cell is drained before its
//! writer is done staging.

use crate::error::SimError;
use crate::message::Message;
use graphs::{Graph, NodeId};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// One mailbox slot — the hot, fixed-size part shared by both lanes.
///
/// The targeted lane keys one per directed edge (drained at delivery);
/// the broadcast lane keys one per node, where `bits` counts the
/// *per-copy* cost every receiving edge accounts and delivery clones
/// instead of draining.
pub(crate) struct Slot<M> {
    /// Round of the last write; `u64::MAX` = never written. A stale stamp
    /// means the other fields are leftovers and are reset in place on the
    /// next write (lazy, so idle slots cost nothing).
    pub(crate) stamp: u64,
    /// Bits accumulated by this round's writes. Saturates at `u32::MAX` —
    /// orders of magnitude above any per-round CONGEST load.
    pub(crate) bits: u32,
    /// Number of same-round messages pushed to the spill vector.
    pub(crate) spilled: u32,
    /// Send-sequence tag of `first` (for merging the two lanes back into
    /// exact send order).
    pub(crate) seq: u32,
    /// The round's first message, inline — the common case.
    pub(crate) first: Option<M>,
}

/// Shareable cell for slot-indexed plane storage; see the module docs for
/// the disjoint-access protocol that makes the `Sync` impl sound.
pub(crate) struct PlaneCell<T>(UnsafeCell<T>);

/// SAFETY: plane cells are mutated only at phase-disjoint indices (module
/// docs); `T: Send` suffices because payloads move between threads but
/// are never aliased across them mid-mutation.
unsafe impl<T: Send> Sync for PlaneCell<T> {}

impl<T> PlaneCell<T> {
    pub(crate) fn new(value: T) -> Self {
        PlaneCell(UnsafeCell::new(value))
    }

    /// Raw pointer; the caller must hold this phase's exclusivity over
    /// the index (module docs) for the duration of the dereference.
    pub(crate) fn get(&self) -> *mut T {
        self.0.get()
    }
}

/// Hint the cache that `p` is about to be written.
///
/// The targeted lane's slot writes are a scatter through the reverse-CSR
/// permutation — the one cache-unfriendly access of the plane. Unlike the
/// legacy outbox plane, the destinations are known *before* the node
/// program runs (they are exactly its `rev_out` entries), so the engine
/// prefetches them and the misses overlap the programs' own compute.
/// No-op on non-x86_64 targets.
#[inline(always)]
pub(crate) fn prefetch_for_write<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; any address is allowed.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// O(1) neighbor-position lookup, one per engine worker.
///
/// `mark[w] == tick` means `pos[w]` is the position of `w` in the
/// neighbor list the index was last filled from. Filling is lazy — it
/// happens on a node's first targeted `send` of the round, so
/// broadcast-only protocols never pay for it — and costs `O(deg)`, after
/// which every `send` resolves in O(1).
pub(crate) struct NeighborIndex {
    mark: Vec<u64>,
    pos: Vec<u32>,
    tick: u64,
}

impl NeighborIndex {
    /// An index able to resolve destinations in `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        NeighborIndex {
            mark: vec![0; n],
            pos: vec![0; n],
            tick: 0,
        }
    }

    /// Grow the index to resolve destinations in `0..n` (never shrinks).
    /// New entries carry mark 0, which predates every post-fill `tick`,
    /// so they can never be mistaken for resolved positions.
    pub(crate) fn grow(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.pos.resize(n, 0);
        }
    }

    /// Point the index at a new neighbor list (O(deg)).
    fn fill(&mut self, neighbors: &[NodeId]) {
        self.tick += 1;
        for (k, &w) in neighbors.iter().enumerate() {
            self.mark[w as usize] = self.tick;
            self.pos[w as usize] = k as u32;
        }
    }

    /// Neighbor position of `to` in the list last filled, if present.
    fn get(&self, to: NodeId) -> Option<usize> {
        let t = to as usize;
        (t < self.mark.len() && self.mark[t] == self.tick).then(|| self.pos[t] as usize)
    }
}

/// Per-receiver dirty stamps: the epoch of the last write addressed to a
/// receiver, the worklist behind the session scheduler's dirty-receiver
/// delivery (see [`crate::Session`]). A targeted send stamps its
/// destination; a broadcast stamps the sender's whole out-neighborhood
/// (the same O(deg) the delivery clone pass pays anyway). Routing then
/// sweeps only receivers stamped with the current epoch instead of every
/// edge slot of the graph.
///
/// Stores are `Relaxed` atomics: several step workers may stamp the same
/// receiver in one round, but they all write the *same* epoch value, and
/// the phase barrier orders every stamp before the routing phase's loads.
pub(crate) struct DirtyBoard {
    stamps: Vec<AtomicU64>,
}

impl DirtyBoard {
    /// A board for receivers `0..n`; no receiver starts dirty (the
    /// initial stamp `u64::MAX` is never a valid epoch).
    pub(crate) fn new(n: usize) -> Self {
        DirtyBoard {
            stamps: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
        }
    }

    /// Grow the board to cover receivers `0..n` (never shrinks — retained
    /// stamps are from past epochs and the session epoch counter never
    /// reuses a value, so they can never alias a future round).
    pub(crate) fn grow(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize_with(n, || AtomicU64::new(u64::MAX));
        }
    }

    /// Stamp receiver `v` dirty for `epoch`.
    #[inline]
    pub(crate) fn mark(&self, v: NodeId, epoch: u64) {
        self.stamps[v as usize].store(epoch, Ordering::Relaxed);
    }

    /// Whether receiver `v` was addressed during `epoch`.
    #[inline]
    pub(crate) fn is_dirty(&self, v: usize, epoch: u64) -> bool {
        self.stamps[v].load(Ordering::Relaxed) == epoch
    }
}

/// Degree at or below which `resolve` searches the (cache-resident)
/// neighbor list directly instead of the O(1) scratch table: for short
/// lists a handful of L1 compares beats two probes into `n`-sized arrays.
const SMALL_DEGREE: usize = 32;

/// A sender's window onto the mailbox plane for one `on_round` call.
pub(crate) struct SlotSink<'a, M> {
    /// The whole targeted-lane slot array (writes go to
    /// `slots[rev_out[k]]`).
    pub(crate) slots: &'a [PlaneCell<Slot<M>>],
    /// The whole targeted-lane overflow array (same indexing; cold).
    pub(crate) spill: &'a [PlaneCell<Vec<(M, u32)>>],
    /// This node's broadcast-lane slot.
    pub(crate) bcast: &'a PlaneCell<Slot<M>>,
    /// This node's broadcast-lane overflow (cold).
    pub(crate) bcast_spill: &'a PlaneCell<Vec<(M, u32)>>,
    /// The node's slice of the reverse-CSR permutation: `rev_out[k]` is
    /// the receiver-side slot id of the edge to the `k`-th neighbor.
    pub(crate) rev_out: &'a [u32],
    /// The session's dirty-receiver stamps (every write marks its
    /// receiver so routing can skip clean nodes).
    pub(crate) dirty: &'a DirtyBoard,
    /// Current round (the epoch value to stamp writes with).
    pub(crate) epoch: u64,
    /// Per-round send-call sequence (shared by both lanes; restores exact
    /// send order at delivery).
    pub(crate) seq: u32,
    /// Targeted sends issued through this sink (drives the engine's
    /// lane-skipping and prefetch heuristics).
    pub(crate) targeted: u32,
    /// Broadcasts issued through this sink.
    pub(crate) broadcasts: u32,
    /// The worker's neighbor-position scratch.
    pub(crate) lookup: &'a mut NeighborIndex,
    /// Whether `lookup` has been filled for this node yet.
    pub(crate) filled: bool,
    /// Whether a fault plan is active: sends to non-neighbors are then
    /// eaten by the faulty network (counted in `misrouted`) instead of
    /// failing the run with [`SimError::NotANeighbor`].
    pub(crate) forgiving: bool,
    /// Sends eaten because the destination was not a neighbor (only under
    /// an active fault plan; see `forgiving`).
    pub(crate) misrouted: u64,
    /// First error any node of this worker's range raised (kept, not
    /// overwritten — nodes are stepped in ascending id order).
    pub(crate) err: &'a mut Option<SimError>,
    /// The sender's ownership shard: which receivers are local (written
    /// directly) and where cross-shard writes are staged.
    pub(crate) shard: ShardRoute<'a, M>,
}

/// A sender shard's view of the exchange topology for one step call:
/// the owned (local) node range and the sender's row of outbox cells,
/// one per receiver shard.
pub(crate) struct ShardRoute<'a, M> {
    /// First node id this shard owns.
    pub(crate) lo: NodeId,
    /// One past the last node id this shard owns.
    pub(crate) hi: NodeId,
    /// Shard width in nodes (receiver shard of node `v` is `v / chunk`).
    pub(crate) chunk: NodeId,
    /// The sender shard's outbox row, indexed by receiver shard. Empty
    /// in single-shard runs (where `is_local` is always true).
    pub(crate) row: &'a [PlaneCell<Outbox<M>>],
}

impl<M> ShardRoute<'_, M> {
    /// A route that owns every node — the unsharded legacy layout, where
    /// no write ever stages through the exchange lanes.
    pub(crate) fn all_local() -> Self {
        ShardRoute {
            lo: 0,
            hi: NodeId::MAX,
            chunk: 1,
            row: &[],
        }
    }

    /// Whether this shard owns receiver `to`.
    #[inline]
    pub(crate) fn is_local(&self, to: NodeId) -> bool {
        self.lo <= to && to < self.hi
    }

    /// Stage a targeted send toward the shard owning `to`.
    ///
    /// SAFETY-relevant invariant: cell `row[to / chunk]` is written only
    /// by this sender shard's worker during the step phase and drained
    /// only by the receiver shard's worker after the exchange barrier.
    fn outbox(&self, to: NodeId) -> *mut Outbox<M> {
        self.row[(to / self.chunk) as usize].get()
    }

    /// Stage the exact slot write `(edge, seq, msg)` for the owner of
    /// `to` to replay at the exchange point.
    pub(crate) fn stage(&self, to: NodeId, edge: u32, epoch: u64, seq: u32, msg: M) {
        // SAFETY: single-writer-per-phase exclusivity, see above.
        let ob = unsafe { &mut *self.outbox(to) };
        ob.reset_for(epoch);
        ob.sends.push(Staged { to, edge, seq, msg });
    }

    /// Stage a dirty-receiver stamp for the owner of `to`.
    pub(crate) fn stage_dirt(&self, to: NodeId, epoch: u64) {
        // SAFETY: single-writer-per-phase exclusivity, see above.
        let ob = unsafe { &mut *self.outbox(to) };
        ob.reset_for(epoch);
        ob.dirt.push(to);
    }
}

/// One staged cross-shard targeted send: enough to replay the exact
/// slot write on the owning shard.
pub(crate) struct Staged<M> {
    /// Receiver node id.
    pub(crate) to: NodeId,
    /// Receiver-side slot id of the directed edge (the sender's
    /// `rev_out[k]`).
    pub(crate) edge: u32,
    /// The sender's per-round send-sequence tag.
    pub(crate) seq: u32,
    pub(crate) msg: M,
}

/// One (sender shard → receiver shard) exchange buffer. Epoch-stamped
/// with the same lazy-reset protocol as the slots: content staged in an
/// aborted round (a step error exits before the exchange point) keeps
/// its stale stamp, is never applied, and is cleared in place by the
/// next round's first staging push.
pub(crate) struct Outbox<M> {
    /// Epoch of the last staging push; `u64::MAX` = never written.
    stamp: u64,
    /// Staged targeted sends, in the sender shard's step order.
    sends: Vec<Staged<M>>,
    /// Staged dirty-receiver stamps (broadcast out-neighborhood marks).
    dirt: Vec<NodeId>,
}

impl<M> Outbox<M> {
    fn fresh() -> Self {
        Outbox {
            stamp: u64::MAX,
            sends: Vec::new(),
            dirt: Vec::new(),
        }
    }

    /// Lazy epoch reset: drop content from any earlier (possibly
    /// aborted) round before the first push of this one.
    fn reset_for(&mut self, epoch: u64) {
        if self.stamp != epoch {
            self.stamp = epoch;
            self.sends.clear();
            self.dirt.clear();
        }
    }
}

/// The shards × shards grid of exchange outboxes, row-major by sender
/// shard: cell `(from, to)` carries `from`'s cross-shard writes into
/// `to`'s sub-plane. Owned by the session core so the (cold) buffers
/// are reused across rounds, passes, and rebinds — stale content is
/// fenced off by the epoch stamps exactly like slot state.
pub(crate) struct ExchangeLanes<M> {
    shards: usize,
    boxes: Vec<PlaneCell<Outbox<M>>>,
}

impl<M: Message> ExchangeLanes<M> {
    /// Lanes bound to no shard layout.
    pub(crate) fn empty() -> Self {
        ExchangeLanes {
            shards: 0,
            boxes: Vec::new(),
        }
    }

    /// Rebuild the grid for `shards` ownership shards (no-op when the
    /// count is unchanged; retained cells keep stale stamps, which the
    /// lazy reset fences off).
    pub(crate) fn ensure(&mut self, shards: usize) {
        if self.shards != shards {
            self.shards = shards;
            self.boxes = (0..shards * shards)
                .map(|_| PlaneCell::new(Outbox::fresh()))
                .collect();
        }
    }

    /// Sender shard `from`'s outbox row (indexed by receiver shard).
    pub(crate) fn row(&self, from: usize) -> &[PlaneCell<Outbox<M>>] {
        &self.boxes[from * self.shards..(from + 1) * self.shards]
    }

    /// Drain every outbox addressed to `shard`, replaying the staged
    /// writes into `shard`'s own sub-plane — the exchange phase. Sender
    /// shards are drained in ascending order and each shard stages in
    /// its own step order, so per-slot replay preserves the per-sender
    /// sequence tags exactly.
    ///
    /// SAFETY (caller): must run after the exchange barrier (or after
    /// the full step phase in the sequential engine) and only on the
    /// worker owning `shard`; column cells then have no concurrent
    /// writer, and the slots written are `shard`'s own.
    pub(crate) fn apply_into(
        &self,
        shard: usize,
        plane: &MailboxPlane<M>,
        dirty: &DirtyBoard,
        epoch: u64,
    ) {
        if self.shards <= 1 {
            return;
        }
        for from in 0..self.shards {
            // SAFETY: post-barrier single-reader exclusivity, see above.
            let ob = unsafe { &mut *self.boxes[from * self.shards + shard].get() };
            if ob.stamp != epoch {
                continue; // idle this round, or stale from an aborted one
            }
            for staged in ob.sends.drain(..) {
                let e = staged.edge as usize;
                // SAFETY: slot `e` belongs to a receiver `shard` owns.
                push_slot(
                    &plane.slots[e],
                    &plane.spill[e],
                    epoch,
                    staged.seq,
                    staged.msg,
                );
                dirty.mark(staged.to, epoch);
            }
            for v in ob.dirt.drain(..) {
                dirty.mark(v, epoch);
            }
        }
    }
}

/// Clamp a `bit_cost` to the slot counters' width.
fn cost32(msg_bits: u64) -> u32 {
    u32::try_from(msg_bits).unwrap_or(u32::MAX)
}

/// The shared write protocol of both lanes (and of exchange replay):
/// lazy epoch reset, bit accumulation, inline-first-or-spill, sequence
/// tagging.
///
/// SAFETY (caller): the cells must be ones the calling phase holds
/// exclusivity over — a step-phase sender's own-shard out-edge slots or
/// broadcast slot, or a routing-phase owner replaying staged sends into
/// its own receivers' slots (module docs).
pub(crate) fn push_slot<M: Message>(
    slot: &PlaneCell<Slot<M>>,
    spill: &PlaneCell<Vec<(M, u32)>>,
    epoch: u64,
    seq: u32,
    msg: M,
) {
    // SAFETY: exclusivity guaranteed by the caller (see above).
    let slot = unsafe { &mut *slot.get() };
    if slot.stamp != epoch {
        slot.stamp = epoch;
        slot.bits = 0;
        slot.first = None;
        if slot.spilled > 0 {
            slot.spilled = 0;
            // SAFETY: same exclusivity as the hot slot.
            unsafe { &mut *spill.get() }.clear();
        }
    }
    slot.bits = slot.bits.saturating_add(cost32(msg.bit_cost()));
    if slot.first.is_none() {
        slot.first = Some(msg);
        slot.seq = seq;
    } else {
        slot.spilled += 1;
        // SAFETY: same exclusivity as the hot slot.
        unsafe { &mut *spill.get() }.push((msg, seq));
    }
}

impl<M: Message> SlotSink<'_, M> {
    /// Resolve `to` to a neighbor position: O(1) via the scratch table
    /// (filled lazily on a node's first targeted send), with a
    /// small-degree fast path over the neighbor list itself.
    pub(crate) fn resolve(&mut self, neighbors: &[NodeId], to: NodeId) -> Option<usize> {
        if neighbors.len() <= SMALL_DEGREE {
            return neighbors.binary_search(&to).ok();
        }
        if !self.filled {
            self.lookup.fill(neighbors);
            self.filled = true;
        }
        self.lookup.get(to)
    }

    /// Targeted send: append `msg` to the slot of the edge to neighbor
    /// `k` (node id `to`), folding its bit cost into the slot counter and
    /// stamping the receiver dirty. A receiver outside the sender's own
    /// shard is not touched directly: the write is staged into the
    /// exchange lane toward its owner and replayed there at the exchange
    /// point (same slot, same bits, same sequence tag).
    pub(crate) fn write(&mut self, k: usize, to: NodeId, msg: M) {
        if self.shard.is_local(to) {
            let e = self.rev_out[k] as usize;
            // SAFETY: this sink's node is the unique step-phase sender
            // over its own shard's out-edge slots (module docs).
            push_slot(&self.slots[e], &self.spill[e], self.epoch, self.seq, msg);
            self.dirty.mark(to, self.epoch);
        } else {
            self.shard
                .stage(to, self.rev_out[k], self.epoch, self.seq, msg);
        }
        self.seq += 1;
        self.targeted += 1;
    }

    /// Broadcast: store `msg` once in the sender's broadcast slot; every
    /// receiving edge clones its own copy at delivery (the same copies
    /// the legacy plane made at send time) and accounts `bit_cost` bits.
    /// The caller ([`crate::Ctx::broadcast`]) stamps the out-neighborhood
    /// dirty via [`SlotSink::mark`].
    pub(crate) fn write_bcast(&mut self, msg: M) {
        // SAFETY: a node's broadcast slot is written only while its own
        // worker steps it (module docs).
        push_slot(self.bcast, self.bcast_spill, self.epoch, self.seq, msg);
        self.seq += 1;
        self.broadcasts += 1;
    }

    /// Stamp `v` as a dirty receiver of the current epoch — directly
    /// when this shard owns `v`, via the exchange lane otherwise (the
    /// dirty board is shard-exclusive during the step phase).
    #[inline]
    pub(crate) fn mark(&self, v: NodeId) {
        if self.shard.is_local(v) {
            self.dirty.mark(v, self.epoch);
        } else {
            self.shard.stage_dirt(v, self.epoch);
        }
    }
}

/// Where a `Ctx`'s sends go: the engine's slot plane, or a plain outbox
/// (the pre-PR reference engine and unit tests).
pub(crate) enum Sink<'a, M> {
    /// CSR mailbox plane (the engine's fast path).
    Slots(SlotSink<'a, M>),
    /// Legacy per-round `(destination, message)` outbox.
    Outbox(&'a mut Vec<(NodeId, M)>),
}

/// The engine-owned lane arrays plus the reverse-CSR permutation.
pub(crate) struct MailboxPlane<M> {
    /// `rev[offsets[u] + k]` = receiver-side slot id of the edge from `u`
    /// to its `k`-th neighbor (i.e. `offsets[v] + pos(u in N(v))`). An
    /// involution over directed-edge ids.
    pub(crate) rev: Vec<u32>,
    /// Targeted lane, receiver-side keyed: receiver `v` owns the
    /// contiguous range `offsets[v]..offsets[v+1]`, in-neighbor order.
    pub(crate) slots: Vec<PlaneCell<Slot<M>>>,
    /// Targeted-lane overflow (cold; same indexing).
    pub(crate) spill: Vec<PlaneCell<Vec<(M, u32)>>>,
    /// Broadcast lane, sender keyed (length `n`).
    pub(crate) bcast: Vec<PlaneCell<Slot<M>>>,
    /// Broadcast-lane overflow (cold; length `n`).
    pub(crate) bcast_spill: Vec<PlaneCell<Vec<(M, u32)>>>,
}

/// A never-written slot (stamp `u64::MAX` predates every epoch).
fn fresh_slot<M>() -> PlaneCell<Slot<M>> {
    PlaneCell::new(Slot {
        stamp: u64::MAX,
        bits: 0,
        spilled: 0,
        seq: 0,
        first: None,
    })
}

impl<M> MailboxPlane<M> {
    /// A plane bound to no graph (every lane empty). Useful as the
    /// recyclable identity of [`MailboxPlane::rebuild`].
    pub(crate) fn empty() -> Self {
        MailboxPlane {
            rev: Vec::new(),
            slots: Vec::new(),
            spill: Vec::new(),
            bcast: Vec::new(),
            bcast_spill: Vec::new(),
        }
    }

    /// Build the plane for `graph` (O(n + m)).
    pub(crate) fn new(graph: &Graph) -> Self {
        let mut plane = MailboxPlane::empty();
        plane.rebuild(graph);
        plane
    }

    /// Retarget the plane at `graph` in place (O(n + m)), reusing the
    /// lane allocations of the previous binding. Slots retained from an
    /// earlier graph keep their stale stamps: as long as the caller's
    /// epoch counter never reuses a value (the [`crate::Session`]
    /// contract), a stale stamp can never equal a live epoch, so leftover
    /// payloads are never delivered and are lazily overwritten by the
    /// next write to the slot.
    pub(crate) fn rebuild(&mut self, graph: &Graph) {
        let offsets = graph.offsets();
        let adj = graph.adjacency();
        assert!(
            adj.len() <= u32::MAX as usize,
            "graph too large for u32 edge ids"
        );
        // rev[offsets[v] + pos(u in N(v))] = offsets[u] + pos(v in N(u)).
        // Iterating senders in ascending id order means each receiver v
        // sees its in-neighbors in ascending order too, so a per-receiver
        // cursor yields pos(u in N(v)) without any search.
        self.rev.clear();
        self.rev.resize(adj.len(), 0);
        let mut cursor: Vec<usize> = offsets[..offsets.len() - 1].to_vec();
        for win in offsets.windows(2) {
            for (x, &v) in adj[win[0]..win[1]]
                .iter()
                .enumerate()
                .map(|(k, v)| (win[0] + k, v))
            {
                self.rev[cursor[v as usize]] = x as u32;
                cursor[v as usize] += 1;
            }
        }
        // resize_with truncates on shrink and fills fresh cells on grow;
        // retained cells keep their (stale-stamped) state, see above.
        self.slots.resize_with(adj.len(), fresh_slot);
        self.spill
            .resize_with(adj.len(), || PlaneCell::new(Vec::new()));
        self.bcast.resize_with(graph.n(), fresh_slot);
        self.bcast_spill
            .resize_with(graph.n(), || PlaneCell::new(Vec::new()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn rev_is_an_involution_mapping_edges_to_their_reverse() {
        for g in [
            gen::gnp(60, 0.1, 3),
            gen::cycle(9),
            gen::complete(7),
            gen::star(5),
            gen::path(0),
        ] {
            let plane: MailboxPlane<()> = MailboxPlane::new(&g);
            let offsets = g.offsets();
            let adj = g.adjacency();
            assert_eq!(plane.slots.len(), adj.len());
            assert_eq!(plane.bcast.len(), g.n());
            for v in 0..g.n() {
                for (j, &u) in g.neighbors(v as NodeId).iter().enumerate() {
                    let x = offsets[v] + j;
                    let e = plane.rev[x] as usize;
                    // e is an out-edge of u pointing at v...
                    assert!(offsets[u as usize] <= e && e < offsets[u as usize + 1]);
                    assert_eq!(adj[e], v as NodeId);
                    // ...and reversing it again returns to x.
                    assert_eq!(plane.rev[e] as usize, x);
                }
            }
        }
    }

    #[test]
    fn neighbor_index_resolves_and_rejects() {
        let mut idx = NeighborIndex::new(10);
        idx.fill(&[1, 4, 7]);
        assert_eq!(idx.get(1), Some(0));
        assert_eq!(idx.get(4), Some(1));
        assert_eq!(idx.get(7), Some(2));
        assert_eq!(idx.get(2), None);
        assert_eq!(idx.get(99), None, "out-of-range ids are not neighbors");
        // Refilling for another node invalidates earlier marks.
        idx.fill(&[2]);
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.get(2), Some(0));
    }

    #[derive(Clone)]
    struct Bit8;
    impl Message for Bit8 {
        fn bit_cost(&self) -> u64 {
            8
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sink_fixture<'a>(
        cells: &'a [PlaneCell<Slot<Bit8>>],
        spill: &'a [PlaneCell<Vec<(Bit8, u32)>>],
        bcast: &'a PlaneCell<Slot<Bit8>>,
        bcast_spill: &'a PlaneCell<Vec<(Bit8, u32)>>,
        rev_out: &'a [u32],
        dirty: &'a DirtyBoard,
        epoch: u64,
        lookup: &'a mut NeighborIndex,
        err: &'a mut Option<SimError>,
    ) -> SlotSink<'a, Bit8> {
        SlotSink {
            slots: cells,
            spill,
            bcast,
            bcast_spill,
            rev_out,
            dirty,
            epoch,
            seq: 0,
            targeted: 0,
            broadcasts: 0,
            lookup,
            filled: false,
            forgiving: false,
            misrouted: 0,
            err,
            shard: ShardRoute {
                lo: 0,
                hi: NodeId::MAX,
                chunk: 1,
                row: &[],
            },
        }
    }

    #[test]
    fn slot_writes_accumulate_and_epoch_reset_clears_in_place() {
        let cells = [PlaneCell::new(Slot::<Bit8> {
            stamp: u64::MAX,
            bits: 0,
            spilled: 0,
            seq: 0,
            first: None,
        })];
        let spill = [PlaneCell::new(Vec::new())];
        let bcast = PlaneCell::new(Slot::<Bit8> {
            stamp: u64::MAX,
            bits: 0,
            spilled: 0,
            seq: 0,
            first: None,
        });
        let bcast_spill = PlaneCell::new(Vec::new());
        let rev_out = [0u32];
        let dirty = DirtyBoard::new(1);
        let mut lookup = NeighborIndex::new(1);
        let mut err = None;
        let mut sink = sink_fixture(
            &cells,
            &spill,
            &bcast,
            &bcast_spill,
            &rev_out,
            &dirty,
            0,
            &mut lookup,
            &mut err,
        );
        sink.write(0, 0, Bit8);
        sink.write_bcast(Bit8);
        sink.write(0, 0, Bit8);
        assert_eq!((sink.targeted, sink.broadcasts, sink.seq), (2, 1, 3));
        assert!(dirty.is_dirty(0, 0), "targeted write must stamp receiver");
        // SAFETY: single-threaded test, no other accessor.
        let slot = unsafe { &mut *cells[0].get() };
        assert_eq!((slot.bits, slot.spilled, slot.seq), (16, 1, 0));
        // The spilled targeted message carries its send sequence (2).
        assert_eq!(unsafe { &*spill[0].get() }[0].1, 2);
        let b = unsafe { &mut *bcast.get() };
        assert_eq!((b.bits, b.spilled, b.seq), (8, 0, 1));
        // A later epoch resets lazily on the next write.
        let mut sink = sink_fixture(
            &cells,
            &spill,
            &bcast,
            &bcast_spill,
            &rev_out,
            &dirty,
            5,
            &mut lookup,
            &mut err,
        );
        sink.write(0, 0, Bit8);
        let slot = unsafe { &mut *cells[0].get() };
        assert_eq!((slot.stamp, slot.bits, slot.spilled), (5, 8, 0));
        assert!(unsafe { &*spill[0].get() }.is_empty());
    }

    /// Cross-shard staging + exchange replay reconstructs the exact slot
    /// state a direct write would have produced, and stale staging from
    /// an aborted round is fenced off by the epoch stamp.
    #[test]
    fn exchange_replay_matches_direct_writes_and_fences_stale_rounds() {
        // Two shards of one node each (chunk 1); one directed edge slot
        // owned by shard 1 (receiver node 1).
        let mut lanes: ExchangeLanes<Bit8> = ExchangeLanes::empty();
        lanes.ensure(2);
        let cells = [fresh_slot::<Bit8>(), fresh_slot::<Bit8>()];
        let spill = [PlaneCell::new(Vec::new()), PlaneCell::new(Vec::new())];
        let plane = MailboxPlane {
            rev: vec![1, 0],
            slots: cells.into(),
            spill: spill.into(),
            bcast: vec![fresh_slot(), fresh_slot()],
            bcast_spill: vec![PlaneCell::new(Vec::new()), PlaneCell::new(Vec::new())],
        };
        let dirty = DirtyBoard::new(2);
        // Shard 0 (owning node 0) stages two sends and a dirt mark for
        // node 1 in epoch 7, as SlotSink::write/mark would.
        let route = ShardRoute {
            lo: 0,
            hi: 1,
            chunk: 1,
            row: lanes.row(0),
        };
        assert!(route.is_local(0) && !route.is_local(1));
        route.stage(1, 1, 7, 0, Bit8);
        route.stage(1, 1, 7, 2, Bit8);
        route.stage_dirt(1, 7);
        // Applying a *different* epoch must deliver nothing (the aborted
        // -round fence)...
        lanes.apply_into(1, &plane, &dirty, 8);
        assert!(!dirty.is_dirty(1, 8));
        assert_eq!(unsafe { &*plane.slots[1].get() }.stamp, u64::MAX);
        // ...and restaging in epoch 9 clears the stale content in place.
        route.stage(1, 1, 9, 5, Bit8);
        lanes.apply_into(1, &plane, &dirty, 9);
        assert!(dirty.is_dirty(1, 9));
        let slot = unsafe { &*plane.slots[1].get() };
        assert_eq!(
            (slot.stamp, slot.bits, slot.seq, slot.spilled),
            (9, 8, 5, 0)
        );
        assert!(unsafe { &*plane.spill[1].get() }.is_empty());
        // A second apply of the same epoch is a no-op (cells drained).
        lanes.apply_into(1, &plane, &dirty, 9);
        let slot = unsafe { &*plane.slots[1].get() };
        assert_eq!((slot.bits, slot.spilled), (8, 0));
    }
}
