//! The CSR edge-indexed mailbox plane.
//!
//! The plane has **two lanes**, chosen per send call:
//!
//! * **Broadcast lane** — `Ctx::broadcast` sends one value across every
//!   out-edge, so it needs no per-edge storage at all: the payload goes
//!   into the sender's own slot of an `n`-sized array (one contiguous
//!   write, no destination resolution). Delivery gathers each receiver's
//!   in-neighbors' broadcast slots — an array small enough to stay
//!   cache-resident. This is the hot lane: HNT22-style coloring
//!   protocols are broadcast-dominated (trials, slack announcements,
//!   hash-family indices all go to every neighbor).
//! * **Targeted lane** — `Ctx::send(to, ..)` writes the slot of the
//!   directed edge `(u, to)`, keyed by the *receiver-side* CSR edge id
//!   `offsets[to] + pos(u in N(to))`, reached through the reverse-CSR
//!   permutation `rev[offsets[u] + k]`. Keying by receiver makes
//!   delivery a contiguous sweep of `offsets[v]..offsets[v+1]` and puts
//!   the unavoidable cache scatter on the *store* side, where the engine
//!   hides it with software prefetch. Destination resolution is O(1) via
//!   a lazily filled per-worker [`NeighborIndex`] (with a small-degree
//!   fast path), not a per-message `binary_search`.
//!
//! Slots inline the round's **first** message next to the epoch stamp and
//! the per-edge bit counter — in the CONGEST model an edge almost always
//! carries at most one message per round — and spill further same-round
//! messages to cold side arrays. Every message is tagged with the
//! sender's per-round send sequence, so a receiver that gets both lanes
//! from one neighbor in one round merges them back into exact send-call
//! order. Slots reset lazily by epoch stamp (the round of their last
//! write): no per-round clearing pass, no steady-state allocation.
//!
//! Bandwidth accounting is folded into the writes: a targeted write
//! accumulates its bits in the edge slot, a broadcast write accumulates
//! its per-copy bits in the sender's broadcast slot, and delivery sums
//! the two for the per-directed-edge round load.
//!
//! Lane storage is `UnsafeCell`-based because the phases access slots at
//! value-dependent disjoint indices the borrow checker cannot see:
//!
//! * **step phase** — worker `w` owns senders `[lo_w, hi_w)`: it writes
//!   their broadcast slots (disjoint, contiguous) and their out-edges'
//!   targeted slots (disjoint because every directed edge has exactly
//!   one sender).
//! * **routing phase** — worker `w` mutates only the contiguous targeted
//!   slots of its own receivers (disjoint ranges) and performs **reads**
//!   of broadcast slots (no mutation; broadcast payloads are cloned per
//!   receiving edge, exactly the copies the legacy plane made at send
//!   time).
//!
//! The phases are separated by a barrier (or by program order in the
//! sequential engine), so no slot is ever written by one thread while
//! another touches it.

use crate::error::SimError;
use crate::message::Message;
use graphs::{Graph, NodeId};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// One mailbox slot — the hot, fixed-size part shared by both lanes.
///
/// The targeted lane keys one per directed edge (drained at delivery);
/// the broadcast lane keys one per node, where `bits` counts the
/// *per-copy* cost every receiving edge accounts and delivery clones
/// instead of draining.
pub(crate) struct Slot<M> {
    /// Round of the last write; `u64::MAX` = never written. A stale stamp
    /// means the other fields are leftovers and are reset in place on the
    /// next write (lazy, so idle slots cost nothing).
    pub(crate) stamp: u64,
    /// Bits accumulated by this round's writes. Saturates at `u32::MAX` —
    /// orders of magnitude above any per-round CONGEST load.
    pub(crate) bits: u32,
    /// Number of same-round messages pushed to the spill vector.
    pub(crate) spilled: u32,
    /// Send-sequence tag of `first` (for merging the two lanes back into
    /// exact send order).
    pub(crate) seq: u32,
    /// The round's first message, inline — the common case.
    pub(crate) first: Option<M>,
}

/// Shareable cell for slot-indexed plane storage; see the module docs for
/// the disjoint-access protocol that makes the `Sync` impl sound.
pub(crate) struct PlaneCell<T>(UnsafeCell<T>);

/// SAFETY: plane cells are mutated only at phase-disjoint indices (module
/// docs); `T: Send` suffices because payloads move between threads but
/// are never aliased across them mid-mutation.
unsafe impl<T: Send> Sync for PlaneCell<T> {}

impl<T> PlaneCell<T> {
    pub(crate) fn new(value: T) -> Self {
        PlaneCell(UnsafeCell::new(value))
    }

    /// Raw pointer; the caller must hold this phase's exclusivity over
    /// the index (module docs) for the duration of the dereference.
    pub(crate) fn get(&self) -> *mut T {
        self.0.get()
    }
}

/// Hint the cache that `p` is about to be written.
///
/// The targeted lane's slot writes are a scatter through the reverse-CSR
/// permutation — the one cache-unfriendly access of the plane. Unlike the
/// legacy outbox plane, the destinations are known *before* the node
/// program runs (they are exactly its `rev_out` entries), so the engine
/// prefetches them and the misses overlap the programs' own compute.
/// No-op on non-x86_64 targets.
#[inline(always)]
pub(crate) fn prefetch_for_write<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; any address is allowed.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// O(1) neighbor-position lookup, one per engine worker.
///
/// `mark[w] == tick` means `pos[w]` is the position of `w` in the
/// neighbor list the index was last filled from. Filling is lazy — it
/// happens on a node's first targeted `send` of the round, so
/// broadcast-only protocols never pay for it — and costs `O(deg)`, after
/// which every `send` resolves in O(1).
pub(crate) struct NeighborIndex {
    mark: Vec<u64>,
    pos: Vec<u32>,
    tick: u64,
}

impl NeighborIndex {
    /// An index able to resolve destinations in `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        NeighborIndex {
            mark: vec![0; n],
            pos: vec![0; n],
            tick: 0,
        }
    }

    /// Grow the index to resolve destinations in `0..n` (never shrinks).
    /// New entries carry mark 0, which predates every post-fill `tick`,
    /// so they can never be mistaken for resolved positions.
    pub(crate) fn grow(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.pos.resize(n, 0);
        }
    }

    /// Point the index at a new neighbor list (O(deg)).
    fn fill(&mut self, neighbors: &[NodeId]) {
        self.tick += 1;
        for (k, &w) in neighbors.iter().enumerate() {
            self.mark[w as usize] = self.tick;
            self.pos[w as usize] = k as u32;
        }
    }

    /// Neighbor position of `to` in the list last filled, if present.
    fn get(&self, to: NodeId) -> Option<usize> {
        let t = to as usize;
        (t < self.mark.len() && self.mark[t] == self.tick).then(|| self.pos[t] as usize)
    }
}

/// Per-receiver dirty stamps: the epoch of the last write addressed to a
/// receiver, the worklist behind the session scheduler's dirty-receiver
/// delivery (see [`crate::Session`]). A targeted send stamps its
/// destination; a broadcast stamps the sender's whole out-neighborhood
/// (the same O(deg) the delivery clone pass pays anyway). Routing then
/// sweeps only receivers stamped with the current epoch instead of every
/// edge slot of the graph.
///
/// Stores are `Relaxed` atomics: several step workers may stamp the same
/// receiver in one round, but they all write the *same* epoch value, and
/// the phase barrier orders every stamp before the routing phase's loads.
pub(crate) struct DirtyBoard {
    stamps: Vec<AtomicU64>,
}

impl DirtyBoard {
    /// A board for receivers `0..n`; no receiver starts dirty (the
    /// initial stamp `u64::MAX` is never a valid epoch).
    pub(crate) fn new(n: usize) -> Self {
        DirtyBoard {
            stamps: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
        }
    }

    /// Grow the board to cover receivers `0..n` (never shrinks — retained
    /// stamps are from past epochs and the session epoch counter never
    /// reuses a value, so they can never alias a future round).
    pub(crate) fn grow(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize_with(n, || AtomicU64::new(u64::MAX));
        }
    }

    /// Stamp receiver `v` dirty for `epoch`.
    #[inline]
    pub(crate) fn mark(&self, v: NodeId, epoch: u64) {
        self.stamps[v as usize].store(epoch, Ordering::Relaxed);
    }

    /// Whether receiver `v` was addressed during `epoch`.
    #[inline]
    pub(crate) fn is_dirty(&self, v: usize, epoch: u64) -> bool {
        self.stamps[v].load(Ordering::Relaxed) == epoch
    }
}

/// Degree at or below which `resolve` searches the (cache-resident)
/// neighbor list directly instead of the O(1) scratch table: for short
/// lists a handful of L1 compares beats two probes into `n`-sized arrays.
const SMALL_DEGREE: usize = 32;

/// A sender's window onto the mailbox plane for one `on_round` call.
pub(crate) struct SlotSink<'a, M> {
    /// The whole targeted-lane slot array (writes go to
    /// `slots[rev_out[k]]`).
    pub(crate) slots: &'a [PlaneCell<Slot<M>>],
    /// The whole targeted-lane overflow array (same indexing; cold).
    pub(crate) spill: &'a [PlaneCell<Vec<(M, u32)>>],
    /// This node's broadcast-lane slot.
    pub(crate) bcast: &'a PlaneCell<Slot<M>>,
    /// This node's broadcast-lane overflow (cold).
    pub(crate) bcast_spill: &'a PlaneCell<Vec<(M, u32)>>,
    /// The node's slice of the reverse-CSR permutation: `rev_out[k]` is
    /// the receiver-side slot id of the edge to the `k`-th neighbor.
    pub(crate) rev_out: &'a [u32],
    /// The session's dirty-receiver stamps (every write marks its
    /// receiver so routing can skip clean nodes).
    pub(crate) dirty: &'a DirtyBoard,
    /// Current round (the epoch value to stamp writes with).
    pub(crate) epoch: u64,
    /// Per-round send-call sequence (shared by both lanes; restores exact
    /// send order at delivery).
    pub(crate) seq: u32,
    /// Targeted sends issued through this sink (drives the engine's
    /// lane-skipping and prefetch heuristics).
    pub(crate) targeted: u32,
    /// Broadcasts issued through this sink.
    pub(crate) broadcasts: u32,
    /// The worker's neighbor-position scratch.
    pub(crate) lookup: &'a mut NeighborIndex,
    /// Whether `lookup` has been filled for this node yet.
    pub(crate) filled: bool,
    /// Whether a fault plan is active: sends to non-neighbors are then
    /// eaten by the faulty network (counted in `misrouted`) instead of
    /// failing the run with [`SimError::NotANeighbor`].
    pub(crate) forgiving: bool,
    /// Sends eaten because the destination was not a neighbor (only under
    /// an active fault plan; see `forgiving`).
    pub(crate) misrouted: u64,
    /// First error any node of this worker's range raised (kept, not
    /// overwritten — nodes are stepped in ascending id order).
    pub(crate) err: &'a mut Option<SimError>,
}

/// Clamp a `bit_cost` to the slot counters' width.
fn cost32(msg_bits: u64) -> u32 {
    u32::try_from(msg_bits).unwrap_or(u32::MAX)
}

impl<M: Message> SlotSink<'_, M> {
    /// Resolve `to` to a neighbor position: O(1) via the scratch table
    /// (filled lazily on a node's first targeted send), with a
    /// small-degree fast path over the neighbor list itself.
    pub(crate) fn resolve(&mut self, neighbors: &[NodeId], to: NodeId) -> Option<usize> {
        if neighbors.len() <= SMALL_DEGREE {
            return neighbors.binary_search(&to).ok();
        }
        if !self.filled {
            self.lookup.fill(neighbors);
            self.filled = true;
        }
        self.lookup.get(to)
    }

    /// The shared write protocol of both lanes: lazy epoch reset, bit
    /// accumulation, inline-first-or-spill, sequence tagging.
    ///
    /// SAFETY (caller): the cells must be ones this sink's node is the
    /// unique step-phase writer of — its out-edges' targeted slots or
    /// its own broadcast slot (module docs).
    fn push(
        slot: &PlaneCell<Slot<M>>,
        spill: &PlaneCell<Vec<(M, u32)>>,
        epoch: u64,
        seq: u32,
        msg: M,
    ) {
        // SAFETY: exclusivity guaranteed by the caller (see above).
        let slot = unsafe { &mut *slot.get() };
        if slot.stamp != epoch {
            slot.stamp = epoch;
            slot.bits = 0;
            slot.first = None;
            if slot.spilled > 0 {
                slot.spilled = 0;
                // SAFETY: same exclusivity as the hot slot.
                unsafe { &mut *spill.get() }.clear();
            }
        }
        slot.bits = slot.bits.saturating_add(cost32(msg.bit_cost()));
        if slot.first.is_none() {
            slot.first = Some(msg);
            slot.seq = seq;
        } else {
            slot.spilled += 1;
            // SAFETY: same exclusivity as the hot slot.
            unsafe { &mut *spill.get() }.push((msg, seq));
        }
    }

    /// Targeted send: append `msg` to the slot of the edge to neighbor
    /// `k` (node id `to`), folding its bit cost into the slot counter and
    /// stamping the receiver dirty.
    pub(crate) fn write(&mut self, k: usize, to: NodeId, msg: M) {
        let e = self.rev_out[k] as usize;
        // SAFETY: this sink's node is the unique step-phase sender over
        // its out-edges' slots (module docs).
        Self::push(&self.slots[e], &self.spill[e], self.epoch, self.seq, msg);
        self.dirty.mark(to, self.epoch);
        self.seq += 1;
        self.targeted += 1;
    }

    /// Broadcast: store `msg` once in the sender's broadcast slot; every
    /// receiving edge clones its own copy at delivery (the same copies
    /// the legacy plane made at send time) and accounts `bit_cost` bits.
    /// The caller ([`crate::Ctx::broadcast`]) stamps the out-neighborhood
    /// dirty via [`SlotSink::mark`].
    pub(crate) fn write_bcast(&mut self, msg: M) {
        // SAFETY: a node's broadcast slot is written only while its own
        // worker steps it (module docs).
        Self::push(self.bcast, self.bcast_spill, self.epoch, self.seq, msg);
        self.seq += 1;
        self.broadcasts += 1;
    }

    /// Stamp `v` as a dirty receiver of the current epoch.
    #[inline]
    pub(crate) fn mark(&self, v: NodeId) {
        self.dirty.mark(v, self.epoch);
    }
}

/// Where a `Ctx`'s sends go: the engine's slot plane, or a plain outbox
/// (the pre-PR reference engine and unit tests).
pub(crate) enum Sink<'a, M> {
    /// CSR mailbox plane (the engine's fast path).
    Slots(SlotSink<'a, M>),
    /// Legacy per-round `(destination, message)` outbox.
    Outbox(&'a mut Vec<(NodeId, M)>),
}

/// The engine-owned lane arrays plus the reverse-CSR permutation.
pub(crate) struct MailboxPlane<M> {
    /// `rev[offsets[u] + k]` = receiver-side slot id of the edge from `u`
    /// to its `k`-th neighbor (i.e. `offsets[v] + pos(u in N(v))`). An
    /// involution over directed-edge ids.
    pub(crate) rev: Vec<u32>,
    /// Targeted lane, receiver-side keyed: receiver `v` owns the
    /// contiguous range `offsets[v]..offsets[v+1]`, in-neighbor order.
    pub(crate) slots: Vec<PlaneCell<Slot<M>>>,
    /// Targeted-lane overflow (cold; same indexing).
    pub(crate) spill: Vec<PlaneCell<Vec<(M, u32)>>>,
    /// Broadcast lane, sender keyed (length `n`).
    pub(crate) bcast: Vec<PlaneCell<Slot<M>>>,
    /// Broadcast-lane overflow (cold; length `n`).
    pub(crate) bcast_spill: Vec<PlaneCell<Vec<(M, u32)>>>,
}

/// A never-written slot (stamp `u64::MAX` predates every epoch).
fn fresh_slot<M>() -> PlaneCell<Slot<M>> {
    PlaneCell::new(Slot {
        stamp: u64::MAX,
        bits: 0,
        spilled: 0,
        seq: 0,
        first: None,
    })
}

impl<M> MailboxPlane<M> {
    /// A plane bound to no graph (every lane empty). Useful as the
    /// recyclable identity of [`MailboxPlane::rebuild`].
    pub(crate) fn empty() -> Self {
        MailboxPlane {
            rev: Vec::new(),
            slots: Vec::new(),
            spill: Vec::new(),
            bcast: Vec::new(),
            bcast_spill: Vec::new(),
        }
    }

    /// Build the plane for `graph` (O(n + m)).
    pub(crate) fn new(graph: &Graph) -> Self {
        let mut plane = MailboxPlane::empty();
        plane.rebuild(graph);
        plane
    }

    /// Retarget the plane at `graph` in place (O(n + m)), reusing the
    /// lane allocations of the previous binding. Slots retained from an
    /// earlier graph keep their stale stamps: as long as the caller's
    /// epoch counter never reuses a value (the [`crate::Session`]
    /// contract), a stale stamp can never equal a live epoch, so leftover
    /// payloads are never delivered and are lazily overwritten by the
    /// next write to the slot.
    pub(crate) fn rebuild(&mut self, graph: &Graph) {
        let offsets = graph.offsets();
        let adj = graph.adjacency();
        assert!(
            adj.len() <= u32::MAX as usize,
            "graph too large for u32 edge ids"
        );
        // rev[offsets[v] + pos(u in N(v))] = offsets[u] + pos(v in N(u)).
        // Iterating senders in ascending id order means each receiver v
        // sees its in-neighbors in ascending order too, so a per-receiver
        // cursor yields pos(u in N(v)) without any search.
        self.rev.clear();
        self.rev.resize(adj.len(), 0);
        let mut cursor: Vec<usize> = offsets[..offsets.len() - 1].to_vec();
        for win in offsets.windows(2) {
            for (x, &v) in adj[win[0]..win[1]]
                .iter()
                .enumerate()
                .map(|(k, v)| (win[0] + k, v))
            {
                self.rev[cursor[v as usize]] = x as u32;
                cursor[v as usize] += 1;
            }
        }
        // resize_with truncates on shrink and fills fresh cells on grow;
        // retained cells keep their (stale-stamped) state, see above.
        self.slots.resize_with(adj.len(), fresh_slot);
        self.spill
            .resize_with(adj.len(), || PlaneCell::new(Vec::new()));
        self.bcast.resize_with(graph.n(), fresh_slot);
        self.bcast_spill
            .resize_with(graph.n(), || PlaneCell::new(Vec::new()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn rev_is_an_involution_mapping_edges_to_their_reverse() {
        for g in [
            gen::gnp(60, 0.1, 3),
            gen::cycle(9),
            gen::complete(7),
            gen::star(5),
            gen::path(0),
        ] {
            let plane: MailboxPlane<()> = MailboxPlane::new(&g);
            let offsets = g.offsets();
            let adj = g.adjacency();
            assert_eq!(plane.slots.len(), adj.len());
            assert_eq!(plane.bcast.len(), g.n());
            for v in 0..g.n() {
                for (j, &u) in g.neighbors(v as NodeId).iter().enumerate() {
                    let x = offsets[v] + j;
                    let e = plane.rev[x] as usize;
                    // e is an out-edge of u pointing at v...
                    assert!(offsets[u as usize] <= e && e < offsets[u as usize + 1]);
                    assert_eq!(adj[e], v as NodeId);
                    // ...and reversing it again returns to x.
                    assert_eq!(plane.rev[e] as usize, x);
                }
            }
        }
    }

    #[test]
    fn neighbor_index_resolves_and_rejects() {
        let mut idx = NeighborIndex::new(10);
        idx.fill(&[1, 4, 7]);
        assert_eq!(idx.get(1), Some(0));
        assert_eq!(idx.get(4), Some(1));
        assert_eq!(idx.get(7), Some(2));
        assert_eq!(idx.get(2), None);
        assert_eq!(idx.get(99), None, "out-of-range ids are not neighbors");
        // Refilling for another node invalidates earlier marks.
        idx.fill(&[2]);
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.get(2), Some(0));
    }

    #[derive(Clone)]
    struct Bit8;
    impl Message for Bit8 {
        fn bit_cost(&self) -> u64 {
            8
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sink_fixture<'a>(
        cells: &'a [PlaneCell<Slot<Bit8>>],
        spill: &'a [PlaneCell<Vec<(Bit8, u32)>>],
        bcast: &'a PlaneCell<Slot<Bit8>>,
        bcast_spill: &'a PlaneCell<Vec<(Bit8, u32)>>,
        rev_out: &'a [u32],
        dirty: &'a DirtyBoard,
        epoch: u64,
        lookup: &'a mut NeighborIndex,
        err: &'a mut Option<SimError>,
    ) -> SlotSink<'a, Bit8> {
        SlotSink {
            slots: cells,
            spill,
            bcast,
            bcast_spill,
            rev_out,
            dirty,
            epoch,
            seq: 0,
            targeted: 0,
            broadcasts: 0,
            lookup,
            filled: false,
            forgiving: false,
            misrouted: 0,
            err,
        }
    }

    #[test]
    fn slot_writes_accumulate_and_epoch_reset_clears_in_place() {
        let cells = [PlaneCell::new(Slot::<Bit8> {
            stamp: u64::MAX,
            bits: 0,
            spilled: 0,
            seq: 0,
            first: None,
        })];
        let spill = [PlaneCell::new(Vec::new())];
        let bcast = PlaneCell::new(Slot::<Bit8> {
            stamp: u64::MAX,
            bits: 0,
            spilled: 0,
            seq: 0,
            first: None,
        });
        let bcast_spill = PlaneCell::new(Vec::new());
        let rev_out = [0u32];
        let dirty = DirtyBoard::new(1);
        let mut lookup = NeighborIndex::new(1);
        let mut err = None;
        let mut sink = sink_fixture(
            &cells,
            &spill,
            &bcast,
            &bcast_spill,
            &rev_out,
            &dirty,
            0,
            &mut lookup,
            &mut err,
        );
        sink.write(0, 0, Bit8);
        sink.write_bcast(Bit8);
        sink.write(0, 0, Bit8);
        assert_eq!((sink.targeted, sink.broadcasts, sink.seq), (2, 1, 3));
        assert!(dirty.is_dirty(0, 0), "targeted write must stamp receiver");
        // SAFETY: single-threaded test, no other accessor.
        let slot = unsafe { &mut *cells[0].get() };
        assert_eq!((slot.bits, slot.spilled, slot.seq), (16, 1, 0));
        // The spilled targeted message carries its send sequence (2).
        assert_eq!(unsafe { &*spill[0].get() }[0].1, 2);
        let b = unsafe { &mut *bcast.get() };
        assert_eq!((b.bits, b.spilled, b.seq), (8, 0, 1));
        // A later epoch resets lazily on the next write.
        let mut sink = sink_fixture(
            &cells,
            &spill,
            &bcast,
            &bcast_spill,
            &rev_out,
            &dirty,
            5,
            &mut lookup,
            &mut err,
        );
        sink.write(0, 0, Bit8);
        let slot = unsafe { &mut *cells[0].get() };
        assert_eq!((slot.stamp, slot.bits, slot.spilled), (5, 8, 0));
        assert!(unsafe { &*spill[0].get() }.is_empty());
    }
}
