//! Run statistics: rounds, messages, bits, and bandwidth-normalized rounds.

use crate::fault::FaultCounters;
use crate::sched::ScheduleCounters;
use graphs::NodeId;
use std::collections::BTreeMap;

/// Distinct-bucket cap of a [`LoadProfile`]; beyond it the histogram
/// coarsens by doubling its granularity.
pub const MAX_BUCKETS: usize = 512;

/// Streaming summary of the per-round maximum edge loads.
///
/// The engine records one value per round — the largest number of bits any
/// directed edge carried that round. Long runs used to accumulate an
/// unbounded `Vec<u64>`; this type folds the stream into a value → count
/// histogram instead. The histogram keeps exact values until it would
/// exceed [`MAX_BUCKETS`] distinct entries, then coarsens by doubling its
/// bucket granularity, rounding values **up** to a bucket boundary so every
/// derived figure stays a conservative (over-)estimate. The maximum is
/// tracked exactly regardless of coarsening, and any run with at most
/// `MAX_BUCKETS` distinct round loads — in practice, every protocol in
/// this repo — is summarized exactly.
///
/// # Example
///
/// ```
/// use congest::LoadProfile;
///
/// let p = LoadProfile::from_loads(&[10, 65, 0]);
/// assert_eq!(p.rounds(), 3);
/// assert_eq!(p.max(), 65);
/// // ceil(10/32)=1, ceil(65/32)=3, max(0,1)=1 → 5.
/// assert_eq!(p.normalized_rounds(32), 5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadProfile {
    /// Number of rounds recorded.
    rounds: u64,
    /// Exact maximum load seen (independent of bucketing).
    max: u64,
    /// Bucket width, a power of two; `1` means the histogram is exact.
    granularity: u64,
    /// Quantized load → number of rounds that saw it.
    buckets: BTreeMap<u64, u64>,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            rounds: 0,
            max: 0,
            granularity: 1,
            buckets: BTreeMap::new(),
        }
    }
}

impl LoadProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// A profile of the given per-round loads (mainly for tests and docs).
    pub fn from_loads(loads: &[u64]) -> Self {
        let mut p = Self::new();
        for &l in loads {
            p.record(l);
        }
        p
    }

    /// Round `load` up to the enclosing bucket boundary.
    fn quantize(load: u64, granularity: u64) -> u64 {
        if granularity == 1 {
            load
        } else {
            load.div_ceil(granularity) * granularity
        }
    }

    /// Record one round's maximum edge load.
    pub fn record(&mut self, load: u64) {
        self.rounds += 1;
        self.max = self.max.max(load);
        let key = Self::quantize(load, self.granularity);
        *self.buckets.entry(key).or_insert(0) += 1;
        self.shrink_to_cap();
    }

    /// Coarsen until the distinct-bucket cap holds again.
    fn shrink_to_cap(&mut self) {
        while self.buckets.len() > MAX_BUCKETS {
            self.granularity *= 2;
            let old = std::mem::take(&mut self.buckets);
            for (key, count) in old {
                *self
                    .buckets
                    .entry(Self::quantize(key, self.granularity))
                    .or_insert(0) += count;
            }
        }
    }

    /// Number of rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Whether any round has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds == 0
    }

    /// Exact maximum load over all recorded rounds (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Current bucket width (1 while the histogram is exact).
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// The `q`-quantile of the recorded loads (0 for an empty profile).
    ///
    /// Exact while `granularity() == 1`; after coarsening, an upper bound
    /// within one bucket width. `q` is clamped to `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.rounds == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.rounds as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&key, &count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return key.min(self.max);
            }
        }
        self.max
    }

    /// Bandwidth-normalized round count `Σ_r ⌈load_r / bandwidth⌉`
    /// (counting at least 1 per recorded round): the number of rounds the
    /// run would take if every round's traffic had to be serialized into
    /// `bandwidth`-bit messages. Exact while `granularity() == 1`,
    /// otherwise a conservative upper bound.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    pub fn normalized_rounds(&self, bandwidth: u64) -> u64 {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.buckets
            .iter()
            .map(|(&key, &count)| count * key.div_ceil(bandwidth).max(1))
            .sum()
    }

    /// Fold another profile into this one (sequential composition).
    pub fn merge(&mut self, other: &LoadProfile) {
        self.rounds += other.rounds;
        self.max = self.max.max(other.max);
        self.granularity = self.granularity.max(other.granularity);
        let old = std::mem::take(&mut self.buckets);
        for (key, count) in old
            .into_iter()
            .chain(other.buckets.iter().map(|(&key, &count)| (key, count)))
        {
            *self
                .buckets
                .entry(Self::quantize(key, self.granularity))
                .or_insert(0) += count;
        }
        self.shrink_to_cap();
    }
}

/// Statistics of one engine run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed (a round in which nobody sends still counts if a
    /// node was not done).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits carried over all edges and rounds.
    pub total_bits: u64,
    /// Streaming summary of the per-round maximum directed-edge loads.
    pub edge_load: LoadProfile,
    /// Whether every node reported done before the round cap.
    pub completed: bool,
    /// Fault-injection event counts (all zero without an active
    /// [`FaultPlan`](crate::FaultPlan)).
    pub faults: FaultCounters,
    /// Receivers whose inbound traffic was perturbed — dropped, delayed,
    /// or truncated — during the run, sorted ascending. These are the
    /// starved-inbox sentinels a pipeline feeds into its repair sweep;
    /// empty without an active fault plan.
    pub starved: Vec<NodeId>,
    /// Nodes that crashed at least once during the run, sorted ascending
    /// — crash-stop and recovered nodes alike. A pipeline quarantines
    /// these (strips their colors) before its repair sweep; empty without
    /// crash fates in the plan.
    pub crashed: Vec<NodeId>,
    /// α-synchronizer overhead of the run — virtual makespan in pulses,
    /// worst per-round wait, arrival inversions, and round-tag traffic
    /// (all zero without an active
    /// [`SchedulePlan`](crate::SchedulePlan)).
    pub sched: ScheduleCounters,
}

impl RunReport {
    /// Largest per-edge per-round load seen anywhere in the run.
    pub fn max_edge_bits(&self) -> u64 {
        self.edge_load.max()
    }

    /// Bandwidth-normalized round count `Σ_r ⌈max_edge_bits(r)/bandwidth⌉`
    /// (counting at least 1 per executed round): the number of rounds the
    /// run would take if every round's traffic had to be serialized into
    /// `bandwidth`-bit messages. This is the figure of merit that exposes
    /// LOCAL-style protocols' congestion cost.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    pub fn normalized_rounds(&self, bandwidth: u64) -> u64 {
        self.edge_load.normalized_rounds(bandwidth)
    }

    /// Fold another report into this one (sequential composition of
    /// protocol passes).
    pub fn absorb(&mut self, other: &RunReport) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.edge_load.merge(&other.edge_load);
        self.completed &= other.completed;
        self.faults.merge(&other.faults);
        self.starved = merge_sorted_ids(&self.starved, &other.starved);
        self.crashed = merge_sorted_ids(&self.crashed, &other.crashed);
        self.sched.merge(&other.sched);
    }
}

/// Union of two ascending id lists, deduplicated (both inputs are sorted
/// by construction — the engines emit starved lists in receiver order).
fn merge_sorted_ids(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    if b.is_empty() {
        return a.to_vec();
    }
    if a.is_empty() {
        return b.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x <= y => {
                i += 1;
                j += usize::from(x == y);
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!("loop condition"),
        };
        out.push(next);
    }
    out
}

/// One recorded engine pass: its name, the pipeline phase it ran under,
/// and its metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassRecord {
    /// Pass name (e.g. `"acd-degrees"`, `"fallback"`).
    pub name: String,
    /// Phase label the pass was attributed to (empty when the driver never
    /// called [`PassLog::set_phase`]).
    pub phase: String,
    /// The pass's engine metrics.
    pub report: RunReport,
}

/// Accumulates reports across the named passes of a multi-pass pipeline
/// (e.g. the D1LC pipeline runs ACD, slack generation, SlackColor, … as
/// separate engine passes whose rounds add up).
///
/// Passes can additionally be grouped into coarser **phases**
/// (setup / per-degree-range / fallback / cleanup in the Theorem 1
/// pipeline): call [`set_phase`](PassLog::set_phase) at each phase
/// boundary and every subsequently recorded pass is attributed to that
/// phase. [`phase_breakdown`](PassLog::phase_breakdown) then folds the log
/// into one aggregate [`RunReport`] per phase, which is how the bench
/// crate's scenario sweeps report where the rounds went.
///
/// # Example
///
/// ```
/// use congest::{LoadProfile, PassLog, RunReport};
///
/// let pass = |rounds| RunReport {
///     rounds,
///     edge_load: LoadProfile::from_loads(&vec![8; rounds as usize]),
///     completed: true,
///     ..Default::default()
/// };
/// let mut log = PassLog::new();
/// log.set_phase("setup");
/// log.record("codec-setup", pass(2));
/// log.set_phase("color");
/// log.record("trial", pass(5));
/// log.record("trial", pass(3));
/// let phases = log.phase_breakdown();
/// assert_eq!(phases.len(), 2);
/// assert_eq!(phases[0], ("setup".to_string(), 2));
/// assert_eq!(phases[1], ("color".to_string(), 8));
/// assert_eq!(log.total_rounds(), 10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PassLog {
    passes: Vec<PassRecord>,
    current_phase: String,
}

impl PassLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new phase: every pass recorded from now on is attributed
    /// to `name` (until the next `set_phase`).
    pub fn set_phase(&mut self, name: impl Into<String>) {
        self.current_phase = name.into();
    }

    /// The phase newly recorded passes are attributed to.
    pub fn current_phase(&self) -> &str {
        &self.current_phase
    }

    /// Record a pass under the current phase.
    pub fn record(&mut self, name: impl Into<String>, report: RunReport) {
        self.passes.push(PassRecord {
            name: name.into(),
            phase: self.current_phase.clone(),
            report,
        });
    }

    /// All recorded passes in order.
    pub fn passes(&self) -> &[PassRecord] {
        &self.passes
    }

    /// Round totals per phase, in first-recorded order. Passes recorded
    /// before any [`set_phase`](PassLog::set_phase) call appear under the
    /// empty label `""`.
    pub fn phase_breakdown(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for p in &self.passes {
            match out.iter_mut().find(|(name, _)| *name == p.phase) {
                Some((_, rounds)) => *rounds += p.report.rounds,
                None => out.push((p.phase.clone(), p.report.rounds)),
            }
        }
        out
    }

    /// Total rounds across passes.
    pub fn total_rounds(&self) -> u64 {
        self.passes.iter().map(|p| p.report.rounds).sum()
    }

    /// Total messages across passes.
    pub fn total_messages(&self) -> u64 {
        self.passes.iter().map(|p| p.report.messages).sum()
    }

    /// Total bits across passes.
    pub fn total_bits(&self) -> u64 {
        self.passes.iter().map(|p| p.report.total_bits).sum()
    }

    /// Largest per-edge per-round load across passes.
    pub fn max_edge_bits(&self) -> u64 {
        self.passes
            .iter()
            .map(|p| p.report.max_edge_bits())
            .max()
            .unwrap_or(0)
    }

    /// Fold every pass's edge-load histogram into one run-wide
    /// [`LoadProfile`] (the per-round maxima of the whole pipeline).
    pub fn edge_load(&self) -> LoadProfile {
        let mut profile = LoadProfile::new();
        for p in &self.passes {
            profile.merge(&p.report.edge_load);
        }
        profile
    }

    /// Total bandwidth-normalized rounds across passes.
    pub fn normalized_rounds(&self, bandwidth: u64) -> u64 {
        self.passes
            .iter()
            .map(|p| p.report.normalized_rounds(bandwidth))
            .sum()
    }

    /// Aggregate fault-injection counters across passes (all zero for a
    /// fault-free solve).
    pub fn fault_totals(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for p in &self.passes {
            total.merge(&p.report.faults);
        }
        total
    }

    /// Aggregate α-synchronizer overhead across passes — pulses,
    /// inversions, and tag bits add, the worst wait is the max (all zero
    /// for a synchronous solve).
    pub fn sched_totals(&self) -> ScheduleCounters {
        let mut total = ScheduleCounters::default();
        for p in &self.passes {
            total.merge(&p.report.sched);
        }
        total
    }

    /// Union of the starved-receiver sentinel lists across passes, sorted
    /// ascending — the nodes whose inbound traffic any pass lost, late or
    /// clipped. A pipeline's repair stage treats these as suspects even
    /// when they ended the pass with a locally consistent state.
    pub fn starved_union(&self) -> Vec<NodeId> {
        let mut union: Vec<NodeId> = Vec::new();
        for p in &self.passes {
            union = merge_sorted_ids(&union, &p.report.starved);
        }
        union
    }

    /// Union of the crashed-node lists across passes, sorted ascending —
    /// every node that was down at any point of any pass. A pipeline's
    /// repair stage quarantines these (strips their colors) before the
    /// conflict sweep, so a node that crashed mid-decision can never keep
    /// a color it did not defend.
    pub fn crashed_union(&self) -> Vec<NodeId> {
        let mut union: Vec<NodeId> = Vec::new();
        for p in &self.passes {
            union = merge_sorted_ids(&union, &p.report.crashed);
        }
        union
    }

    /// Merge another log's passes after this one's (their phase labels
    /// travel with them; this log's current phase is unchanged).
    pub fn extend(&mut self, other: PassLog) {
        self.passes.extend(other.passes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rounds: u64, loads: &[u64]) -> RunReport {
        RunReport {
            rounds,
            messages: 10,
            total_bits: loads.iter().sum(),
            edge_load: LoadProfile::from_loads(loads),
            completed: true,
            ..Default::default()
        }
    }

    #[test]
    fn normalized_rounds_ceil() {
        let r = report(3, &[10, 65, 0]);
        // With B = 32: ceil(10/32)=1, ceil(65/32)=3, max(0,1)=1 → 5.
        assert_eq!(r.normalized_rounds(32), 5);
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = report(2, &[5, 6]);
        let b = report(3, &[7, 8, 9]);
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.edge_load, LoadProfile::from_loads(&[5, 6, 7, 8, 9]));
        assert_eq!(a.edge_load.rounds(), 5);
        assert_eq!(a.max_edge_bits(), 9);
    }

    #[test]
    fn absorb_merges_faults_and_starved_union() {
        let mut a = report(1, &[1]);
        a.faults.dropped = 2;
        a.starved = vec![1, 3, 5];
        a.crashed = vec![4];
        let mut b = report(1, &[1]);
        b.faults.dropped = 1;
        b.faults.delayed = 4;
        b.faults.crashes = 2;
        b.starved = vec![2, 3, 6];
        b.crashed = vec![2, 4];
        a.absorb(&b);
        assert_eq!((a.faults.dropped, a.faults.delayed), (3, 4));
        assert_eq!(a.faults.crashes, 2);
        assert_eq!(a.starved, vec![1, 2, 3, 5, 6]);
        assert_eq!(a.crashed, vec![2, 4]);

        let mut log = PassLog::new();
        let mut c = report(1, &[1]);
        c.faults.truncated = 7;
        c.starved = vec![0, 5];
        c.crashed = vec![0];
        log.record("x", a);
        log.record("y", c);
        assert_eq!(log.fault_totals().dropped, 3);
        assert_eq!(log.fault_totals().truncated, 7);
        assert_eq!(log.fault_totals().crashes, 2);
        assert_eq!(log.starved_union(), vec![0, 1, 2, 3, 5, 6]);
        assert_eq!(log.crashed_union(), vec![0, 2, 4]);
    }

    #[test]
    fn pass_log_totals() {
        let mut log = PassLog::new();
        log.record("acd", report(4, &[10, 10, 10, 10]));
        log.record("slack", report(1, &[100]));
        assert_eq!(log.total_rounds(), 5);
        assert_eq!(log.max_edge_bits(), 100);
        assert_eq!(log.normalized_rounds(32), 4 + 4);
        assert_eq!(log.passes().len(), 2);
        assert_eq!(log.edge_load().rounds(), 5);
        assert_eq!(log.edge_load().max(), 100);
    }

    #[test]
    fn phase_attribution_groups_passes() {
        let mut log = PassLog::new();
        log.record("pre", report(1, &[1]));
        log.set_phase("phase-1");
        log.record("acd", report(4, &[2, 2, 2, 2]));
        log.record("slack", report(2, &[3, 3]));
        log.set_phase("cleanup");
        log.record("cleanup", report(3, &[4, 4, 4]));
        assert_eq!(log.current_phase(), "cleanup");
        assert_eq!(log.passes()[1].phase, "phase-1");
        assert_eq!(log.passes()[1].name, "acd");
        assert_eq!(
            log.phase_breakdown(),
            vec![
                (String::new(), 1),
                ("phase-1".to_string(), 6),
                ("cleanup".to_string(), 3),
            ]
        );
    }

    #[test]
    fn extend_preserves_phase_labels() {
        let mut a = PassLog::new();
        a.set_phase("left");
        a.record("x", report(1, &[1]));
        let mut b = PassLog::new();
        b.set_phase("right");
        b.record("y", report(2, &[1, 1]));
        a.extend(b);
        assert_eq!(a.current_phase(), "left");
        assert_eq!(
            a.phase_breakdown(),
            vec![("left".to_string(), 1), ("right".to_string(), 2)]
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn normalized_rejects_zero_bandwidth() {
        let _ = report(1, &[1]).normalized_rounds(0);
    }

    #[test]
    fn percentiles_exact_while_uncoarsened() {
        let p = LoadProfile::from_loads(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(p.granularity(), 1);
        assert_eq!(p.percentile(0.0), 1);
        assert_eq!(p.percentile(0.5), 5);
        assert_eq!(p.percentile(1.0), 10);
        assert_eq!(LoadProfile::new().percentile(0.5), 0);
    }

    #[test]
    fn coarsening_caps_buckets_and_stays_conservative() {
        let loads: Vec<u64> = (0..4096).collect();
        let p = LoadProfile::from_loads(&loads);
        assert!(p.granularity() > 1, "4096 distinct values must coarsen");
        assert_eq!(p.rounds(), 4096);
        assert_eq!(p.max(), 4095, "max is exact despite coarsening");
        // Normalized rounds over-approximate but never under-approximate.
        let exact: u64 = loads.iter().map(|&l| l.div_ceil(32).max(1)).sum();
        let approx = p.normalized_rounds(32);
        assert!(approx >= exact);
        // Within one bucket width per round.
        assert!(approx <= exact + p.granularity().div_ceil(32) * p.rounds());
        // Percentiles are clamped to the true max.
        assert!(p.percentile(1.0) <= p.max());
    }

    #[test]
    fn merge_aligns_granularities() {
        let mut fine = LoadProfile::from_loads(&[1, 2, 3]);
        let coarse = LoadProfile::from_loads(&(0..2000).collect::<Vec<u64>>());
        let g = coarse.granularity();
        fine.merge(&coarse);
        assert_eq!(fine.rounds(), 2003);
        assert!(fine.granularity() >= g);
        assert_eq!(fine.max(), 1999);
    }

    /// Satellite: merge-order symmetry, asserted directly. The sharded
    /// engine folds per-worker accumulators in worker order while the
    /// legacy engines folded per-round — identical totals requires these
    /// merges to be commutative.
    #[test]
    fn load_profile_merge_is_commutative() {
        let samples: [&[u64]; 4] = [
            &[1, 2, 3],
            &[0, 0, 7, 1 << 40],
            &[],
            // A coarsened profile (past MAX_BUCKETS distinct values).
            &[9; 1],
        ];
        let coarse = LoadProfile::from_loads(&(0..2000).collect::<Vec<u64>>());
        let mut profiles: Vec<LoadProfile> = samples
            .iter()
            .map(|loads| LoadProfile::from_loads(loads))
            .collect();
        profiles.push(coarse);
        for a in &profiles {
            for b in &profiles {
                let mut ab = a.clone();
                ab.merge(b);
                let mut ba = b.clone();
                ba.merge(a);
                assert_eq!(ab, ba, "merge({a:?}, {b:?})");
            }
        }
    }

    /// Associativity of the histogram fold (below the coarsening cap,
    /// where the engines always operate): worker grouping cannot change
    /// the aggregate.
    #[test]
    fn load_profile_merge_is_associative() {
        let a = LoadProfile::from_loads(&[1, 5, 5]);
        let b = LoadProfile::from_loads(&[2, 64]);
        let c = LoadProfile::from_loads(&[0, 3, 1000]);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    /// FaultCounters merge in any order and grouping (plain sums).
    #[test]
    fn fault_counters_merge_is_commutative_and_associative() {
        let mk = |d, l, u, t, m, c| FaultCounters {
            dropped: d,
            delayed: l,
            duplicated: u,
            truncated: t,
            misrouted: m,
            crashes: c,
        };
        let a = mk(1, 2, 3, 4, 5, 6);
        let b = mk(10, 0, 7, 0, 2, 1);
        let c = mk(0, 100, 0, 1, 0, 0);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut left = ab;
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
    }

    /// `absorb` composes sequentially, but every commutative field must
    /// come out order-independent; only `rounds`-style concatenation may
    /// depend on order (and then only through the edge-load histogram's
    /// round ordering, which the histogram erases).
    #[test]
    fn absorb_is_order_independent() {
        let mut a = report(2, &[5, 6]);
        a.faults.dropped = 3;
        a.starved = vec![1, 4];
        let mut b = report(3, &[7, 8, 9]);
        b.faults.delayed = 2;
        b.starved = vec![2, 4, 9];
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba, "absorb must be symmetric field by field");
    }

    /// The starved-union merge handles duplicates, subsets, and empties.
    #[test]
    fn merge_sorted_ids_unions_and_dedups() {
        assert_eq!(merge_sorted_ids(&[], &[]), Vec::<NodeId>::new());
        assert_eq!(merge_sorted_ids(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(merge_sorted_ids(&[], &[3]), vec![3]);
        assert_eq!(merge_sorted_ids(&[1, 3, 5], &[1, 3, 5]), vec![1, 3, 5]);
        assert_eq!(merge_sorted_ids(&[1, 5], &[2, 3, 4]), vec![1, 2, 3, 4, 5]);
        assert_eq!(merge_sorted_ids(&[0, 2, 2], &[2, 7]), vec![0, 2, 2, 7]);
    }
}
