//! Run statistics: rounds, messages, bits, and bandwidth-normalized rounds.

/// Statistics of one engine run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Rounds executed (a round in which nobody sends still counts if a
    /// node was not done).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits carried over all edges and rounds.
    pub total_bits: u64,
    /// For each round, the maximum bits carried by any directed edge.
    pub max_edge_bits_per_round: Vec<u64>,
    /// Whether every node reported done before the round cap.
    pub completed: bool,
}

impl RunReport {
    /// Largest per-edge per-round load seen anywhere in the run.
    pub fn max_edge_bits(&self) -> u64 {
        self.max_edge_bits_per_round
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Bandwidth-normalized round count `Σ_r ⌈max_edge_bits(r)/bandwidth⌉`
    /// (counting at least 1 per executed round): the number of rounds the
    /// run would take if every round's traffic had to be serialized into
    /// `bandwidth`-bit messages. This is the figure of merit that exposes
    /// LOCAL-style protocols' congestion cost.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    pub fn normalized_rounds(&self, bandwidth: u64) -> u64 {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.max_edge_bits_per_round
            .iter()
            .map(|&b| b.div_ceil(bandwidth).max(1))
            .sum()
    }

    /// Fold another report into this one (sequential composition of
    /// protocol passes).
    pub fn absorb(&mut self, other: &RunReport) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_edge_bits_per_round
            .extend_from_slice(&other.max_edge_bits_per_round);
        self.completed &= other.completed;
    }
}

/// Accumulates reports across the named passes of a multi-pass pipeline
/// (e.g. the D1LC pipeline runs ACD, slack generation, SlackColor, … as
/// separate engine passes whose rounds add up).
#[derive(Clone, Debug, Default)]
pub struct PassLog {
    passes: Vec<(String, RunReport)>,
}

impl PassLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a pass.
    pub fn record(&mut self, name: impl Into<String>, report: RunReport) {
        self.passes.push((name.into(), report));
    }

    /// All recorded passes in order.
    pub fn passes(&self) -> &[(String, RunReport)] {
        &self.passes
    }

    /// Total rounds across passes.
    pub fn total_rounds(&self) -> u64 {
        self.passes.iter().map(|(_, r)| r.rounds).sum()
    }

    /// Total messages across passes.
    pub fn total_messages(&self) -> u64 {
        self.passes.iter().map(|(_, r)| r.messages).sum()
    }

    /// Total bits across passes.
    pub fn total_bits(&self) -> u64 {
        self.passes.iter().map(|(_, r)| r.total_bits).sum()
    }

    /// Largest per-edge per-round load across passes.
    pub fn max_edge_bits(&self) -> u64 {
        self.passes
            .iter()
            .map(|(_, r)| r.max_edge_bits())
            .max()
            .unwrap_or(0)
    }

    /// Total bandwidth-normalized rounds across passes.
    pub fn normalized_rounds(&self, bandwidth: u64) -> u64 {
        self.passes
            .iter()
            .map(|(_, r)| r.normalized_rounds(bandwidth))
            .sum()
    }

    /// Merge another log's passes after this one's.
    pub fn extend(&mut self, other: PassLog) {
        self.passes.extend(other.passes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rounds: u64, loads: &[u64]) -> RunReport {
        RunReport {
            rounds,
            messages: 10,
            total_bits: loads.iter().sum(),
            max_edge_bits_per_round: loads.to_vec(),
            completed: true,
        }
    }

    #[test]
    fn normalized_rounds_ceil() {
        let r = report(3, &[10, 65, 0]);
        // With B = 32: ceil(10/32)=1, ceil(65/32)=3, max(0,1)=1 → 5.
        assert_eq!(r.normalized_rounds(32), 5);
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = report(2, &[5, 6]);
        let b = report(3, &[7, 8, 9]);
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.max_edge_bits_per_round, vec![5, 6, 7, 8, 9]);
        assert_eq!(a.max_edge_bits(), 9);
    }

    #[test]
    fn pass_log_totals() {
        let mut log = PassLog::new();
        log.record("acd", report(4, &[10, 10, 10, 10]));
        log.record("slack", report(1, &[100]));
        assert_eq!(log.total_rounds(), 5);
        assert_eq!(log.max_edge_bits(), 100);
        assert_eq!(log.normalized_rounds(32), 4 + 4);
        assert_eq!(log.passes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn normalized_rejects_zero_bandwidth() {
        let _ = report(1, &[1]).normalized_rounds(0);
    }
}
