//! Asynchronous execution under hostile schedules: deterministic
//! schedule adversaries and the α-synchronizer's virtual pulse clocks.
//!
//! The CONGEST engines in this crate execute perfectly lock-step
//! synchronous rounds. Real deployments do not: nodes step at different
//! rates and links hold messages for unbounded-but-finite spans, so a
//! correct asynchronous execution needs a *synchronizer* — here the
//! classic α-synchronizer: every bundle carries its sender's round tag,
//! every node emits an explicit empty-round pulse on edges it stays
//! silent on, and a node advances to round `r + 1` only once it has
//! absorbed round-`r` traffic (or the pulse) from every **live**
//! neighbor.
//!
//! Because the α-synchronizer is correctness-preserving, the adversary
//! controls only *when* things happen, never *what* is computed: the
//! synchronized transcript is byte-identical to the synchronous engine
//! under any [`SchedulePlan`] — the headline invariant the differential
//! batteries in `tests/prop_invariants.rs` pin. The engine therefore
//! models the adversary as deterministic **virtual pulse clocks** layered
//! on the synchronous round structure: `P[v][r]` is the virtual pulse at
//! which node `v` enters round `r`, advanced by the recursion
//!
//! ```text
//! P[v][0] = start_skew(v)
//! P[v][r] = burst(r) + max( P[v][r-1] + 1,
//!                           max over live in-neighbors u of
//!                               P[u][r-1] + 1 + skew(u→v, r-1) )
//! ```
//!
//! where `skew` folds the per-bundle jitter, per-node straggler, and
//! per-edge anti-FIFO adversaries, and `burst(r)` stalls the whole
//! network. Every fate is a stateless counter hash of
//! `(pass seed, plan salt, coordinates)` — exactly the [`FaultPlan`]
//! discipline — so a schedule is byte-identical across every
//! shard/thread/engine geometry, and never depends on message *content*:
//! timing is a pure function of the hashes, the crash fates, and the
//! graph.
//!
//! Crash composition: a neighbor that is down at the delivery round
//! (the same [`FaultState::is_down`] query the holdback queue consults)
//! emits no pulse and is excluded from the gate, so a crashed neighbor
//! can never deadlock the synchronizer — the liveness half of the
//! argument in DESIGN.md §11. The watchdog half: when an adversary wedges
//! a node past the plan's [`patience`](SchedulePlan::patience), the run
//! fails loud with the non-transient
//! [`SimError::ScheduleStalled`](crate::SimError::ScheduleStalled) —
//! never silently wrong, never silently late.
//!
//! [`FaultPlan`]: crate::FaultPlan
//! [`FaultState::is_down`]: crate::fault::FaultState::is_down

use crate::error::SimError;
use crate::fault::FaultState;
use crate::message::Message;
use crate::plane::PlaneCell;
use graphs::{Graph, NodeId};
use prand::mix::{bounded, mix2, mix3};

/// Fixed-point probability denominator, as in `fault.rs`: `q / 65536`.
const Q_ONE: u32 = 1 << 16;

/// Bits of one α-synchronizer pulse on one directed edge per simulated
/// round: a `u64` round tag (bundles piggyback it; silent edges carry it
/// as the explicit empty-round pulse).
pub const PULSE_TAG_BITS: u64 = 64;

/// Domain-separation tags for the schedule decision streams (disjoint
/// from the `0xFA17_*` fault streams).
const STREAM_SCHED: u64 = 0x5CED_0001;
const STREAM_SCHED_START: u64 = 0x5CED_0002;
const STREAM_SCHED_JITTER: u64 = 0x5CED_0003;
const STREAM_SCHED_STRAGGLER: u64 = 0x5CED_0004;
const STREAM_SCHED_EDGE: u64 = 0x5CED_0005;
const STREAM_SCHED_BURST: u64 = 0x5CED_0006;

/// A deterministic, seeded schedule adversary.
///
/// Probabilities are fixed-point with denominator 65536 (`q / 65536`),
/// so the plan stays `Copy + Eq + Hash` and rides inside
/// [`SimConfig`](crate::SimConfig) — and therefore inside a solve's memo
/// key — exactly like [`FaultPlan`](crate::FaultPlan). The default plan
/// is [`SchedulePlan::none`]: with it, the engines take their
/// synchronous fast paths untouched, bit for bit.
///
/// Any adversarial schedule is exactly reproducible from
/// `(pass seed, plan)`: the plan carries its own
/// [`salt`](SchedulePlan::salt) so retry layers can re-roll the schedule
/// stream while leaving protocol randomness untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SchedulePlan {
    /// Probability (`/65536`) that a bundle's delivery jitters by an
    /// extra `1..=max_jitter` pulses — the random-interleaving adversary.
    pub jitter_q: u32,
    /// Largest possible jitter, in pulses (treated as 1 when 0 but
    /// `jitter_q > 0`).
    pub max_jitter: u32,
    /// Probability (`/65536`), per node, that the node is a straggler:
    /// every bundle it sends arrives `straggler_lag` pulses late. A
    /// per-node fate — the same nodes straggle in every geometry.
    pub straggler_q: u32,
    /// Fixed lag of a straggler's sends, in pulses.
    pub straggler_lag: u32,
    /// Probability (`/65536`), per directed edge, that the edge delivers
    /// anti-FIFO: within windows of `antififo_window` rounds its skew
    /// *descends* twice as fast as rounds ascend, so later sends overtake
    /// earlier ones and arrivals invert.
    pub antififo_q: u32,
    /// Anti-FIFO window length, in rounds (treated as 2 when < 2 but
    /// `antififo_q > 0`).
    pub antififo_window: u32,
    /// Probability (`/65536`), per round, that the whole network stalls
    /// for an extra `1..=max_burst` pulses before anyone advances.
    pub burst_q: u32,
    /// Largest possible burst stall, in pulses (treated as 1 when 0 but
    /// `burst_q > 0`).
    pub max_burst: u32,
    /// Initial clock skew: node `v` starts round 0 at a virtual pulse
    /// drawn uniformly from `0..=start_spread`.
    pub start_spread: u32,
    /// Progress watchdog, in pulses: if any node waits more than this
    /// many pulses between consecutive rounds, the run fails with
    /// [`SimError::ScheduleStalled`](crate::SimError::ScheduleStalled).
    /// `0` disables the watchdog.
    pub patience: u32,
    /// Extra entropy mixed into every decision. Same `(seed, plan)` ⇒
    /// same schedule; bumping the salt re-rolls the schedule stream
    /// without touching protocol randomness.
    pub salt: u64,
}

impl Default for SchedulePlan {
    fn default() -> Self {
        SchedulePlan::none()
    }
}

impl SchedulePlan {
    /// The `q` value meaning "always" (probability 1).
    pub const ALWAYS: u32 = Q_ONE;

    /// The synchronous plan: every engine ignores the schedule layer
    /// entirely and runs its unmodified lock-step path.
    pub fn none() -> Self {
        SchedulePlan {
            jitter_q: 0,
            max_jitter: 0,
            straggler_q: 0,
            straggler_lag: 0,
            antififo_q: 0,
            antififo_window: 0,
            burst_q: 0,
            max_burst: 0,
            start_spread: 0,
            patience: 0,
            salt: 0,
        }
    }

    /// Quantize a probability in `[0, 1]` to the fixed-point `q` scale.
    pub fn quantize(rate: f64) -> u32 {
        let q = (rate.clamp(0.0, 1.0) * f64::from(Q_ONE)).round();
        (q as u32).min(Q_ONE)
    }

    /// A random-interleaving adversary: each bundle's delivery jitters
    /// by `1..=max_jitter` extra pulses with probability `rate`.
    pub fn jittery(rate: f64, max_jitter: u32) -> Self {
        SchedulePlan {
            jitter_q: Self::quantize(rate),
            max_jitter,
            ..SchedulePlan::none()
        }
    }

    /// Add straggler nodes: each node is, with probability `rate`, a
    /// straggler whose every send arrives `lag` pulses late.
    #[must_use]
    pub fn with_stragglers(mut self, rate: f64, lag: u32) -> Self {
        self.straggler_q = Self::quantize(rate);
        self.straggler_lag = lag;
        self
    }

    /// Add anti-FIFO edges: each directed edge is, with probability
    /// `rate`, adversarial — within windows of `window` rounds it
    /// delivers later sends before earlier ones.
    #[must_use]
    pub fn with_antififo(mut self, rate: f64, window: u32) -> Self {
        self.antififo_q = Self::quantize(rate);
        self.antififo_window = window;
        self
    }

    /// Add burst stalls: each round, with probability `rate`, the whole
    /// network freezes for an extra `1..=max_burst` pulses.
    #[must_use]
    pub fn with_bursts(mut self, rate: f64, max_burst: u32) -> Self {
        self.burst_q = Self::quantize(rate);
        self.max_burst = max_burst;
        self
    }

    /// Add initial clock skew: node starts are spread uniformly over
    /// `0..=spread` pulses.
    #[must_use]
    pub fn with_start_spread(mut self, spread: u32) -> Self {
        self.start_spread = spread;
        self
    }

    /// Arm the progress watchdog: a node waiting more than `patience`
    /// pulses between consecutive rounds fails the run with
    /// [`SimError::ScheduleStalled`](crate::SimError::ScheduleStalled).
    #[must_use]
    pub fn with_patience(mut self, patience: u32) -> Self {
        self.patience = patience;
        self
    }

    /// The same plan with `extra` folded into the salt — a different but
    /// equally deterministic schedule stream.
    #[must_use]
    pub fn resalted(mut self, extra: u64) -> Self {
        self.salt = self.salt.wrapping_add(extra);
        self
    }

    /// Whether this plan perturbs timing at all. `false` means the
    /// engines skip the synchronizer completely (the zero-overhead
    /// guarantee: a `SchedulePlan::none()` run is bit-for-bit the
    /// synchronous engine, counters and all).
    pub fn is_active(&self) -> bool {
        (self.jitter_q | self.straggler_q | self.antififo_q | self.burst_q | self.start_spread) > 0
    }
}

/// Per-run α-synchronizer overhead counters, surfaced through
/// [`RunReport`](crate::RunReport). All zero when
/// [`SchedulePlan::none`] leaves the synchronizer off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleCounters {
    /// Virtual makespan: the pulse at which the last node completed its
    /// last round. The synchronous engine would take exactly `rounds`
    /// pulses; the ratio `pulses / rounds` is the adversary's slowdown.
    pub pulses: u64,
    /// Largest wait any node endured between consecutive rounds, in
    /// pulses (0 under a lock-step schedule).
    pub max_wait: u64,
    /// Arrival inversions observed: per-in-edge instances of a bundle
    /// arriving at an earlier virtual pulse than its predecessor — the
    /// anti-FIFO adversary's signature.
    pub reordered: u64,
    /// Synchronizer traffic: round-tag/empty-round-pulse bits carried on
    /// every directed edge, every simulated round
    /// (`rounds × directed edges ×` [`PULSE_TAG_BITS`]).
    pub sync_bits: u64,
}

impl ScheduleCounters {
    /// Whether any synchronizer work was counted.
    pub fn any(&self) -> bool {
        *self != ScheduleCounters::default()
    }

    /// Fold another run's counters into this one (sequential composition
    /// of passes): pulses, inversions, and sync bits add; the worst wait
    /// is the max. Commutative, so pass logs merge order-independently.
    pub fn merge(&mut self, other: &ScheduleCounters) {
        self.pulses += other.pulses;
        self.max_wait = self.max_wait.max(other.max_wait);
        self.reordered += other.reordered;
        self.sync_bits += other.sync_bits;
    }
}

/// Per-run synchronizer state: the decision keys plus the virtual pulse
/// clocks. Built once per engine run when the plan
/// [`is_active`](SchedulePlan::is_active); its absence *is* the
/// synchronous fast path.
///
/// Concurrency: the clock arrays are double-buffered by round parity —
/// round `r`'s advancement writes parity `r & 1` of its owner's range
/// and reads only parity `(r - 1) & 1`, written one routing phase (two
/// barriers) earlier — and `last_arr`/`wait_max`/`reordered` are keyed
/// by receiver-side CSR edge id / receiver id, so routing workers touch
/// only cells of their own disjoint receiver ranges: exactly the
/// [`PlaneCell`] protocol of the slot arrays (see `crate::plane`).
pub(crate) struct ScheduleState {
    plan: SchedulePlan,
    /// Start-skew key: `mix2(mix3(seed, salt, STREAM_SCHED), START)`.
    start_key: u64,
    /// Per-bundle jitter key (its own stream).
    jitter_key: u64,
    /// Per-node straggler key.
    straggler_key: u64,
    /// Per-edge anti-FIFO key.
    edge_key: u64,
    /// Per-round burst key.
    burst_key: u64,
    /// Virtual pulse clocks, double-buffered by round parity:
    /// `clock[r & 1][v]` holds `P[v][r]` while round `r + 1` still reads
    /// `P[v][r]` from the other buffer.
    clock: [Vec<PlaneCell<u64>>; 2],
    /// Per receiver-side directed-edge id: virtual arrival pulse of the
    /// edge's most recent bundle, for counting anti-FIFO inversions
    /// (0 = nothing arrived yet; real arrivals are ≥ 1).
    last_arr: Vec<PlaneCell<u64>>,
    /// Per node: worst wait between consecutive rounds, in pulses.
    wait_max: Vec<PlaneCell<u64>>,
    /// Per node: arrival inversions observed on its in-edges.
    reordered: Vec<PlaneCell<u64>>,
}

impl ScheduleState {
    /// Synchronizer state for one run of `graph` under `plan`, keyed by
    /// the run's pass seed.
    pub(crate) fn new(plan: SchedulePlan, seed: u64, graph: &Graph) -> Self {
        let key = mix3(seed, plan.salt, STREAM_SCHED);
        let n = graph.n();
        let m = graph.adjacency().len();
        ScheduleState {
            plan,
            start_key: mix2(key, STREAM_SCHED_START),
            jitter_key: mix2(key, STREAM_SCHED_JITTER),
            straggler_key: mix2(key, STREAM_SCHED_STRAGGLER),
            edge_key: mix2(key, STREAM_SCHED_EDGE),
            burst_key: mix2(key, STREAM_SCHED_BURST),
            clock: [
                (0..n).map(|_| PlaneCell::new(0)).collect(),
                (0..n).map(|_| PlaneCell::new(0)).collect(),
            ],
            last_arr: (0..m).map(|_| PlaneCell::new(0)).collect(),
            wait_max: (0..n).map(|_| PlaneCell::new(0)).collect(),
            reordered: (0..n).map(|_| PlaneCell::new(0)).collect(),
        }
    }

    /// Node `v`'s initial clock skew, in `0..=start_spread` pulses.
    pub(crate) fn start_skew(&self, v: usize) -> u64 {
        if self.plan.start_spread == 0 {
            return 0;
        }
        bounded(
            mix2(self.start_key, v as u64),
            u64::from(self.plan.start_spread) + 1,
        )
    }

    /// The extra pulses the whole network stalls before advancing past
    /// round `round` (0 unless the burst fate fires).
    pub(crate) fn burst(&self, round: u64) -> u64 {
        if self.plan.burst_q == 0 {
            return 0;
        }
        let h = mix2(self.burst_key, round);
        if (h & 0xFFFF) < u64::from(self.plan.burst_q) {
            1 + bounded(
                mix2(h, STREAM_SCHED_BURST),
                u64::from(self.plan.max_burst.max(1)),
            )
        } else {
            0
        }
    }

    /// The delivery skew of the bundle (or empty-round pulse)
    /// `(u → v, round)`, in pulses past the lock-step arrival — a pure
    /// function of the keys and those coordinates, never of message
    /// content or engine geometry. Folds the jitter, straggler, and
    /// anti-FIFO adversaries.
    pub(crate) fn skew(&self, u: NodeId, v: NodeId, round: u64) -> u64 {
        let edge = (u64::from(u) << 32) | u64::from(v);
        let mut skew = 0u64;
        if self.plan.jitter_q > 0 {
            let h = mix3(self.jitter_key, edge, round);
            if (h & 0xFFFF) < u64::from(self.plan.jitter_q) {
                skew += 1 + bounded(
                    mix2(h, STREAM_SCHED_JITTER),
                    u64::from(self.plan.max_jitter.max(1)),
                );
            }
        }
        if self.plan.straggler_q > 0 {
            let h = mix2(self.straggler_key, u64::from(u));
            if (h & 0xFFFF) < u64::from(self.plan.straggler_q) {
                skew += u64::from(self.plan.straggler_lag);
            }
        }
        if self.plan.antififo_q > 0 {
            let h = mix2(self.edge_key, edge);
            if (h & 0xFFFF) < u64::from(self.plan.antififo_q) {
                // Descending twice as fast as rounds ascend: arrivals
                // within one window strictly invert (send round r lands
                // one pulse *after* send round r + 1).
                let w = u64::from(self.plan.antififo_window.max(2));
                skew += 2 * (w - 1 - round % w);
            }
        }
        skew
    }

    /// Advance the virtual pulse clocks of every node in `lo..hi` for
    /// `round`, returning the first watchdog violation (lowest node id in
    /// the range). Called by the range's **routing-phase owner** — over
    /// all owned nodes, frontier or not, so a clock sequence is a pure
    /// function of `(keys, crash fates, graph, round)` whatever the
    /// shard/thread geometry. Cross-shard clock reads touch only the
    /// previous round's parity buffer (written one routing phase — two
    /// barriers — earlier) and the crash cells routing already reads;
    /// everything written is owner-exclusive.
    ///
    /// A neighbor that is down at `round` (the same
    /// [`FaultState::is_down`] query the holdback queue uses for its
    /// crash-drops) emits no pulse and never gates the advancement — the
    /// liveness half of the crash-composition argument (DESIGN.md §11).
    pub(crate) fn advance_clocks<M: Message>(
        &self,
        graph: &Graph,
        fault: Option<&FaultState<M>>,
        lo: usize,
        hi: usize,
        round: u64,
    ) -> Option<SimError> {
        let offsets = graph.offsets();
        let adj = graph.adjacency();
        let crashes = fault.filter(|f| f.has_crashes());
        let write = (round & 1) as usize;
        let mut stalled = None;
        if round == 0 {
            for v in lo..hi {
                // SAFETY: owner-exclusive cell during the routing phase
                // (the same exclusivity routing's slot writes rely on).
                unsafe { *self.clock[0][v].get() = self.start_skew(v) };
            }
            return None;
        }
        let read = write ^ 1;
        let burst = self.burst(round);
        let sent = round - 1;
        for v in lo..hi {
            // SAFETY: previous-parity cells were last written one routing
            // phase (two barriers) ago; current-parity and per-receiver
            // cells are owner-exclusive (see the struct docs).
            let prev = unsafe { *self.clock[read][v].get() };
            let mut next = prev + 1;
            let v_down = crashes.is_some_and(|f| f.is_down(v, round));
            for (e, &u) in (offsets[v]..offsets[v + 1]).zip(&adj[offsets[v]..offsets[v + 1]]) {
                if crashes.is_some_and(|f| f.is_down(u as usize, round)) {
                    continue; // a down neighbor emits no pulse
                }
                // SAFETY: previous-parity read (see above).
                let up = unsafe { *self.clock[read][u as usize].get() };
                let arrive = up + 1 + self.skew(u, v as NodeId, sent);
                // SAFETY: receiver-owned cells (see above).
                unsafe {
                    let last = &mut *self.last_arr[e].get();
                    if *last > 0 && arrive < *last {
                        *self.reordered[v].get() += 1;
                    }
                    *last = arrive;
                }
                // A down receiver's clock still advances (the
                // synchronizer keeps pulsing on its behalf), but its
                // dropped deliveries never gate it.
                if !v_down {
                    next = next.max(arrive);
                }
            }
            next += burst;
            let wait = next - prev - 1;
            // SAFETY: receiver-owned cell (see above).
            unsafe {
                let w = &mut *self.wait_max[v].get();
                *w = (*w).max(wait);
            }
            if self.plan.patience > 0 && wait > u64::from(self.plan.patience) && stalled.is_none() {
                stalled = Some(SimError::ScheduleStalled {
                    node: v as NodeId,
                    round,
                    waited: wait,
                });
            }
            // SAFETY: owner-exclusive current-parity cell (see above).
            unsafe { *self.clock[write][v].get() = next };
        }
        stalled
    }

    /// Assemble the run's overhead counters — coordinator-only, after
    /// the last phase barrier, over a run that executed `rounds` rounds.
    pub(crate) fn collect(&self, rounds: u64, graph: &Graph) -> ScheduleCounters {
        if rounds == 0 {
            return ScheduleCounters::default();
        }
        let parity = ((rounds - 1) & 1) as usize;
        // SAFETY: coordinator-only reads after every routing worker has
        // passed its last phase barrier.
        let makespan = self.clock[parity]
            .iter()
            .map(|cell| unsafe { *cell.get() })
            .max()
            .unwrap_or(0);
        ScheduleCounters {
            // +1: the last round's own compute/delivery pulse.
            pulses: makespan + 1,
            max_wait: self
                .wait_max
                .iter()
                .map(|cell| unsafe { *cell.get() })
                .max()
                .unwrap_or(0),
            reordered: self
                .reordered
                .iter()
                .map(|cell| unsafe { *cell.get() })
                .sum(),
            sync_bits: rounds * graph.adjacency().len() as u64 * PULSE_TAG_BITS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::min_flood_programs;
    use crate::engine::SimConfig;
    use crate::session::Session;
    use crate::FaultPlan;
    use graphs::gen;

    #[test]
    fn quantize_clamps_and_scales() {
        assert_eq!(SchedulePlan::quantize(0.0), 0);
        assert_eq!(SchedulePlan::quantize(1.0), SchedulePlan::ALWAYS);
        assert_eq!(SchedulePlan::quantize(2.0), SchedulePlan::ALWAYS);
        assert_eq!(SchedulePlan::quantize(-1.0), 0);
        let half = SchedulePlan::quantize(0.5);
        assert!((half as i64 - (Q_ONE / 2) as i64).abs() <= 1);
    }

    #[test]
    fn none_is_inactive_and_default() {
        assert!(!SchedulePlan::none().is_active());
        assert_eq!(SchedulePlan::default(), SchedulePlan::none());
        // The watchdog alone perturbs nothing, so it activates nothing.
        assert!(!SchedulePlan::none().with_patience(4).is_active());
        for plan in [
            SchedulePlan::jittery(0.2, 3),
            SchedulePlan::none().with_stragglers(0.1, 5),
            SchedulePlan::none().with_antififo(0.3, 4),
            SchedulePlan::none().with_bursts(0.05, 8),
            SchedulePlan::none().with_start_spread(3),
        ] {
            assert!(plan.is_active(), "{plan:?} should be active");
        }
    }

    /// Fates are deterministic functions of their coordinates, extremes
    /// are certain, and re-salting changes the stream.
    #[test]
    fn fates_are_deterministic_and_extremes_are_certain() {
        let g = gen::gnp(40, 0.2, 3);
        let plan = SchedulePlan::jittery(1.0, 4)
            .with_stragglers(1.0, 7)
            .with_bursts(1.0, 2)
            .with_start_spread(5);
        let a = ScheduleState::new(plan, 99, &g);
        let b = ScheduleState::new(plan, 99, &g);
        for v in 0..g.n() {
            assert_eq!(a.start_skew(v), b.start_skew(v));
            assert!(a.start_skew(v) <= 5);
        }
        for round in 0..20u64 {
            assert_eq!(a.burst(round), b.burst(round));
            assert!((1..=2).contains(&a.burst(round)), "burst always fires");
            let s = a.skew(3, 5, round);
            assert_eq!(s, b.skew(3, 5, round));
            // Certain jitter (1..=4) + certain straggler lag (7).
            assert!((8..=11).contains(&s), "skew {s} out of range");
        }
        let zero = ScheduleState::new(SchedulePlan::jittery(0.0, 4), 99, &g);
        assert_eq!(zero.skew(3, 5, 0), 0);
        assert_eq!(zero.burst(0), 0);
        assert_eq!(zero.start_skew(0), 0);
        let resalted = ScheduleState::new(plan.resalted(1), 99, &g);
        let differs = (0..64u64).any(|r| resalted.skew(3, 5, r) != a.skew(3, 5, r));
        assert!(differs, "re-salting must re-roll the stream");
    }

    /// An always-on anti-FIFO edge inverts arrivals within every window:
    /// consecutive send rounds arrive in descending pulse order.
    #[test]
    fn antififo_skew_inverts_within_windows() {
        let g = gen::cycle(8);
        let plan = SchedulePlan::none().with_antififo(1.0, 4);
        let s = ScheduleState::new(plan, 7, &g);
        for r in 0..16u64 {
            if (r % 4) == 3 {
                continue; // window boundary
            }
            // Lock-step sender clocks: P[u][r] = r, arrival = r + 1 + skew.
            let a_r = r + 1 + s.skew(1, 2, r);
            let a_next = (r + 1) + 1 + s.skew(1, 2, r + 1);
            assert!(
                a_next < a_r,
                "round {} arrival {a_r} should overtake round {} arrival {a_next}",
                r + 1,
                r
            );
        }
    }

    /// The same schedule plan yields byte-identical runs across every
    /// shard × thread geometry, and `SchedulePlan::none()` is bit-for-bit
    /// the synchronous engine.
    #[test]
    fn schedule_fates_are_shard_invariant() {
        let g = gen::gnp(300, 0.03, 11);
        let plan = SchedulePlan::jittery(0.3, 3)
            .with_stragglers(0.1, 4)
            .with_antififo(0.2, 4)
            .with_start_spread(3);
        let base = SimConfig::default();
        let mut anchor = None;
        for shards in [0usize, 1, 4, 8] {
            for threads in [1usize, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    sched: plan,
                    ..base
                };
                let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
                let mut programs = min_flood_programs(300);
                let report = session.run(&mut programs, 42).expect("run");
                assert!(report.sched.any(), "active plan must count overhead");
                let mins: Vec<u32> = programs.iter().map(|p| p.min).collect();
                let got = (report, mins);
                match &anchor {
                    None => anchor = Some(got),
                    Some(a) => assert_eq!(
                        *a, got,
                        "schedule diverged at shards={shards} threads={threads}"
                    ),
                }
            }
        }
        // Transcript identity vs the synchronous engine: same programs,
        // same rounds, only the sched counters differ.
        let (sched_report, sched_mins) = anchor.unwrap();
        let mut sync_session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, base);
        let mut programs = min_flood_programs(300);
        let sync_report = sync_session.run(&mut programs, 42).expect("run");
        let sync_mins: Vec<u32> = programs.iter().map(|p| p.min).collect();
        assert_eq!(sched_mins, sync_mins);
        assert_eq!(
            RunReportNoSched(&sched_report),
            RunReportNoSched(&sync_report)
        );
        assert!(!sync_report.sched.any());
    }

    /// Equality helper: a run report with the synchronizer counters
    /// masked out (they are *meant* to differ from the synchronous run).
    struct RunReportNoSched<'a>(&'a crate::RunReport);
    impl PartialEq for RunReportNoSched<'_> {
        fn eq(&self, other: &Self) -> bool {
            let mut a = self.0.clone();
            let mut b = other.0.clone();
            a.sched = ScheduleCounters::default();
            b.sched = ScheduleCounters::default();
            a == b
        }
    }
    impl std::fmt::Debug for RunReportNoSched<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.fmt(f)
        }
    }

    /// A burst beyond the watchdog's patience wedges the run with
    /// `ScheduleStalled`, deterministically across geometries; raising
    /// the patience above the worst stall lets the same plan complete.
    #[test]
    fn watchdog_trips_on_wedged_schedules() {
        let g = gen::gnp(300, 0.03, 11);
        let wedged = SchedulePlan::none().with_bursts(1.0, 6).with_patience(2);
        let mut first = None;
        for shards in [0usize, 4, 8] {
            for threads in [1usize, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    sched: wedged,
                    ..SimConfig::default()
                };
                let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
                let mut programs = min_flood_programs(300);
                let err = session
                    .run(&mut programs, 42)
                    .expect_err("a wedged schedule must fail loud");
                assert!(
                    matches!(err, SimError::ScheduleStalled { .. }),
                    "unexpected error {err}"
                );
                assert!(!err.is_transient(), "stalls are deterministic");
                match &first {
                    None => first = Some(err),
                    Some(f) => assert_eq!(
                        *f, err,
                        "stall selection diverged at shards={shards} threads={threads}"
                    ),
                }
            }
        }
        // The same adversary under a patient watchdog completes.
        let patient = SchedulePlan::none().with_bursts(1.0, 6).with_patience(16);
        let cfg = SimConfig {
            sched: patient,
            ..SimConfig::default()
        };
        let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
        let mut programs = min_flood_programs(300);
        let report = session.run(&mut programs, 42).expect("patient run");
        assert!(report.completed);
        assert!(report.sched.max_wait >= 1);
    }

    /// Schedules compose with crash fates without deadlock: a crashed
    /// neighbor never gates the synchronizer, and the composed run stays
    /// byte-identical across geometries.
    #[test]
    fn crashed_neighbors_never_gate_the_clocks() {
        let g = gen::gnp(300, 0.03, 11);
        let plan = SchedulePlan::jittery(0.3, 3).with_patience(64);
        let fault = FaultPlan::none().with_crashes(0.01, 0);
        let mut anchor = None;
        for shards in [0usize, 4, 8] {
            for threads in [1usize, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    sched: plan,
                    fault,
                    ..SimConfig::default()
                };
                let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
                let mut programs = min_flood_programs(300);
                let report = session.run(&mut programs, 42).expect("composed run");
                assert!(!report.crashed.is_empty(), "want real crashes in play");
                let mins: Vec<u32> = programs.iter().map(|p| p.min).collect();
                let got = (report, mins);
                match &anchor {
                    None => anchor = Some(got),
                    Some(a) => assert_eq!(
                        *a, got,
                        "composition diverged at shards={shards} threads={threads}"
                    ),
                }
            }
        }
    }

    /// Counter merge is the documented sequential composition and is
    /// commutative in the fields where `absorb` needs it to be.
    #[test]
    fn counters_merge_like_the_docs_say() {
        let a = ScheduleCounters {
            pulses: 10,
            max_wait: 3,
            reordered: 2,
            sync_bits: 640,
        };
        let b = ScheduleCounters {
            pulses: 4,
            max_wait: 5,
            reordered: 1,
            sync_bits: 64,
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.pulses, 14);
        assert_eq!(ab.max_wait, 5);
        assert_eq!(ab.reordered, 3);
        assert_eq!(ab.sync_bits, 704);
        assert!(ab.any());
        assert!(!ScheduleCounters::default().any());
    }
}
