//! The pre-mailbox-plane engine, preserved verbatim as a baseline.
//!
//! [`run_reference`] is the sort-and-scatter message plane this repo
//! shipped with before the CSR edge-indexed mailbox landed in
//! [`crate::run`]: per-node `Vec<(NodeId, Msg)>` outboxes, a per-round
//! `sort_by_key` to group each outbox by destination, a `binary_search`
//! neighbor check per destination group, and scattered
//! `inboxes[dst].push(..)` delivery. It exists for two reasons:
//!
//! 1. **Differential testing** — `tests/prop_invariants.rs` and the
//!    engine unit tests assert that the mailbox plane produces the exact
//!    same [`RunReport`]s, final program states, and inbox orders.
//! 2. **Benchmarking** — `crates/bench/benches/engine_plane.rs` and
//!    experiment E0 measure the new plane against this one.
//!
//! It is *not* part of the supported API surface for protocols; use
//! [`crate::run`].

use crate::error::SimError;
use crate::message::Message;
use crate::metrics::RunReport;
use crate::plane::Sink;
use crate::program::{Ctx, Program};
use crate::{Bandwidth, SimConfig};
use graphs::{Graph, NodeId};
use prand::mix::mix2;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run `programs` on the legacy outbox plane. Same contract as
/// [`crate::run`], bit-for-bit identical results, allocation-heavy
/// routing.
///
/// # Errors
///
/// Same as [`crate::run`].
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run_reference<P: Program>(
    graph: &Graph,
    mut programs: Vec<P>,
    config: SimConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    assert_eq!(
        programs.len(),
        graph.n(),
        "need exactly one program per node"
    );
    let n = graph.n();
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| StdRng::seed_from_u64(mix2(config.seed, v as u64)))
        .collect();
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut outboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut report = RunReport {
        completed: true,
        ..Default::default()
    };

    let mut round = 0u64;
    loop {
        if programs.iter().all(|p| p.is_done()) {
            break;
        }
        if round >= config.max_rounds {
            report.completed = false;
            break;
        }

        // Step phase: every node reads its inbox and fills its outbox.
        step_all(
            graph,
            &mut programs,
            &mut rngs,
            &inboxes,
            &mut outboxes,
            round,
            config.threads,
        );

        // Routing phase: account bandwidth and deliver.
        for inbox in &mut inboxes {
            inbox.clear();
        }
        let mut round_max_edge_bits = 0u64;
        for (src, out) in outboxes.iter_mut().enumerate() {
            if out.is_empty() {
                continue;
            }
            // Group by destination to compute per-directed-edge load.
            out.sort_by_key(|&(dst, _)| dst);
            let mut i = 0;
            while i < out.len() {
                let dst = out[i].0;
                if graph.neighbors(src as NodeId).binary_search(&dst).is_err() {
                    return Err(SimError::NotANeighbor {
                        from: src as NodeId,
                        to: dst,
                        round,
                    });
                }
                let mut edge_bits = 0u64;
                let mut j = i;
                while j < out.len() && out[j].0 == dst {
                    edge_bits += out[j].1.bit_cost();
                    j += 1;
                }
                if let Bandwidth::Strict(limit) = config.bandwidth {
                    if edge_bits > limit {
                        return Err(SimError::BandwidthExceeded {
                            from: src as NodeId,
                            to: dst,
                            bits: edge_bits,
                            limit,
                            round,
                        });
                    }
                }
                round_max_edge_bits = round_max_edge_bits.max(edge_bits);
                report.total_bits += edge_bits;
                report.messages += (j - i) as u64;
                i = j;
            }
            for (dst, msg) in out.drain(..) {
                inboxes[dst as usize].push((src as NodeId, msg));
            }
        }
        report.edge_load.record(round_max_edge_bits);
        round += 1;
    }
    report.rounds = round;
    Ok((programs, report))
}

/// Execute the step phase, optionally sharded over threads. Each node only
/// touches its own program, RNG and outbox, so sharding cannot change
/// results.
fn step_all<P: Program>(
    graph: &Graph,
    programs: &mut [P],
    rngs: &mut [StdRng],
    inboxes: &[Vec<(NodeId, P::Msg)>],
    outboxes: &mut [Vec<(NodeId, P::Msg)>],
    round: u64,
    threads: usize,
) {
    let n = programs.len();
    if threads <= 1 || n < 256 {
        for v in 0..n {
            step_one(
                graph,
                &mut programs[v],
                &mut rngs[v],
                &inboxes[v],
                &mut outboxes[v],
                v,
                round,
            );
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut prog_chunks = programs.chunks_mut(chunk);
        let mut rng_chunks = rngs.chunks_mut(chunk);
        let mut out_chunks = outboxes.chunks_mut(chunk);
        let mut base = 0usize;
        for _ in 0..threads {
            let (Some(ps), Some(rs), Some(os)) =
                (prog_chunks.next(), rng_chunks.next(), out_chunks.next())
            else {
                break;
            };
            let start = base;
            base += ps.len();
            let inboxes = &inboxes;
            scope.spawn(move || {
                for (i, ((p, r), o)) in ps
                    .iter_mut()
                    .zip(rs.iter_mut())
                    .zip(os.iter_mut())
                    .enumerate()
                {
                    let v = start + i;
                    step_one(graph, p, r, &inboxes[v], o, v, round);
                }
            });
        }
    });
}

fn step_one<P: Program>(
    graph: &Graph,
    program: &mut P,
    rng: &mut StdRng,
    inbox: &[(NodeId, P::Msg)],
    outbox: &mut Vec<(NodeId, P::Msg)>,
    v: usize,
    round: u64,
) {
    let mut ctx = Ctx {
        node: v as NodeId,
        round,
        neighbors: graph.neighbors(v as NodeId),
        inbox,
        rng,
        sink: Sink::Outbox(outbox),
    };
    program.on_round(&mut ctx);
}
