//! Superseded engines, preserved as baselines.
//!
//! Each engine-performance PR keeps the engine it replaced, for two
//! reasons:
//!
//! 1. **Differential testing** — `tests/prop_invariants.rs` and the
//!    engine unit tests assert that every engine generation produces the
//!    exact same [`RunReport`]s, final program states, and inbox orders.
//! 2. **Benchmarking** — experiments E0/E0b and the criterion benches
//!    measure each generation against its predecessor.
//!
//! Two generations live here:
//!
//! * [`run_reference`] — the original sort-and-scatter message plane:
//!   per-node `Vec<(NodeId, Msg)>` outboxes, a per-round `sort_by_key`
//!   to group each outbox by destination, a `binary_search` neighbor
//!   check per destination group, and scattered `inboxes[dst].push(..)`
//!   delivery.
//! * [`run_mailbox_sweep`] — the pre-session mailbox engine: the CSR
//!   edge-indexed plane (`crate::plane`), built **fresh per run**,
//!   stepping all `n` programs and sweeping every receiver's in-slots
//!   each round (no active frontier, no dirty-receiver worklist). This
//!   is the per-pass baseline arm of experiment E0b.
//!
//! Neither is part of the supported API surface for protocols; use
//! [`crate::run`] / [`crate::Session`].

use crate::error::SimError;
use crate::fault::{apply_cap, route_receiver_faulty, Decision, FaultCounters, FaultState};
use crate::message::Message;
use crate::metrics::RunReport;
use crate::plane::{
    prefetch_for_write, DirtyBoard, MailboxPlane, NeighborIndex, ShardRoute, Sink, SlotSink,
};
use crate::program::{Ctx, Program};
use crate::{Bandwidth, SimConfig};
use graphs::{Graph, NodeId};
use prand::mix::mix2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Run `programs` on the legacy outbox plane. Same contract as
/// [`crate::run`], bit-for-bit identical results, allocation-heavy
/// routing.
///
/// # Errors
///
/// Same as [`crate::run`].
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run_reference<P: Program>(
    graph: &Graph,
    mut programs: Vec<P>,
    config: SimConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    assert_eq!(
        programs.len(),
        graph.n(),
        "need exactly one program per node"
    );
    let n = graph.n();
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| StdRng::seed_from_u64(mix2(config.seed, v as u64)))
        .collect();
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut outboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    // Explicitly halted nodes (Ctx::halt): skipped and counted as
    // finished, mirroring the session scheduler's contract.
    let mut halted: Vec<bool> = vec![false; n];
    let mut report = RunReport {
        completed: true,
        ..Default::default()
    };
    // Fault-injection state for this run (None = the unmodified
    // fault-free path). The legacy plane reuses the same stateless
    // decision stream and holdback queues as the mailbox engines, keyed
    // on the identical (pass seed, edge, round) coordinates, so all
    // engine generations inject byte-identically.
    let fault = config
        .fault
        .is_active()
        .then(|| FaultState::new(config.fault, config.seed, graph));

    let mut round = 0u64;
    loop {
        if programs.iter().zip(&halted).all(|(p, &h)| h || p.is_done()) {
            break;
        }
        if round >= config.max_rounds {
            report.completed = false;
            break;
        }
        if let Some(f) = &fault {
            if f.abort_round(round) {
                return Err(SimError::FaultInjected { round });
            }
            // Crash fates advance once per node per round, before the
            // step phase reads them (all engines share this ordering).
            if f.has_crashes() {
                f.advance_crashes(0, n, round);
            }
        }

        // Step phase: every node reads its inbox and fills its outbox.
        step_all(
            graph,
            &mut programs,
            &mut rngs,
            &mut halted,
            &inboxes,
            &mut outboxes,
            round,
            config.threads,
            fault.as_ref(),
        );

        // Routing phase: account bandwidth and deliver.
        for inbox in &mut inboxes {
            inbox.clear();
        }
        if let Some(f) = &fault {
            route_outboxes_faulty(
                graph,
                f,
                &mut outboxes,
                &mut inboxes,
                round,
                config.bandwidth,
                &mut report,
            )?;
            round += 1;
            continue;
        }
        let mut round_max_edge_bits = 0u64;
        for (src, out) in outboxes.iter_mut().enumerate() {
            if out.is_empty() {
                continue;
            }
            // Group by destination to compute per-directed-edge load.
            out.sort_by_key(|&(dst, _)| dst);
            let mut i = 0;
            while i < out.len() {
                let dst = out[i].0;
                if graph.neighbors(src as NodeId).binary_search(&dst).is_err() {
                    return Err(SimError::NotANeighbor {
                        from: src as NodeId,
                        to: dst,
                        round,
                    });
                }
                let mut edge_bits = 0u64;
                let mut j = i;
                while j < out.len() && out[j].0 == dst {
                    edge_bits += out[j].1.bit_cost();
                    j += 1;
                }
                if let Bandwidth::Strict(limit) = config.bandwidth {
                    if edge_bits > limit {
                        return Err(SimError::BandwidthExceeded {
                            from: src as NodeId,
                            to: dst,
                            bits: edge_bits,
                            limit,
                            round,
                        });
                    }
                }
                round_max_edge_bits = round_max_edge_bits.max(edge_bits);
                report.total_bits += edge_bits;
                report.messages += (j - i) as u64;
                i = j;
            }
            for (dst, msg) in out.drain(..) {
                inboxes[dst as usize].push((src as NodeId, msg));
            }
        }
        report.edge_load.record(round_max_edge_bits);
        round += 1;
    }
    report.rounds = round;
    if let Some(f) = &fault {
        report.starved = f.collect_starved();
        report.crashed = f.collect_crashed();
        report.faults.crashes = f.crash_event_total();
        f.crash_outcome(round)?;
    }
    Ok((programs, report))
}

/// The legacy plane's faulty routing phase. Every bundle — delayed or
/// not — travels through the holdback queues (fresh deliveries are
/// queued due *this* round), and one per-receiver sweep in CSR
/// in-neighbor order drains everything due. That reproduces the mailbox
/// engines' faulty delivery order exactly: inboxes sorted by sender,
/// held-back (older) bundles before fresh ones per sender.
fn route_outboxes_faulty<M: Message>(
    graph: &Graph,
    fault: &FaultState<M>,
    outboxes: &mut [Vec<(NodeId, M)>],
    inboxes: &mut [Vec<(NodeId, M)>],
    round: u64,
    bandwidth: Bandwidth,
    report: &mut RunReport,
) -> Result<(), SimError> {
    let offsets = graph.offsets();
    let mut faults = FaultCounters::default();
    let mut round_max_edge_bits = 0u64;
    let mut bundle: Vec<M> = Vec::new();
    for (src, out) in outboxes.iter_mut().enumerate() {
        if out.is_empty() {
            continue;
        }
        out.sort_by_key(|&(dst, _)| dst);
        let mut msgs = out.drain(..).peekable();
        while let Some(&(dst, _)) = msgs.peek() {
            bundle.clear();
            while let Some(&(d, _)) = msgs.peek() {
                if d != dst {
                    break;
                }
                bundle.push(msgs.next().expect("peeked").1);
            }
            // A faulty network eats misaddressed bundles instead of
            // failing the run (the forgiving counterpart of
            // SimError::NotANeighbor).
            let Ok(pos) = graph.neighbors(dst).binary_search(&(src as NodeId)) else {
                faults.misrouted += bundle.len() as u64;
                continue;
            };
            let e = offsets[dst as usize] + pos;
            let mut edge_bits: u64 = bundle.iter().map(Message::bit_cost).sum();
            if apply_cap(
                &fault.plan,
                &mut bundle,
                &mut edge_bits,
                bandwidth,
                src as NodeId,
                dst,
                round,
                &mut faults,
            )? {
                fault.mark_perturbed(dst as usize);
            }
            round_max_edge_bits = round_max_edge_bits.max(edge_bits);
            report.total_bits += edge_bits;
            report.messages += bundle.len() as u64;
            if bundle.is_empty() {
                continue;
            }
            // A down receiver loses the fresh bundle after billing, dice
            // unrolled and sentinel unraised — exactly like
            // `route_receiver_faulty` (a down *sender* cannot reach here:
            // it was skipped in the step phase and sent nothing).
            if fault.has_crashes() && fault.is_down(dst as usize, round) {
                faults.dropped += 1;
                continue;
            }
            match fault.decide(src as NodeId, dst, round) {
                Decision::Drop => {
                    faults.dropped += 1;
                    fault.mark_perturbed(dst as usize);
                }
                Decision::Delay { due, copies } => {
                    faults.delayed += 1;
                    if copies > 1 {
                        faults.duplicated += 1;
                    }
                    fault.hold(
                        e,
                        dst as usize,
                        round,
                        due,
                        copies,
                        std::mem::take(&mut bundle),
                    );
                    fault.mark_perturbed(dst as usize);
                }
                Decision::Deliver { copies } => {
                    if copies > 1 {
                        faults.duplicated += 1;
                    }
                    fault.hold(
                        e,
                        dst as usize,
                        round,
                        round,
                        copies,
                        std::mem::take(&mut bundle),
                    );
                }
            }
        }
    }
    // Delivery sweep: per receiver, per in-neighbor in CSR order, drain
    // everything due this round.
    for (v, inbox) in inboxes.iter_mut().enumerate() {
        for (j, &u) in graph.neighbors(v as NodeId).iter().enumerate() {
            fault.deliver_due(offsets[v] + j, u, v, round, inbox, &mut faults);
        }
    }
    report.edge_load.record(round_max_edge_bits);
    report.faults.merge(&faults);
    Ok(())
}

/// Execute the step phase, optionally sharded over threads. Each node only
/// touches its own program, RNG and outbox, so sharding cannot change
/// results.
/// Below this node count the sweep engine runs single-threaded
/// (mirrors the session scheduler's threshold).
const PAR_MIN_NODES: usize = 256;

/// Which plane lanes a round actually used (sweep-engine copy).
#[derive(Clone, Copy, Default)]
struct Lanes {
    targeted: bool,
    bcast: bool,
}

/// One step shard's result (sweep-engine copy).
#[derive(Default)]
struct StepOut {
    /// Net change in the number of done nodes.
    delta: i64,
    /// First send-side error in node order.
    err: Option<SimError>,
    /// Lanes this shard's nodes wrote.
    lanes: Lanes,
    /// Sends to non-neighbors eaten by an active fault plan.
    misrouted: u64,
}

/// Aggregated routing-phase counters (sweep-engine copy).
#[derive(Default)]
struct RouteStats {
    max: u64,
    bits: u64,
    messages: u64,
    err: Option<SimError>,
    /// Fault events injected while routing (zero without a fault plan).
    faults: FaultCounters,
}

/// One worker's node range (sweep-engine copy).
struct StepShard<'a, P: Program> {
    lo: usize,
    programs: &'a mut [P],
    rngs: &'a mut [StdRng],
    done: &'a mut [bool],
    halted: &'a mut [bool],
    inboxes: &'a mut [Vec<(NodeId, P::Msg)>],
}

impl<P: Program> StepShard<'_, P> {
    /// A shorter-lived view of the same shard.
    fn reborrow(&mut self) -> StepShard<'_, P> {
        StepShard {
            lo: self.lo,
            programs: &mut *self.programs,
            rngs: &mut *self.rngs,
            done: &mut *self.done,
            halted: &mut *self.halted,
            inboxes: &mut *self.inboxes,
        }
    }
}

/// Step **every** node of the shard (the pre-frontier behaviour: done
/// nodes are stepped too, their `on_round` being a contractual no-op).
/// Explicitly halted nodes are skipped and counted as done, matching the
/// session scheduler's `Ctx::halt` semantics.
#[allow(clippy::too_many_arguments)]
fn sweep_step_range<P: Program>(
    graph: &Graph,
    plane: &MailboxPlane<P::Msg>,
    dirty: &DirtyBoard,
    lookup: &mut NeighborIndex,
    round: u64,
    prefetch: bool,
    fault: Option<&FaultState<P::Msg>>,
    shard: StepShard<'_, P>,
) -> StepOut {
    let offsets = graph.offsets();
    let forgiving = fault.is_some();
    let skip_down = fault.filter(|f| f.has_crashes());
    let mut out = StepOut::default();
    let len = shard.programs.len();
    const PREFETCH_AHEAD: usize = 2;
    let lo = shard.lo;
    let prefetch_node = |i: usize| {
        let v = lo + i;
        for &e in &plane.rev[offsets[v]..offsets[v + 1]] {
            prefetch_for_write(plane.slots[e as usize].get());
        }
    };
    if prefetch {
        for i in 0..PREFETCH_AHEAD.min(len) {
            prefetch_node(i);
        }
    }
    for i in 0..len {
        let v = lo + i;
        if prefetch && i + PREFETCH_AHEAD < len && !shard.done[i + PREFETCH_AHEAD] {
            prefetch_node(i + PREFETCH_AHEAD);
        }
        // Done programs are never re-stepped, matching the session
        // engine's frontier (which retires a node the round it reports
        // done). The distinction is invisible while a pass ends the
        // moment everyone is done, but a crashed node can hold a pass
        // open past that point — and an extra `on_round` on a done
        // program may overwrite state it computed on its final round.
        if shard.halted[i] || shard.done[i] {
            continue;
        }
        // Down nodes are skipped entirely (no `on_round`, no RNG draw) —
        // a crashed node's program must not run at all.
        if skip_down.is_some_and(|f| f.is_down(v, round)) {
            continue;
        }
        let mut ctx = Ctx {
            node: v as NodeId,
            round,
            neighbors: graph.neighbors(v as NodeId),
            inbox: &shard.inboxes[i],
            rng: &mut shard.rngs[i],
            halt: &mut shard.halted[i],
            sink: Sink::Slots(SlotSink {
                slots: &plane.slots,
                spill: &plane.spill,
                bcast: &plane.bcast[v],
                bcast_spill: &plane.bcast_spill[v],
                rev_out: &plane.rev[offsets[v]..offsets[v + 1]],
                dirty,
                epoch: round,
                seq: 0,
                targeted: 0,
                broadcasts: 0,
                lookup: &mut *lookup,
                filled: false,
                forgiving,
                misrouted: 0,
                err: &mut out.err,
                // Legacy generations are unsharded: every write is local.
                shard: ShardRoute::all_local(),
            }),
        };
        shard.programs[i].on_round(&mut ctx);
        if let Sink::Slots(s) = &ctx.sink {
            out.lanes.targeted |= s.targeted > 0;
            out.lanes.bcast |= s.broadcasts > 0;
            out.misrouted += s.misrouted;
        }
        let now = shard.halted[i] || shard.programs[i].is_done();
        out.delta += i64::from(now) - i64::from(shard.done[i]);
        shard.done[i] = now;
    }
    out
}

/// Deliver to receivers `lo .. lo + inboxes.len()` by sweeping **every**
/// receiver's contiguous in-slots (the pre-dirty-worklist behaviour).
#[allow(clippy::too_many_arguments)]
fn sweep_route_range<M: Message>(
    graph: &Graph,
    plane: &MailboxPlane<M>,
    fault: Option<&FaultState<M>>,
    inboxes: &mut [Vec<(NodeId, M)>],
    lo: usize,
    round: u64,
    bandwidth: Bandwidth,
    lanes: Lanes,
) -> RouteStats {
    let offsets = graph.offsets();
    let mut stats = RouteStats::default();
    // With a fault plan, held-back bundles can come due in a round nobody
    // sent in, so the dead-lane shortcut only applies fault-free.
    if !lanes.targeted && !lanes.bcast && fault.is_none() {
        for inbox in inboxes.iter_mut() {
            inbox.clear();
        }
        return stats;
    }
    for (i, inbox) in inboxes.iter_mut().enumerate() {
        let v = lo + i;
        inbox.clear();
        if let Some(f) = fault {
            // The sweep engine visits every receiver anyway; hand the
            // whole per-receiver sweep to the shared faulty router (the
            // round doubles as this engine's slot stamp).
            match route_receiver_faulty(
                graph,
                plane,
                f,
                inbox,
                v,
                round,
                round,
                bandwidth,
                lanes.targeted,
                lanes.bcast,
            ) {
                Ok(flow) => {
                    stats.max = stats.max.max(flow.max);
                    stats.bits += flow.bits;
                    stats.messages += flow.messages;
                    stats.faults.merge(&flow.faults);
                }
                Err(e) => {
                    stats.err = Some(e);
                    return stats;
                }
            }
            continue;
        }
        let base = offsets[v];
        for (j, &u) in graph.neighbors(v as NodeId).iter().enumerate() {
            // SAFETY: receiver-side keyed slots; routing workers own
            // disjoint receiver ranges; barrier/program order separates
            // the phases (see crate::plane).
            let eslot = lanes
                .targeted
                .then(|| unsafe { &mut *plane.slots[base + j].get() })
                .filter(|s| s.stamp == round);
            // SAFETY: broadcast slots are only read during routing.
            let bslot = lanes
                .bcast
                .then(|| unsafe { &*plane.bcast[u as usize].get() })
                .filter(|b| b.stamp == round);
            if eslot.is_none() && bslot.is_none() {
                continue;
            }
            let edge_bits = eslot.as_ref().map_or(0u64, |s| u64::from(s.bits))
                + bslot.map_or(0u64, |b| u64::from(b.bits));
            if let Bandwidth::Strict(limit) = bandwidth {
                if edge_bits > limit {
                    stats.err = Some(SimError::BandwidthExceeded {
                        from: u,
                        to: v as NodeId,
                        bits: edge_bits,
                        limit,
                        round,
                    });
                    return stats;
                }
            }
            stats.max = stats.max.max(edge_bits);
            stats.bits += edge_bits;
            match (eslot, bslot) {
                (Some(s), None) => {
                    let msg = s.first.take().expect("live slot has a first message");
                    stats.messages += 1 + u64::from(s.spilled);
                    inbox.push((u, msg));
                    if s.spilled > 0 {
                        s.spilled = 0;
                        // SAFETY: same receiver-range exclusivity.
                        let sp = unsafe { &mut *plane.spill[base + j].get() };
                        inbox.extend(sp.drain(..).map(|(m, _)| (u, m)));
                    }
                }
                (None, Some(b)) => {
                    let msg = b.first.clone().expect("live slot has a first message");
                    stats.messages += 1 + u64::from(b.spilled);
                    inbox.push((u, msg));
                    if b.spilled > 0 {
                        // SAFETY: read-only, like the hot broadcast slot.
                        let sp = unsafe { &*plane.bcast_spill[u as usize].get() };
                        inbox.extend(sp.iter().map(|(m, _)| (u, m.clone())));
                    }
                }
                (Some(s), Some(b)) => {
                    stats.messages += 2 + u64::from(s.spilled) + u64::from(b.spilled);
                    let first_t = s.first.take().expect("live slot has a first message");
                    s.spilled = 0;
                    // SAFETY: as in the single-lane branches above.
                    let sp_t = unsafe { &mut *plane.spill[base + j].get() };
                    let sp_b = unsafe { &*plane.bcast_spill[u as usize].get() };
                    let mut te = std::iter::once((s.seq, first_t))
                        .chain(sp_t.drain(..).map(|(m, q)| (q, m)))
                        .peekable();
                    let first_b = b.first.clone().expect("live slot has a first message");
                    let mut be = std::iter::once((b.seq, first_b))
                        .chain(sp_b.iter().map(|(m, q)| (*q, m.clone())))
                        .peekable();
                    loop {
                        let take_targeted = match (te.peek(), be.peek()) {
                            (Some((tq, _)), Some((bq, _))) => tq < bq,
                            (Some(_), None) => true,
                            (None, Some(_)) => false,
                            (None, None) => break,
                        };
                        let (_, m) = if take_targeted {
                            te.next().expect("peeked")
                        } else {
                            be.next().expect("peeked")
                        };
                        inbox.push((u, m));
                    }
                }
                (None, None) => unreachable!("filtered above"),
            }
        }
    }
    stats
}

/// Per-round worker commands for the sweep engine's scoped pool.
struct PoolControl {
    round: AtomicU64,
    prefetch: AtomicBool,
    targeted: AtomicBool,
    bcast: AtomicBool,
    exit: AtomicBool,
}

/// Run `programs` on the pre-session mailbox engine: a fresh CSR plane
/// per run, all `n` programs stepped and every receiver's in-slots swept
/// each round, worker threads spawned per run inside
/// `std::thread::scope`. Same contract and bit-for-bit identical results
/// as [`crate::run`]; this is the per-pass baseline of experiment E0b.
///
/// # Errors
///
/// Same as [`crate::run`].
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run_mailbox_sweep<P: Program>(
    graph: &Graph,
    mut programs: Vec<P>,
    config: SimConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    assert_eq!(
        programs.len(),
        graph.n(),
        "need exactly one program per node"
    );
    let n = graph.n();
    let workers = if config.threads <= 1 || n < PAR_MIN_NODES {
        1
    } else {
        config.threads
    };
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| StdRng::seed_from_u64(mix2(config.seed, v as u64)))
        .collect();
    let plane: MailboxPlane<P::Msg> = MailboxPlane::new(graph);
    let dirty = DirtyBoard::new(n);
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut done: Vec<bool> = programs.iter().map(P::is_done).collect();
    let mut halted: Vec<bool> = vec![false; n];
    let done_count = done.iter().filter(|&&d| d).count();
    let fault = config
        .fault
        .is_active()
        .then(|| FaultState::new(config.fault, config.seed, graph));

    let mut report = if workers == 1 {
        sweep_sequential(
            graph,
            &mut programs,
            &mut rngs,
            &mut done,
            &mut halted,
            &plane,
            &dirty,
            fault.as_ref(),
            &mut inboxes,
            config,
            done_count,
        )?
    } else {
        sweep_pooled(
            graph,
            &mut programs,
            &mut rngs,
            &mut done,
            &mut halted,
            &plane,
            &dirty,
            fault.as_ref(),
            &mut inboxes,
            config,
            workers,
            done_count,
        )?
    };
    if let Some(f) = &fault {
        report.starved = f.collect_starved();
        report.crashed = f.collect_crashed();
        report.faults.crashes = f.crash_event_total();
        f.crash_outcome(report.rounds)?;
    }
    Ok((programs, report))
}

/// The sweep engine's single-threaded loop.
#[allow(clippy::too_many_arguments)]
fn sweep_sequential<P: Program>(
    graph: &Graph,
    programs: &mut [P],
    rngs: &mut [StdRng],
    done: &mut [bool],
    halted: &mut [bool],
    plane: &MailboxPlane<P::Msg>,
    dirty: &DirtyBoard,
    fault: Option<&FaultState<P::Msg>>,
    inboxes: &mut [Vec<(NodeId, P::Msg)>],
    config: SimConfig,
    mut done_count: usize,
) -> Result<RunReport, SimError> {
    let n = programs.len();
    let mut lookup = NeighborIndex::new(n);
    let mut report = RunReport {
        completed: true,
        ..Default::default()
    };
    let mut round = 0u64;
    let mut prefetch = false;
    loop {
        if done_count == n {
            break;
        }
        if round >= config.max_rounds {
            report.completed = false;
            break;
        }
        if let Some(f) = fault {
            if f.abort_round(round) {
                return Err(SimError::FaultInjected { round });
            }
            if f.has_crashes() {
                f.advance_crashes(0, n, round);
            }
        }
        let shard = StepShard {
            lo: 0,
            programs,
            rngs,
            done,
            halted,
            inboxes,
        };
        let out = sweep_step_range(
            graph,
            plane,
            dirty,
            &mut lookup,
            round,
            prefetch,
            fault,
            shard,
        );
        if let Some(e) = out.err {
            return Err(e);
        }
        done_count = (done_count as i64 + out.delta) as usize;
        report.faults.misrouted += out.misrouted;
        prefetch = out.lanes.targeted;
        let stats = sweep_route_range(
            graph,
            plane,
            fault,
            inboxes,
            0,
            round,
            config.bandwidth,
            out.lanes,
        );
        if let Some(e) = stats.err {
            return Err(e);
        }
        report.total_bits += stats.bits;
        report.messages += stats.messages;
        report.faults.merge(&stats.faults);
        report.edge_load.record(stats.max);
        round += 1;
    }
    report.rounds = round;
    Ok(report)
}

/// The sweep engine's pooled loop: `workers` scoped threads spawned per
/// run, synchronized with a barrier before and after each phase.
#[allow(clippy::too_many_arguments)]
fn sweep_pooled<P: Program>(
    graph: &Graph,
    programs: &mut [P],
    rngs: &mut [StdRng],
    done: &mut [bool],
    halted: &mut [bool],
    plane: &MailboxPlane<P::Msg>,
    dirty: &DirtyBoard,
    fault: Option<&FaultState<P::Msg>>,
    inboxes: &mut [Vec<(NodeId, P::Msg)>],
    config: SimConfig,
    workers: usize,
    mut done_count: usize,
) -> Result<RunReport, SimError> {
    let n = programs.len();
    let chunk = n.div_ceil(workers);
    let shards = n.div_ceil(chunk);
    let barrier = Barrier::new(shards + 1);
    let control = PoolControl {
        round: AtomicU64::new(0),
        prefetch: AtomicBool::new(false),
        targeted: AtomicBool::new(false),
        bcast: AtomicBool::new(false),
        exit: AtomicBool::new(false),
    };
    let step_out: Vec<Mutex<StepOut>> = (0..shards).map(|_| Mutex::default()).collect();
    let route_out: Vec<Mutex<RouteStats>> = (0..shards).map(|_| Mutex::default()).collect();

    std::thread::scope(|scope| {
        let shard_iter = programs
            .chunks_mut(chunk)
            .zip(rngs.chunks_mut(chunk))
            .zip(done.chunks_mut(chunk))
            .zip(halted.chunks_mut(chunk))
            .zip(inboxes.chunks_mut(chunk));
        let mut lo = 0usize;
        for (w, ((((ps, rs), ds), hs), inb)) in shard_iter.enumerate() {
            let lo_w = lo;
            lo += ps.len();
            let (barrier, control) = (&barrier, &control);
            let (step_out, route_out) = (&step_out, &route_out);
            let bandwidth = config.bandwidth;
            let dirty = &dirty;
            scope.spawn(move || {
                let mut lookup = NeighborIndex::new(n);
                let mut shard = StepShard {
                    lo: lo_w,
                    programs: ps,
                    rngs: rs,
                    done: ds,
                    halted: hs,
                    inboxes: inb,
                };
                loop {
                    barrier.wait(); // coordinator released the step phase
                    if control.exit.load(Ordering::Acquire) {
                        break;
                    }
                    let round = control.round.load(Ordering::Acquire);
                    let prefetch = control.prefetch.load(Ordering::Acquire);
                    let out = sweep_step_range(
                        graph,
                        plane,
                        dirty,
                        &mut lookup,
                        round,
                        prefetch,
                        fault,
                        shard.reborrow(),
                    );
                    *step_out[w].lock().expect("step slot poisoned") = out;
                    barrier.wait(); // step results visible to coordinator
                    barrier.wait(); // coordinator released the routing phase
                    if control.exit.load(Ordering::Acquire) {
                        break;
                    }
                    let lanes = Lanes {
                        targeted: control.targeted.load(Ordering::Acquire),
                        bcast: control.bcast.load(Ordering::Acquire),
                    };
                    let stats = sweep_route_range(
                        graph,
                        plane,
                        fault,
                        shard.inboxes,
                        lo_w,
                        round,
                        bandwidth,
                        lanes,
                    );
                    *route_out[w].lock().expect("route slot poisoned") = stats;
                    barrier.wait(); // route results visible to coordinator
                }
            });
        }

        // Coordinator.
        let mut report = RunReport {
            completed: true,
            ..Default::default()
        };
        let mut round = 0u64;
        let shutdown = |result: Result<RunReport, SimError>| {
            control.exit.store(true, Ordering::Release);
            barrier.wait();
            result
        };
        loop {
            if done_count == n {
                report.rounds = round;
                return shutdown(Ok(report));
            }
            if round >= config.max_rounds {
                report.completed = false;
                report.rounds = round;
                return shutdown(Ok(report));
            }
            if let Some(f) = fault {
                if f.abort_round(round) {
                    return shutdown(Err(SimError::FaultInjected { round }));
                }
                // The coordinator advances every node's crash fate before
                // releasing the step phase: workers only read `is_down`.
                if f.has_crashes() {
                    f.advance_crashes(0, n, round);
                }
            }
            control.round.store(round, Ordering::Release);
            barrier.wait(); // release step
            barrier.wait(); // step done
            let mut delta = 0i64;
            let mut err = None;
            let mut lanes = Lanes::default();
            for slot in &step_out {
                let out = std::mem::take(&mut *slot.lock().expect("step slot poisoned"));
                delta += out.delta;
                if err.is_none() {
                    err = out.err;
                }
                lanes.targeted |= out.lanes.targeted;
                lanes.bcast |= out.lanes.bcast;
                report.faults.misrouted += out.misrouted;
            }
            if let Some(e) = err {
                return shutdown(Err(e));
            }
            done_count = (done_count as i64 + delta) as usize;
            control.targeted.store(lanes.targeted, Ordering::Release);
            control.bcast.store(lanes.bcast, Ordering::Release);
            control.prefetch.store(lanes.targeted, Ordering::Release);
            barrier.wait(); // release route
            barrier.wait(); // route done
            let mut stats = RouteStats::default();
            for slot in &route_out {
                let s = std::mem::take(&mut *slot.lock().expect("route slot poisoned"));
                stats.max = stats.max.max(s.max);
                stats.bits += s.bits;
                stats.messages += s.messages;
                stats.faults.merge(&s.faults);
                if stats.err.is_none() {
                    stats.err = s.err;
                }
            }
            if let Some(e) = stats.err {
                return shutdown(Err(e));
            }
            report.total_bits += stats.bits;
            report.messages += stats.messages;
            report.faults.merge(&stats.faults);
            report.edge_load.record(stats.max);
            round += 1;
        }
    })
}

#[allow(clippy::too_many_arguments)]
fn step_all<P: Program>(
    graph: &Graph,
    programs: &mut [P],
    rngs: &mut [StdRng],
    halted: &mut [bool],
    inboxes: &[Vec<(NodeId, P::Msg)>],
    outboxes: &mut [Vec<(NodeId, P::Msg)>],
    round: u64,
    threads: usize,
    fault: Option<&FaultState<P::Msg>>,
) {
    let n = programs.len();
    if threads <= 1 || n < 256 {
        for v in 0..n {
            step_one(
                graph,
                &mut programs[v],
                &mut rngs[v],
                &mut halted[v],
                &inboxes[v],
                &mut outboxes[v],
                v,
                round,
                fault,
            );
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut prog_chunks = programs.chunks_mut(chunk);
        let mut rng_chunks = rngs.chunks_mut(chunk);
        let mut halt_chunks = halted.chunks_mut(chunk);
        let mut out_chunks = outboxes.chunks_mut(chunk);
        let mut base = 0usize;
        for _ in 0..threads {
            let (Some(ps), Some(rs), Some(hs), Some(os)) = (
                prog_chunks.next(),
                rng_chunks.next(),
                halt_chunks.next(),
                out_chunks.next(),
            ) else {
                break;
            };
            let start = base;
            base += ps.len();
            let inboxes = &inboxes;
            scope.spawn(move || {
                for (i, (((p, r), h), o)) in ps
                    .iter_mut()
                    .zip(rs.iter_mut())
                    .zip(hs.iter_mut())
                    .zip(os.iter_mut())
                    .enumerate()
                {
                    let v = start + i;
                    step_one(graph, p, r, h, &inboxes[v], o, v, round, fault);
                }
            });
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn step_one<P: Program>(
    graph: &Graph,
    program: &mut P,
    rng: &mut StdRng,
    halted: &mut bool,
    inbox: &[(NodeId, P::Msg)],
    outbox: &mut Vec<(NodeId, P::Msg)>,
    v: usize,
    round: u64,
    fault: Option<&FaultState<P::Msg>>,
) {
    // Done programs are never re-stepped (the session engine retires a
    // node the round it reports done; a crashed neighbor can hold the
    // pass open past that round, and a done program's `on_round` may
    // overwrite its final-round state).
    if *halted || program.is_done() {
        return;
    }
    // A down node is skipped entirely: no `on_round` call, no RNG draw,
    // no sends — every engine skips identically, so RNG streams agree.
    if let Some(f) = fault {
        if f.has_crashes() && f.is_down(v, round) {
            return;
        }
    }
    let mut ctx = Ctx {
        node: v as NodeId,
        round,
        neighbors: graph.neighbors(v as NodeId),
        inbox,
        rng,
        halt: halted,
        sink: Sink::Outbox(outbox),
    };
    program.on_round(&mut ctx);
}
