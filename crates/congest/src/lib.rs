//! Round-synchronous CONGEST model simulator.
//!
//! The CONGEST model: `n` nodes on a graph compute in synchronous rounds;
//! per round, each node may send one message of `O(log n)` bits across each
//! incident edge. This crate provides:
//!
//! * [`Program`] / [`Ctx`] — the node-program abstraction (programs can
//!   retire themselves from the scheduler with [`Ctx::halt`]);
//! * [`Session`] — a persistent engine session: the CSR edge-indexed
//!   mailbox plane, worker pool, per-node RNGs, and the active-frontier
//!   scheduler (compacted active lists + dirty-receiver delivery),
//!   reused across every pass of a multi-pass pipeline;
//! * [`SessionCore`] — the graph-independent half of a session: unbind
//!   a finished session and rebind the storage (and parked worker pool)
//!   to the next graph, so a stream of solves over varying graphs runs
//!   on one warm engine;
//! * [`run`] — the one-shot wrapper over [`Session`]: O(1) sends,
//!   permutation delivery, deterministic per-node randomness, optional
//!   multi-threaded step *and* routing phases, and per-directed-edge
//!   per-round bit accounting folded into slot writes;
//! * [`reference::run_reference`] — the pre-mailbox sort-and-scatter
//!   plane, kept as a differential-testing and benchmarking baseline;
//! * [`Bandwidth`] — strict enforcement (prove a protocol CONGEST-legal)
//!   or tracking (expose the congestion cost of LOCAL-style protocols via
//!   [`RunReport::normalized_rounds`]);
//! * [`FaultPlan`] — deterministic, seeded fault injection between send
//!   and delivery (drop / delay / duplicate / truncate / abort), exactly
//!   reproducible from `(seed, plan)` at any thread count, with per-run
//!   [`FaultCounters`] and starved-receiver sentinels in [`RunReport`];
//! * [`SchedulePlan`] — asynchronous execution under deterministic,
//!   seeded schedule adversaries (jitter / stragglers / anti-FIFO edges
//!   / burst stalls), run through a correctness-preserving
//!   α-synchronizer: transcripts stay byte-identical to the synchronous
//!   engine, [`ScheduleCounters`] record the synchronizer's overhead,
//!   and a wedged schedule fails loud with
//!   [`SimError::ScheduleStalled`];
//! * [`RunReport`] / [`PassLog`] — metrics, composable across the passes
//!   of multi-phase pipelines;
//! * [`BitTally`] — two-party transcript accounting for the edge-local
//!   procedures of §3.
//!
//! # Example
//!
//! ```
//! use congest::{run, Ctx, Program, SimConfig};
//!
//! /// Every node announces its id once; everyone finishes after hearing
//! /// all neighbors.
//! struct Hello { heard: usize, done: bool }
//!
//! #[derive(Clone)]
//! struct Id(u32);
//! impl congest::Message for Id {
//!     fn bit_cost(&self) -> u64 { 16 }
//! }
//!
//! impl Program for Hello {
//!     type Msg = Id;
//!     fn on_round(&mut self, ctx: &mut Ctx<'_, Id>) {
//!         if ctx.round() == 0 {
//!             ctx.broadcast(Id(ctx.id()));
//!         } else {
//!             self.heard = ctx.inbox().len();
//!             self.done = true;
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.done }
//! }
//!
//! let g = graphs::gen::cycle(8);
//! let programs = (0..8).map(|_| Hello { heard: 0, done: false }).collect();
//! let (programs, report) = run(&g, programs, SimConfig::seeded(7)).unwrap();
//! assert!(report.completed);
//! assert!(programs.iter().all(|p| p.heard == 2));
//! ```

#![warn(missing_docs)]

mod engine;
mod error;
mod fault;
pub mod message;
mod metrics;
mod plane;
mod program;
pub mod reference;
mod sched;
mod session;
mod twoparty;

pub use engine::{run, Bandwidth, SimConfig};
pub use error::SimError;
pub use fault::{FaultCounters, FaultPlan};
pub use message::Message;
pub use metrics::{LoadProfile, PassLog, PassRecord, RunReport, MAX_BUCKETS};
pub use program::{Ctx, Program};
pub use sched::{ScheduleCounters, SchedulePlan, PULSE_TAG_BITS};
pub use session::{BarrierAudit, Session, SessionCore};
pub use twoparty::BitTally;
