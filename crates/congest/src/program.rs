//! Node programs and their per-round execution context.

use crate::error::SimError;
use crate::message::Message;
use crate::plane::Sink;
use graphs::NodeId;
use rand::rngs::StdRng;

/// A node's distributed program: a state machine advanced once per round.
///
/// The engine calls [`Program::on_round`] every round, starting at round 0
/// with an empty inbox. Messages sent during round `r` are delivered in the
/// inbox of round `r + 1`. The run ends when every node reports
/// [`Program::is_done`] or has called [`Ctx::halt`] (or the round cap is
/// hit).
pub trait Program: Send {
    /// Message type exchanged by this protocol.
    type Msg: Message;

    /// Advance one round: read `ctx.inbox()`, mutate local state, send
    /// messages via `ctx.send` / `ctx.broadcast`.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Whether this node has terminated. A done node's `on_round` must be
    /// a no-op (no sends, no state changes, no RNG draws): the
    /// active-frontier scheduler ([`crate::Session`]) relies on this to
    /// skip done nodes entirely, and the done flag must never flip back.
    /// Done nodes still *receive* messages until the whole run ends.
    fn is_done(&self) -> bool;
}

/// Per-round execution context handed to [`Program::on_round`].
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) neighbors: &'a [NodeId],
    pub(crate) inbox: &'a [(NodeId, M)],
    pub(crate) rng: &'a mut StdRng,
    pub(crate) halt: &'a mut bool,
    pub(crate) sink: Sink<'a, M>,
}

impl<'a, M: Message> Ctx<'a, M> {
    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current round number (0-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sorted neighbor list.
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.neighbors
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Position of `u` in the sorted neighbor list, if adjacent.
    ///
    /// O(log deg); the engine's own send path resolves destinations in
    /// O(1) through the mailbox plane's neighbor index instead.
    pub fn neighbor_index(&self, u: NodeId) -> Option<usize> {
        self.neighbors.binary_search(&u).ok()
    }

    /// Messages delivered this round, as `(sender, message)` pairs.
    ///
    /// **Arrival order is a documented guarantee:** the inbox is sorted by
    /// sender id (the receiver's CSR neighbor order), and messages from
    /// one sender appear in the order that sender's `send`/`broadcast`
    /// calls issued them — regardless of the order destinations were
    /// addressed in, and regardless of the engine's thread count.
    pub fn inbox(&self) -> &'a [(NodeId, M)] {
        self.inbox
    }

    /// The node's private random generator (deterministic per
    /// `(engine seed, node id)`).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Retire this node from the run's active frontier: the engine will
    /// not step it again this run (regardless of [`Program::is_done`]),
    /// and it counts as finished for run termination. It still *receives*
    /// messages — they are delivered and accounted, just never read. The
    /// driver re-activates nodes by starting the next run
    /// ([`crate::Session::run`] / [`crate::Session::run_from`]).
    ///
    /// Calling `halt()` promises the same contract as a true
    /// [`Program::is_done`]: every further `on_round` would have been a
    /// no-op.
    pub fn halt(&mut self) {
        *self.halt = true;
    }

    /// Send `msg` to neighbor `to` (delivered next round).
    ///
    /// Sending to a non-neighbor is reported by the engine as
    /// [`crate::SimError::NotANeighbor`] — except under an active
    /// [`FaultPlan`](crate::FaultPlan), where the faulty network eats the
    /// message and counts it as misrouted (a lossy network cannot tell a
    /// bad address from a dropped packet).
    pub fn send(&mut self, to: NodeId, msg: M) {
        match &mut self.sink {
            Sink::Slots(s) => match s.resolve(self.neighbors, to) {
                Some(k) => s.write(k, to, msg),
                None if s.forgiving => s.misrouted += 1,
                None => {
                    if s.err.is_none() {
                        *s.err = Some(SimError::NotANeighbor {
                            from: self.node,
                            to,
                            round: self.round,
                        });
                    }
                }
            },
            Sink::Outbox(out) => out.push((to, msg)),
        }
    }

    /// Send a copy of `msg` to every neighbor.
    ///
    /// On the mailbox plane this is a single write into the node's
    /// broadcast slot — no destination resolution, no per-edge storage;
    /// the per-neighbor copies are cloned at delivery.
    pub fn broadcast(&mut self, msg: M) {
        match &mut self.sink {
            Sink::Slots(s) => {
                if self.neighbors.is_empty() {
                    return;
                }
                // Stamping the out-neighborhood dirty is O(deg) — the
                // same work the delivery clone pass pays per copy.
                for &to in self.neighbors {
                    s.mark(to);
                }
                s.write_bcast(msg);
            }
            Sink::Outbox(out) => {
                for &to in self.neighbors {
                    out.push((to, msg.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_accessors_and_send() {
        let neighbors = [1 as NodeId, 3, 7];
        let inbox: Vec<(NodeId, ())> = vec![(1, ()), (3, ())];
        let mut rng = StdRng::seed_from_u64(1);
        let mut outbox = Vec::new();
        let mut halt = false;
        let mut ctx = Ctx {
            node: 5,
            round: 2,
            neighbors: &neighbors,
            inbox: &inbox,
            rng: &mut rng,
            halt: &mut halt,
            sink: Sink::Outbox(&mut outbox),
        };
        assert_eq!(ctx.id(), 5);
        assert_eq!(ctx.round(), 2);
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.neighbor_index(3), Some(1));
        assert_eq!(ctx.neighbor_index(2), None);
        assert_eq!(ctx.inbox().len(), 2);
        ctx.send(1, ());
        ctx.broadcast(());
        ctx.halt();
        assert_eq!(outbox.len(), 4);
        assert_eq!(outbox[1].0, 1);
        assert_eq!(outbox[3].0, 7);
        assert!(halt, "halt() must raise the frontier flag");
    }
}
