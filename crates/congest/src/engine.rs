//! The round-synchronous simulation engine.
//!
//! The engine runs on a two-lane **CSR edge-indexed mailbox plane** (see
//! [`crate::plane`]): broadcasts take a node-indexed fast lane, targeted
//! sends write receiver-side per-edge slots through the reverse-CSR
//! permutation, and per-edge bandwidth accounting is folded into the slot
//! writes. Delivery sweeps each receiver's contiguous in-slots and
//! gathers its in-neighbors' broadcast slots, skipping any lane the round
//! did not use. With `threads > 1` both the step phase and the routing
//! phase shard across a pool of `std::thread::scope` workers spawned
//! **once per run** and synchronized per phase with a barrier (per-round
//! spawning would cost more than the phases themselves); results are
//! identical for every thread count. The pre-PR sort-and-scatter plane
//! is preserved as [`crate::reference::run_reference`] for differential
//! tests and benchmarks.

use crate::error::SimError;
use crate::message::{bits_for_range, Message};
use crate::metrics::RunReport;
use crate::plane::{prefetch_for_write, MailboxPlane, NeighborIndex, Sink, SlotSink};
use crate::program::{Ctx, Program};
use graphs::{Graph, NodeId};
use prand::mix::mix2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Below this node count the engine always runs single-threaded: barrier
/// overhead would dominate.
const PAR_MIN_NODES: usize = 256;

/// Bandwidth policy for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bandwidth {
    /// Abort with [`SimError::BandwidthExceeded`] if any directed edge
    /// carries more than this many bits in one round. Used in tests to
    /// prove a protocol CONGEST-legal.
    Strict(u64),
    /// Record loads without enforcing; overflows show up in
    /// [`RunReport::normalized_rounds`].
    Track,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Global seed; node `v`'s RNG is seeded from `(seed, v)`.
    pub seed: u64,
    /// Bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Hard cap on rounds (a run not finished by then reports
    /// `completed = false`).
    pub max_rounds: u64,
    /// Worker threads for the step and routing phases (1 = sequential).
    /// Results are identical regardless of thread count.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            bandwidth: Bandwidth::Track,
            max_rounds: 100_000,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// A config with the given seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// The standard CONGEST cap for an `n`-node graph:
    /// `multiplier · ⌈log₂(n+1)⌉` bits per edge per round (at least
    /// `multiplier`, so the degenerate `n ∈ {0, 1}` graphs keep a channel).
    ///
    /// The id width is exactly [`bits_for_range`]`(n + 1)` — the bits
    /// needed for an integer in `[0, n]`.
    ///
    /// # Example
    ///
    /// ```
    /// use congest::SimConfig;
    /// use congest::message::bits_for_range;
    ///
    /// assert_eq!(SimConfig::congest_bits(1023, 1), 10);
    /// assert_eq!(SimConfig::congest_bits(1024, 2), 22);
    /// assert_eq!(SimConfig::congest_bits(0, 3), 3);
    /// assert_eq!(SimConfig::congest_bits(5000, 1), bits_for_range(5001));
    /// ```
    pub fn congest_bits(n: usize, multiplier: u64) -> u64 {
        multiplier * bits_for_range(n as u64 + 1).max(1)
    }
}

/// Which plane lanes a round actually used (merged over all step
/// workers); the router skips dead lanes entirely.
#[derive(Clone, Copy, Default)]
struct Lanes {
    targeted: bool,
    bcast: bool,
}

/// One step shard's result.
#[derive(Default)]
struct StepOut {
    /// Net change in the number of done nodes.
    delta: i64,
    /// First send-side error in node order.
    err: Option<SimError>,
    /// Lanes this shard's nodes wrote.
    lanes: Lanes,
}

/// Run `programs` (one per node of `graph`) to completion.
///
/// Returns the final programs and the run report.
///
/// # Errors
///
/// [`SimError::NotANeighbor`] if a program messages a non-neighbor, or
/// [`SimError::BandwidthExceeded`] in strict mode. When several nodes
/// offend in the same round, the error reported is the first one in
/// node-id order (senders for `NotANeighbor`, receivers for
/// `BandwidthExceeded`) — independent of the thread count.
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run<P: Program>(
    graph: &Graph,
    mut programs: Vec<P>,
    config: SimConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    assert_eq!(
        programs.len(),
        graph.n(),
        "need exactly one program per node"
    );
    let n = graph.n();
    let workers = if config.threads <= 1 || n < PAR_MIN_NODES {
        1
    } else {
        config.threads
    };
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| StdRng::seed_from_u64(mix2(config.seed, v as u64)))
        .collect();
    let plane: MailboxPlane<P::Msg> = MailboxPlane::new(graph);
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut done: Vec<bool> = programs.iter().map(P::is_done).collect();
    let done_count = done.iter().filter(|&&d| d).count();

    let report = if workers == 1 {
        run_sequential(
            graph,
            &mut programs,
            &mut rngs,
            &mut done,
            &plane,
            &mut inboxes,
            config,
            done_count,
        )?
    } else {
        run_pooled(
            graph,
            &mut programs,
            &mut rngs,
            &mut done,
            &plane,
            &mut inboxes,
            config,
            workers,
            done_count,
        )?
    };
    Ok((programs, report))
}

/// The single-threaded engine loop: no barriers, one lookup scratch.
#[allow(clippy::too_many_arguments)]
fn run_sequential<P: Program>(
    graph: &Graph,
    programs: &mut [P],
    rngs: &mut [StdRng],
    done: &mut [bool],
    plane: &MailboxPlane<P::Msg>,
    inboxes: &mut [Vec<(NodeId, P::Msg)>],
    config: SimConfig,
    mut done_count: usize,
) -> Result<RunReport, SimError> {
    let n = programs.len();
    let mut lookup = NeighborIndex::new(n);
    let mut report = RunReport {
        completed: true,
        ..Default::default()
    };
    let mut round = 0u64;
    let mut prefetch = false;
    loop {
        if done_count == n {
            break;
        }
        if round >= config.max_rounds {
            report.completed = false;
            break;
        }
        let shard = StepShard {
            lo: 0,
            programs,
            rngs,
            done,
            inboxes,
        };
        let out = step_range(graph, plane, &mut lookup, round, prefetch, shard);
        if let Some(e) = out.err {
            return Err(e);
        }
        done_count = (done_count as i64 + out.delta) as usize;
        prefetch = out.lanes.targeted;
        let stats = route_range(graph, plane, inboxes, 0, round, config.bandwidth, out.lanes);
        if let Some(e) = stats.err {
            return Err(e);
        }
        report.total_bits += stats.bits;
        report.messages += stats.messages;
        report.edge_load.record(stats.max);
        round += 1;
    }
    report.rounds = round;
    Ok(report)
}

/// Per-round worker commands, written by the coordinator between barriers.
struct PoolControl {
    /// Current round number.
    round: AtomicU64,
    /// Whether step workers should prefetch targeted out-slots (the
    /// previous round used the targeted lane).
    prefetch: AtomicBool,
    /// Lanes the just-finished step phase wrote (drives routing).
    targeted: AtomicBool,
    bcast: AtomicBool,
    /// Set by the coordinator to terminate the worker loops.
    exit: AtomicBool,
}

/// The pooled engine loop: `workers` scoped threads are spawned once and
/// synchronized with a barrier before and after each phase (4 waits per
/// round). Worker `w` owns nodes `[w·chunk, (w+1)·chunk)`: it steps them,
/// then routes into their inboxes, so programs, RNGs, done flags and
/// inboxes are moved into the worker as plain `&mut` chunks; only the
/// slot plane is shared (see [`crate::plane`] for its access protocol).
///
/// Determinism: per-node work is independent of sharding, counters merge
/// with commutative ops, and first-error selection scans workers in
/// ascending chunk order, so any thread count yields the sequential
/// engine's exact results.
#[allow(clippy::too_many_arguments)]
fn run_pooled<P: Program>(
    graph: &Graph,
    programs: &mut [P],
    rngs: &mut [StdRng],
    done: &mut [bool],
    plane: &MailboxPlane<P::Msg>,
    inboxes: &mut [Vec<(NodeId, P::Msg)>],
    config: SimConfig,
    workers: usize,
    mut done_count: usize,
) -> Result<RunReport, SimError> {
    let n = programs.len();
    let chunk = n.div_ceil(workers);
    let shards = n.div_ceil(chunk);
    let barrier = Barrier::new(shards + 1);
    let control = PoolControl {
        round: AtomicU64::new(0),
        prefetch: AtomicBool::new(false),
        targeted: AtomicBool::new(false),
        bcast: AtomicBool::new(false),
        exit: AtomicBool::new(false),
    };
    let step_out: Vec<Mutex<StepOut>> = (0..shards).map(|_| Mutex::default()).collect();
    let route_out: Vec<Mutex<RouteStats>> = (0..shards).map(|_| Mutex::default()).collect();

    std::thread::scope(|scope| {
        let shard_iter = programs
            .chunks_mut(chunk)
            .zip(rngs.chunks_mut(chunk))
            .zip(done.chunks_mut(chunk))
            .zip(inboxes.chunks_mut(chunk));
        let mut lo = 0usize;
        for (w, (((ps, rs), ds), inb)) in shard_iter.enumerate() {
            let lo_w = lo;
            lo += ps.len();
            let (barrier, control) = (&barrier, &control);
            let (step_out, route_out) = (&step_out, &route_out);
            let bandwidth = config.bandwidth;
            scope.spawn(move || {
                let mut lookup = NeighborIndex::new(n);
                let mut shard = StepShard {
                    lo: lo_w,
                    programs: ps,
                    rngs: rs,
                    done: ds,
                    inboxes: inb,
                };
                loop {
                    barrier.wait(); // coordinator released the step phase
                    if control.exit.load(Ordering::Acquire) {
                        break;
                    }
                    let round = control.round.load(Ordering::Acquire);
                    let prefetch = control.prefetch.load(Ordering::Acquire);
                    let out =
                        step_range(graph, plane, &mut lookup, round, prefetch, shard.reborrow());
                    *step_out[w].lock().expect("step slot poisoned") = out;
                    barrier.wait(); // step results visible to coordinator
                    barrier.wait(); // coordinator released the routing phase
                    if control.exit.load(Ordering::Acquire) {
                        break;
                    }
                    let lanes = Lanes {
                        targeted: control.targeted.load(Ordering::Acquire),
                        bcast: control.bcast.load(Ordering::Acquire),
                    };
                    let stats =
                        route_range(graph, plane, shard.inboxes, lo_w, round, bandwidth, lanes);
                    *route_out[w].lock().expect("route slot poisoned") = stats;
                    barrier.wait(); // route results visible to coordinator
                }
            });
        }

        // Coordinator.
        let mut report = RunReport {
            completed: true,
            ..Default::default()
        };
        let mut round = 0u64;
        let shutdown = |result: Result<RunReport, SimError>| {
            control.exit.store(true, Ordering::Release);
            barrier.wait();
            result
        };
        loop {
            if done_count == n {
                report.rounds = round;
                return shutdown(Ok(report));
            }
            if round >= config.max_rounds {
                report.completed = false;
                report.rounds = round;
                return shutdown(Ok(report));
            }
            control.round.store(round, Ordering::Release);
            barrier.wait(); // release step
            barrier.wait(); // step done
            let mut delta = 0i64;
            let mut err = None;
            let mut lanes = Lanes::default();
            for slot in &step_out {
                let out = std::mem::take(&mut *slot.lock().expect("step slot poisoned"));
                delta += out.delta;
                if err.is_none() {
                    err = out.err;
                }
                lanes.targeted |= out.lanes.targeted;
                lanes.bcast |= out.lanes.bcast;
            }
            if let Some(e) = err {
                return shutdown(Err(e));
            }
            done_count = (done_count as i64 + delta) as usize;
            control.targeted.store(lanes.targeted, Ordering::Release);
            control.bcast.store(lanes.bcast, Ordering::Release);
            control.prefetch.store(lanes.targeted, Ordering::Release);
            barrier.wait(); // release route
            barrier.wait(); // route done
            let mut stats = RouteStats::default();
            for slot in &route_out {
                let s = std::mem::take(&mut *slot.lock().expect("route slot poisoned"));
                stats.max = stats.max.max(s.max);
                stats.bits += s.bits;
                stats.messages += s.messages;
                if stats.err.is_none() {
                    stats.err = s.err;
                }
            }
            if let Some(e) = stats.err {
                return shutdown(Err(e));
            }
            report.total_bits += stats.bits;
            report.messages += stats.messages;
            report.edge_load.record(stats.max);
            round += 1;
        }
    })
}

/// One worker's node range: the programs/RNGs/done flags it steps and the
/// inboxes it reads (step) and fills (route).
struct StepShard<'a, P: Program> {
    lo: usize,
    programs: &'a mut [P],
    rngs: &'a mut [StdRng],
    done: &'a mut [bool],
    inboxes: &'a mut [Vec<(NodeId, P::Msg)>],
}

impl<P: Program> StepShard<'_, P> {
    /// A shorter-lived view of the same shard (the pooled worker reuses
    /// its shard every round).
    fn reborrow(&mut self) -> StepShard<'_, P> {
        StepShard {
            lo: self.lo,
            programs: &mut *self.programs,
            rngs: &mut *self.rngs,
            done: &mut *self.done,
            inboxes: &mut *self.inboxes,
        }
    }
}

/// Step nodes `shard.lo ..`: run `on_round` with a slot sink over each
/// node's out-edges, and fold the done-flag scan into the same loop (no
/// separate O(n) `all(is_done)` pass per round).
fn step_range<P: Program>(
    graph: &Graph,
    plane: &MailboxPlane<P::Msg>,
    lookup: &mut NeighborIndex,
    round: u64,
    prefetch: bool,
    shard: StepShard<'_, P>,
) -> StepOut {
    let offsets = graph.offsets();
    let mut out = StepOut::default();
    let len = shard.programs.len();
    // When the previous round used the targeted lane, overlap its
    // scatter misses with program compute: a node's write targets are
    // statically its rev_out entries, issued PREFETCH_AHEAD nodes early.
    const PREFETCH_AHEAD: usize = 2;
    let lo = shard.lo;
    let prefetch_node = |i: usize| {
        let v = lo + i;
        for &e in &plane.rev[offsets[v]..offsets[v + 1]] {
            prefetch_for_write(plane.slots[e as usize].get());
        }
    };
    if prefetch {
        for i in 0..PREFETCH_AHEAD.min(len) {
            prefetch_node(i);
        }
    }
    for i in 0..len {
        let v = lo + i;
        if prefetch && i + PREFETCH_AHEAD < len && !shard.done[i + PREFETCH_AHEAD] {
            prefetch_node(i + PREFETCH_AHEAD);
        }
        let mut ctx = Ctx {
            node: v as NodeId,
            round,
            neighbors: graph.neighbors(v as NodeId),
            inbox: &shard.inboxes[i],
            rng: &mut shard.rngs[i],
            sink: Sink::Slots(SlotSink {
                slots: &plane.slots,
                spill: &plane.spill,
                bcast: &plane.bcast[v],
                bcast_spill: &plane.bcast_spill[v],
                rev_out: &plane.rev[offsets[v]..offsets[v + 1]],
                epoch: round,
                seq: 0,
                targeted: 0,
                broadcasts: 0,
                lookup: &mut *lookup,
                filled: false,
                err: &mut out.err,
            }),
        };
        shard.programs[i].on_round(&mut ctx);
        if let Sink::Slots(s) = &ctx.sink {
            out.lanes.targeted |= s.targeted > 0;
            out.lanes.bcast |= s.broadcasts > 0;
        }
        // Fold the done scan into the (cache-hot) step loop instead of
        // re-scanning all programs at the top of every round.
        let now = shard.programs[i].is_done();
        out.delta += i64::from(now) - i64::from(shard.done[i]);
        shard.done[i] = now;
    }
    out
}

/// Aggregated routing-phase counters for one round (or one worker shard).
#[derive(Default)]
struct RouteStats {
    max: u64,
    bits: u64,
    messages: u64,
    err: Option<SimError>,
}

/// Deliver to receivers `lo .. lo + inboxes.len()`: sweep each receiver's
/// contiguous targeted in-slots, gather its in-neighbors' broadcast
/// slots, check the per-edge bit counters, and fill the inbox in CSR
/// order (per sender, exact send order — merged by sequence tag when one
/// neighbor used both lanes). Lanes the round didn't use are skipped.
fn route_range<M: Message>(
    graph: &Graph,
    plane: &MailboxPlane<M>,
    inboxes: &mut [Vec<(NodeId, M)>],
    lo: usize,
    round: u64,
    bandwidth: Bandwidth,
    lanes: Lanes,
) -> RouteStats {
    let offsets = graph.offsets();
    let mut stats = RouteStats::default();
    if !lanes.targeted && !lanes.bcast {
        for inbox in inboxes.iter_mut() {
            inbox.clear();
        }
        return stats;
    }
    for (i, inbox) in inboxes.iter_mut().enumerate() {
        let v = lo + i;
        inbox.clear();
        let base = offsets[v];
        for (j, &u) in graph.neighbors(v as NodeId).iter().enumerate() {
            // Targeted lane: contiguous in-slot sweep.
            // SAFETY: slots are receiver-side keyed and routing workers
            // own disjoint receiver ranges, so slot `base + j` is reached
            // by exactly one worker; the phase barrier orders this access
            // after every step-phase write.
            let eslot = lanes
                .targeted
                .then(|| unsafe { &mut *plane.slots[base + j].get() })
                .filter(|s| s.stamp == round);
            // Broadcast lane: cache-resident gather by sender id.
            // SAFETY: broadcast slots are only *read* during routing (and
            // written solely by their owner in the step phase).
            let bslot = lanes
                .bcast
                .then(|| unsafe { &*plane.bcast[u as usize].get() })
                .filter(|b| b.stamp == round);
            if eslot.is_none() && bslot.is_none() {
                continue;
            }
            let edge_bits = eslot.as_ref().map_or(0u64, |s| u64::from(s.bits))
                + bslot.map_or(0u64, |b| u64::from(b.bits));
            if let Bandwidth::Strict(limit) = bandwidth {
                if edge_bits > limit {
                    stats.err = Some(SimError::BandwidthExceeded {
                        from: u,
                        to: v as NodeId,
                        bits: edge_bits,
                        limit,
                        round,
                    });
                    return stats;
                }
            }
            stats.max = stats.max.max(edge_bits);
            stats.bits += edge_bits;
            match (eslot, bslot) {
                (Some(s), None) => {
                    let msg = s.first.take().expect("live slot has a first message");
                    stats.messages += 1 + u64::from(s.spilled);
                    inbox.push((u, msg));
                    if s.spilled > 0 {
                        s.spilled = 0;
                        // SAFETY: same receiver-range exclusivity.
                        let sp = unsafe { &mut *plane.spill[base + j].get() };
                        inbox.extend(sp.drain(..).map(|(m, _)| (u, m)));
                    }
                }
                (None, Some(b)) => {
                    let msg = b.first.clone().expect("live slot has a first message");
                    stats.messages += 1 + u64::from(b.spilled);
                    inbox.push((u, msg));
                    if b.spilled > 0 {
                        // SAFETY: read-only, like the hot broadcast slot.
                        let sp = unsafe { &*plane.bcast_spill[u as usize].get() };
                        inbox.extend(sp.iter().map(|(m, _)| (u, m.clone())));
                    }
                }
                (Some(s), Some(b)) => {
                    // Rare: one neighbor used both lanes this round.
                    // Interleave back into exact send order by sequence.
                    stats.messages += 2 + u64::from(s.spilled) + u64::from(b.spilled);
                    let first_t = s.first.take().expect("live slot has a first message");
                    s.spilled = 0;
                    // SAFETY: as in the single-lane branches above.
                    let sp_t = unsafe { &mut *plane.spill[base + j].get() };
                    let sp_b = unsafe { &*plane.bcast_spill[u as usize].get() };
                    let mut te = std::iter::once((s.seq, first_t))
                        .chain(sp_t.drain(..).map(|(m, q)| (q, m)))
                        .peekable();
                    let first_b = b.first.clone().expect("live slot has a first message");
                    let mut be = std::iter::once((b.seq, first_b))
                        .chain(sp_b.iter().map(|(m, q)| (*q, m.clone())))
                        .peekable();
                    loop {
                        let take_targeted = match (te.peek(), be.peek()) {
                            (Some((tq, _)), Some((bq, _))) => tq < bq,
                            (Some(_), None) => true,
                            (None, Some(_)) => false,
                            (None, None) => break,
                        };
                        let (_, m) = if take_targeted {
                            te.next().expect("peeked")
                        } else {
                            be.next().expect("peeked")
                        };
                        inbox.push((u, m));
                    }
                }
                (None, None) => unreachable!("filtered above"),
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::bits_for_range;
    use crate::reference::run_reference;
    use graphs::gen;

    /// Flood the minimum id seen so far; finishes when stable for 2 rounds.
    #[derive(Clone)]
    pub(crate) struct MinFlood {
        pub(crate) min: NodeId,
        stable: u32,
        done: bool,
    }

    #[derive(Clone)]
    pub(crate) struct IdMsg(pub(crate) NodeId);

    impl Message for IdMsg {
        fn bit_cost(&self) -> u64 {
            bits_for_range(1 << 20)
        }
    }

    impl Program for MinFlood {
        type Msg = IdMsg;
        fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
            if self.done {
                return;
            }
            let before = self.min;
            if ctx.round() == 0 {
                self.min = ctx.id();
            }
            for &(_, IdMsg(m)) in ctx.inbox() {
                self.min = self.min.min(m);
            }
            if ctx.round() > 0 && self.min == before {
                self.stable += 1;
            } else {
                self.stable = 0;
            }
            // Diameter-bounded stability implies convergence on a path.
            if self.stable >= 64 {
                self.done = true;
            } else {
                ctx.broadcast(IdMsg(self.min));
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    pub(crate) fn min_flood_programs(n: usize) -> Vec<MinFlood> {
        (0..n)
            .map(|_| MinFlood {
                min: NodeId::MAX,
                stable: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn min_flood_converges_on_cycle() {
        let g = gen::cycle(32);
        let (progs, report) =
            run(&g, min_flood_programs(32), SimConfig::seeded(1)).expect("run failed");
        assert!(report.completed);
        assert!(progs.iter().all(|p| p.min == 0));
        assert!(report.messages > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::gnp(400, 0.02, 9);
        let (ps, rs) = run(
            &g,
            min_flood_programs(400),
            SimConfig {
                threads: 1,
                ..SimConfig::seeded(5)
            },
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(5)
            };
            let (pp, rp) = run(&g, min_flood_programs(400), cfg).unwrap();
            assert_eq!(rs, rp, "report diverged at threads={threads}");
            assert!(ps.iter().zip(&pp).all(|(a, b)| a.min == b.min));
        }
    }

    #[test]
    fn mailbox_plane_matches_reference_engine() {
        let g = gen::gnp(400, 0.02, 13);
        let (pr, rr) = run_reference(&g, min_flood_programs(400), SimConfig::seeded(6)).unwrap();
        for threads in [1, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(6)
            };
            let (pn, rn) = run(&g, min_flood_programs(400), cfg).unwrap();
            assert_eq!(
                rr, rn,
                "reports diverged from reference at threads={threads}"
            );
            assert!(pr.iter().zip(&pn).all(|(a, b)| a.min == b.min));
        }
    }

    #[test]
    fn strict_bandwidth_catches_overflow() {
        let g = gen::path(2);
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(10),
            ..SimConfig::seeded(0)
        };
        let err = match run(&g, min_flood_programs(2), cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected bandwidth error"),
        };
        assert!(matches!(err, SimError::BandwidthExceeded { limit: 10, .. }));
    }

    /// Sends `count` 4-bit messages to its sole neighbor each round —
    /// individually legal, cumulatively over a 10-bit strict cap.
    #[derive(Clone)]
    struct Dripper {
        count: usize,
        done: bool,
    }

    #[derive(Clone)]
    struct Drip;
    impl Message for Drip {
        fn bit_cost(&self) -> u64 {
            4
        }
    }

    impl Program for Dripper {
        type Msg = Drip;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Drip>) {
            if ctx.id() == 0 {
                for _ in 0..self.count {
                    ctx.send(1, Drip);
                }
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn strict_bandwidth_accumulates_across_slot_writes() {
        let g = gen::path(2);
        let programs = vec![
            Dripper {
                count: 3,
                done: false
            };
            2
        ];
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(10),
            ..SimConfig::seeded(0)
        };
        // Each Drip is 4 bits ≤ 10, but the slot counter reaches 12.
        let err = match run(&g, programs, cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected cumulative bandwidth error"),
        };
        assert_eq!(
            err,
            SimError::BandwidthExceeded {
                from: 0,
                to: 1,
                bits: 12,
                limit: 10,
                round: 0
            }
        );
        // Two messages (8 bits) fit.
        let programs = vec![
            Dripper {
                count: 2,
                done: false
            };
            2
        ];
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(10),
            ..SimConfig::seeded(0)
        };
        let (_, report) = run(&g, programs, cfg).unwrap();
        assert_eq!(report.max_edge_bits(), 8);
        assert_eq!(report.messages, 2);
    }

    /// Broadcast + targeted in one round must also sum per edge.
    #[derive(Clone)]
    struct MixedDripper {
        done: bool,
    }

    impl Program for MixedDripper {
        type Msg = Drip;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Drip>) {
            if ctx.id() == 0 {
                ctx.broadcast(Drip); // 4 bits on every out-edge
                ctx.send(1, Drip); // +4 targeted on (0,1)
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn strict_bandwidth_sums_broadcast_and_targeted_lanes() {
        let g = gen::path(2);
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(7),
            ..SimConfig::seeded(0)
        };
        let err = match run(&g, vec![MixedDripper { done: false }; 2], cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected bandwidth error"),
        };
        assert_eq!(
            err,
            SimError::BandwidthExceeded {
                from: 0,
                to: 1,
                bits: 8,
                limit: 7,
                round: 0
            }
        );
    }

    #[test]
    fn round_cap_reports_incomplete() {
        let g = gen::cycle(8);
        let cfg = SimConfig {
            max_rounds: 3,
            ..SimConfig::seeded(0)
        };
        let (_, report) = run(&g, min_flood_programs(8), cfg).unwrap();
        assert!(!report.completed);
        assert_eq!(report.rounds, 3);
    }

    /// A program that illegally messages a fixed target from node 3.
    #[derive(Clone)]
    struct BadSender {
        to: NodeId,
        done: bool,
    }
    impl Program for BadSender {
        type Msg = IdMsg;
        fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
            if ctx.id() == 3 {
                ctx.send(self.to, IdMsg(0));
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn non_neighbor_send_is_rejected() {
        // 3 is not adjacent to 0 on a path.
        let g = gen::path(4);
        let programs = (0..4).map(|_| BadSender { to: 0, done: false }).collect();
        let err = match run(&g, programs, SimConfig::seeded(0)) {
            Err(e) => e,
            Ok(_) => panic!("expected neighbor error"),
        };
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: 3,
                to: 0,
                round: 0
            }
        );
    }

    #[test]
    fn out_of_range_send_is_rejected() {
        let g = gen::path(4);
        let programs = (0..4)
            .map(|_| BadSender {
                to: 999,
                done: false,
            })
            .collect();
        let err = match run(&g, programs, SimConfig::seeded(0)) {
            Err(e) => e,
            Ok(_) => panic!("expected neighbor error"),
        };
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: 3,
                to: 999,
                round: 0
            }
        );
    }

    #[test]
    fn errors_are_deterministic_across_thread_counts() {
        // Big enough to shard; every node ≥ 300 misbehaves, and the
        // engine must still report the smallest offender.
        #[derive(Clone)]
        struct ManyBad {
            done: bool,
        }
        impl Program for ManyBad {
            type Msg = IdMsg;
            fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
                let me = ctx.id();
                if me >= 300 {
                    ctx.send(me, IdMsg(0)); // self-send: never a neighbor
                }
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let g = gen::cycle(500);
        for threads in [1, 2, 8] {
            let programs = (0..500).map(|_| ManyBad { done: false }).collect();
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(0)
            };
            let err = match run(&g, programs, cfg) {
                Err(e) => e,
                Ok(_) => panic!("expected neighbor error"),
            };
            assert_eq!(
                err,
                SimError::NotANeighbor {
                    from: 300,
                    to: 300,
                    round: 0
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn congest_bits_scales_with_log_n() {
        assert_eq!(SimConfig::congest_bits(1023, 1), 10);
        assert_eq!(SimConfig::congest_bits(1024, 2), 22);
        // Unified with message::bits_for_range (the id-width helper).
        for n in [0usize, 1, 2, 63, 64, 1 << 16] {
            assert_eq!(
                SimConfig::congest_bits(n, 1),
                bits_for_range(n as u64 + 1).max(1)
            );
        }
    }

    #[test]
    fn empty_graph_trivially_completes() {
        let g = gen::path(0);
        let (_, report) = run::<MinFlood>(&g, Vec::new(), SimConfig::seeded(0)).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn same_seed_same_transcript() {
        let g = gen::gnp(100, 0.05, 4);
        let (_, r1) = run(&g, min_flood_programs(100), SimConfig::seeded(11)).unwrap();
        let (_, r2) = run(&g, min_flood_programs(100), SimConfig::seeded(11)).unwrap();
        assert_eq!(r1, r2);
    }

    /// Round 0: interleaves both lanes — targeted, broadcast, targeted —
    /// with sequence-revealing payloads. Round 1: records the inbox.
    #[derive(Clone)]
    struct LaneMixer {
        seen: Vec<(NodeId, u64)>,
        done: bool,
    }

    #[derive(Clone)]
    struct Tagged(u64);
    impl Message for Tagged {
        fn bit_cost(&self) -> u64 {
            20
        }
    }

    impl Program for LaneMixer {
        type Msg = Tagged;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged>) {
            if ctx.round() == 0 {
                let me = u64::from(ctx.id());
                let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
                if let Some(&w) = neighbors.first() {
                    ctx.send(w, Tagged(me * 1000));
                }
                ctx.broadcast(Tagged(me * 1000 + 1));
                if let Some(&w) = neighbors.first() {
                    ctx.send(w, Tagged(me * 1000 + 2));
                }
            } else {
                self.seen = ctx.inbox().iter().map(|&(u, Tagged(t))| (u, t)).collect();
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    /// The two lanes merge back into exact send order, matching the
    /// reference plane across thread counts.
    #[test]
    fn mixed_lane_sends_interleave_in_send_order() {
        let n = 300usize;
        let g = gen::gnp(n, 0.03, 31);
        let mk = || {
            (0..n)
                .map(|_| LaneMixer {
                    seen: Vec::new(),
                    done: false,
                })
                .collect::<Vec<_>>()
        };
        let (base, rb) = run_reference(&g, mk(), SimConfig::seeded(2)).unwrap();
        for threads in [1, 2, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(2)
            };
            let (progs, rn) = run(&g, mk(), cfg).unwrap();
            assert_eq!(rb, rn, "threads={threads}");
            for (v, p) in progs.iter().enumerate() {
                assert_eq!(p.seen, base[v].seen, "threads={threads}, node {v}");
            }
        }
    }

    /// Round 0: sends a sequence-numbered message to every neighbor in
    /// **descending** id order, plus a second message to the smallest
    /// neighbor. Round 1: records the inbox verbatim.
    #[derive(Clone)]
    struct ShuffledSender {
        seen: Vec<(NodeId, u64)>,
        done: bool,
    }

    impl Program for ShuffledSender {
        type Msg = Tagged;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged>) {
            if ctx.round() == 0 {
                let me = u64::from(ctx.id());
                let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
                for (seq, &w) in neighbors.iter().rev().enumerate() {
                    ctx.send(w, Tagged(me * 1000 + seq as u64));
                }
                if let Some(&w) = neighbors.first() {
                    ctx.send(w, Tagged(me * 1000 + 999));
                }
            } else {
                self.seen = ctx.inbox().iter().map(|&(u, Tagged(t))| (u, t)).collect();
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    /// Satellite regression: inbox arrival order is CSR order (sorted by
    /// sender; per sender, send-call order) no matter how sends were
    /// shuffled, and identical across thread counts and to the reference
    /// plane.
    #[test]
    fn shuffled_sends_arrive_in_deterministic_csr_order() {
        let n = 300usize; // above PAR_MIN_NODES so threads>1 really shard
        let g = gen::gnp(n, 0.03, 21);
        let mk = || {
            (0..n)
                .map(|_| ShuffledSender {
                    seen: Vec::new(),
                    done: false,
                })
                .collect::<Vec<_>>()
        };
        let (base, _) = run_reference(&g, mk(), SimConfig::seeded(2)).unwrap();
        for threads in [1, 2, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(2)
            };
            let (progs, _) = run(&g, mk(), cfg).unwrap();
            for (v, p) in progs.iter().enumerate() {
                // Sorted by sender id.
                assert!(
                    p.seen.windows(2).all(|w| w[0].0 <= w[1].0),
                    "node {v} inbox not sorted by sender at threads={threads}"
                );
                // Per sender, send order: the descending-order sends'
                // tag comes before the duplicate 999-tagged message.
                for w in p.seen.windows(2) {
                    if w[0].0 == w[1].0 {
                        assert!(w[0].1 % 1000 != 999, "999 tag must arrive last");
                    }
                }
                // Byte-identical to the reference plane.
                assert_eq!(p.seen, base[v].seen, "threads={threads}, node {v}");
            }
        }
    }
}
