//! The round-synchronous simulation engine: configuration types and the
//! one-shot [`run`] entry point.
//!
//! [`run`] is a thin wrapper that builds a throwaway [`crate::Session`]
//! and executes one pass on it. The session (see [`crate::session`])
//! owns the two-lane CSR mailbox plane ([`crate::plane`]), the worker
//! pool, the per-node RNGs, and the active-frontier scheduler; drivers
//! that execute many passes over one graph should hold a session and
//! reuse it — the results are byte-identical, the per-pass setup is
//! amortized away. The pre-mailbox sort-and-scatter plane is preserved
//! as [`crate::reference::run_reference`] for differential tests and
//! benchmarks.

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::message::bits_for_range;
use crate::metrics::RunReport;
use crate::program::Program;
use crate::sched::SchedulePlan;
use crate::session::Session;
use graphs::Graph;

/// Bandwidth policy for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bandwidth {
    /// Abort with [`SimError::BandwidthExceeded`] if any directed edge
    /// carries more than this many bits in one round. Used in tests to
    /// prove a protocol CONGEST-legal.
    Strict(u64),
    /// Record loads without enforcing; overflows show up in
    /// [`RunReport::normalized_rounds`].
    Track,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Global seed; node `v`'s RNG is seeded from `(seed, v)`.
    pub seed: u64,
    /// Bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Hard cap on rounds (a run not finished by then reports
    /// `completed = false`).
    pub max_rounds: u64,
    /// Worker threads for the step and routing phases (1 = sequential).
    /// Results are identical regardless of thread count.
    pub threads: usize,
    /// Ownership shards for the session engine's owner/ghost protocol
    /// (see [`Session`](crate::Session)): the node range is split into this many
    /// contiguous owned ranges, each with its own frontier, lookup
    /// scratch, and exchange lanes. `0` (the default) derives the count
    /// from `threads` exactly as before this knob existed; an explicit
    /// count is honored even on small graphs (useful for differential
    /// tests). Results are identical regardless of shard count; the
    /// preserved engine generations ([`crate::reference`]) ignore it.
    pub shards: usize,
    /// Deterministic fault injection between send and delivery (see
    /// [`FaultPlan`]). The default, [`FaultPlan::none`], leaves every
    /// engine on its unmodified fault-free path — bit for bit.
    pub fault: FaultPlan,
    /// Asynchronous execution under a deterministic schedule adversary,
    /// run through the α-synchronizer (see [`SchedulePlan`]): the
    /// transcript stays byte-identical to the synchronous engine while
    /// [`RunReport::sched`] records the synchronizer's overhead, and a
    /// wedged schedule fails loud with
    /// [`SimError::ScheduleStalled`]. The default,
    /// [`SchedulePlan::none`], leaves every engine on its unmodified
    /// lock-step path — bit for bit.
    pub sched: SchedulePlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            bandwidth: Bandwidth::Track,
            max_rounds: 100_000,
            threads: 1,
            shards: 0,
            fault: FaultPlan::none(),
            sched: SchedulePlan::none(),
        }
    }
}

impl SimConfig {
    /// A config with the given seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// The standard CONGEST cap for an `n`-node graph:
    /// `multiplier · ⌈log₂(n+1)⌉` bits per edge per round (at least
    /// `multiplier`, so the degenerate `n ∈ {0, 1}` graphs keep a channel).
    ///
    /// The id width is exactly [`bits_for_range`]`(n + 1)` — the bits
    /// needed for an integer in `[0, n]`.
    ///
    /// # Example
    ///
    /// ```
    /// use congest::SimConfig;
    /// use congest::message::bits_for_range;
    ///
    /// assert_eq!(SimConfig::congest_bits(1023, 1), 10);
    /// assert_eq!(SimConfig::congest_bits(1024, 2), 22);
    /// assert_eq!(SimConfig::congest_bits(0, 3), 3);
    /// assert_eq!(SimConfig::congest_bits(5000, 1), bits_for_range(5001));
    /// ```
    pub fn congest_bits(n: usize, multiplier: u64) -> u64 {
        multiplier * bits_for_range(n as u64 + 1).max(1)
    }
}

/// Run `programs` (one per node of `graph`) to completion on a one-shot
/// [`Session`].
///
/// Returns the final programs and the run report. Multi-pass drivers
/// should construct a [`Session`] directly and reuse it per pass — same
/// results, none of the per-pass plane/scratch/pool setup this wrapper
/// pays.
///
/// # Errors
///
/// [`SimError::NotANeighbor`] if a program messages a non-neighbor, or
/// [`SimError::BandwidthExceeded`] in strict mode. When several nodes
/// offend in the same round, the error reported is the first one in
/// node-id order (senders for `NotANeighbor`, receivers for
/// `BandwidthExceeded`) — independent of the thread count.
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run<P: Program>(
    graph: &Graph,
    mut programs: Vec<P>,
    config: SimConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    assert_eq!(
        programs.len(),
        graph.n(),
        "need exactly one program per node"
    );
    let mut session: Session<'_, P::Msg> = Session::new(graph, config);
    let report = session.run(&mut programs, config.seed)?;
    Ok((programs, report))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::message::{bits_for_range, Message};
    use crate::program::Ctx;
    use crate::reference::run_reference;
    use graphs::{gen, NodeId};

    /// Flood the minimum id seen so far; finishes when stable for 2 rounds.
    #[derive(Clone)]
    pub(crate) struct MinFlood {
        pub(crate) min: NodeId,
        stable: u32,
        done: bool,
    }

    #[derive(Clone)]
    pub(crate) struct IdMsg(pub(crate) NodeId);

    impl Message for IdMsg {
        fn bit_cost(&self) -> u64 {
            bits_for_range(1 << 20)
        }
    }

    impl Program for MinFlood {
        type Msg = IdMsg;
        fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
            if self.done {
                return;
            }
            let before = self.min;
            if ctx.round() == 0 {
                self.min = ctx.id();
            }
            for &(_, IdMsg(m)) in ctx.inbox() {
                self.min = self.min.min(m);
            }
            if ctx.round() > 0 && self.min == before {
                self.stable += 1;
            } else {
                self.stable = 0;
            }
            // Diameter-bounded stability implies convergence on a path.
            if self.stable >= 64 {
                self.done = true;
            } else {
                ctx.broadcast(IdMsg(self.min));
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    pub(crate) fn min_flood_programs(n: usize) -> Vec<MinFlood> {
        (0..n)
            .map(|_| MinFlood {
                min: NodeId::MAX,
                stable: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn min_flood_converges_on_cycle() {
        let g = gen::cycle(32);
        let (progs, report) =
            run(&g, min_flood_programs(32), SimConfig::seeded(1)).expect("run failed");
        assert!(report.completed);
        assert!(progs.iter().all(|p| p.min == 0));
        assert!(report.messages > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::gnp(400, 0.02, 9);
        let (ps, rs) = run(
            &g,
            min_flood_programs(400),
            SimConfig {
                threads: 1,
                ..SimConfig::seeded(5)
            },
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(5)
            };
            let (pp, rp) = run(&g, min_flood_programs(400), cfg).unwrap();
            assert_eq!(rs, rp, "report diverged at threads={threads}");
            assert!(ps.iter().zip(&pp).all(|(a, b)| a.min == b.min));
        }
    }

    #[test]
    fn mailbox_plane_matches_reference_engine() {
        let g = gen::gnp(400, 0.02, 13);
        let (pr, rr) = run_reference(&g, min_flood_programs(400), SimConfig::seeded(6)).unwrap();
        for threads in [1, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(6)
            };
            let (pn, rn) = run(&g, min_flood_programs(400), cfg).unwrap();
            assert_eq!(
                rr, rn,
                "reports diverged from reference at threads={threads}"
            );
            assert!(pr.iter().zip(&pn).all(|(a, b)| a.min == b.min));
        }
    }

    #[test]
    fn strict_bandwidth_catches_overflow() {
        let g = gen::path(2);
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(10),
            ..SimConfig::seeded(0)
        };
        let err = match run(&g, min_flood_programs(2), cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected bandwidth error"),
        };
        assert!(matches!(err, SimError::BandwidthExceeded { limit: 10, .. }));
    }

    /// Sends `count` 4-bit messages to its sole neighbor each round —
    /// individually legal, cumulatively over a 10-bit strict cap.
    #[derive(Clone)]
    struct Dripper {
        count: usize,
        done: bool,
    }

    #[derive(Clone)]
    struct Drip;
    impl Message for Drip {
        fn bit_cost(&self) -> u64 {
            4
        }
    }

    impl Program for Dripper {
        type Msg = Drip;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Drip>) {
            if ctx.id() == 0 {
                for _ in 0..self.count {
                    ctx.send(1, Drip);
                }
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn strict_bandwidth_accumulates_across_slot_writes() {
        let g = gen::path(2);
        let programs = vec![
            Dripper {
                count: 3,
                done: false
            };
            2
        ];
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(10),
            ..SimConfig::seeded(0)
        };
        // Each Drip is 4 bits ≤ 10, but the slot counter reaches 12.
        let err = match run(&g, programs, cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected cumulative bandwidth error"),
        };
        assert_eq!(
            err,
            SimError::BandwidthExceeded {
                from: 0,
                to: 1,
                bits: 12,
                limit: 10,
                round: 0
            }
        );
        // Two messages (8 bits) fit.
        let programs = vec![
            Dripper {
                count: 2,
                done: false
            };
            2
        ];
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(10),
            ..SimConfig::seeded(0)
        };
        let (_, report) = run(&g, programs, cfg).unwrap();
        assert_eq!(report.max_edge_bits(), 8);
        assert_eq!(report.messages, 2);
    }

    /// Broadcast + targeted in one round must also sum per edge.
    #[derive(Clone)]
    struct MixedDripper {
        done: bool,
    }

    impl Program for MixedDripper {
        type Msg = Drip;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Drip>) {
            if ctx.id() == 0 {
                ctx.broadcast(Drip); // 4 bits on every out-edge
                ctx.send(1, Drip); // +4 targeted on (0,1)
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn strict_bandwidth_sums_broadcast_and_targeted_lanes() {
        let g = gen::path(2);
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(7),
            ..SimConfig::seeded(0)
        };
        let err = match run(&g, vec![MixedDripper { done: false }; 2], cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected bandwidth error"),
        };
        assert_eq!(
            err,
            SimError::BandwidthExceeded {
                from: 0,
                to: 1,
                bits: 8,
                limit: 7,
                round: 0
            }
        );
    }

    #[test]
    fn round_cap_reports_incomplete() {
        let g = gen::cycle(8);
        let cfg = SimConfig {
            max_rounds: 3,
            ..SimConfig::seeded(0)
        };
        let (_, report) = run(&g, min_flood_programs(8), cfg).unwrap();
        assert!(!report.completed);
        assert_eq!(report.rounds, 3);
    }

    /// A program that illegally messages a fixed target from node 3.
    #[derive(Clone)]
    struct BadSender {
        to: NodeId,
        done: bool,
    }
    impl Program for BadSender {
        type Msg = IdMsg;
        fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
            if ctx.id() == 3 {
                ctx.send(self.to, IdMsg(0));
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn non_neighbor_send_is_rejected() {
        // 3 is not adjacent to 0 on a path.
        let g = gen::path(4);
        let programs = (0..4).map(|_| BadSender { to: 0, done: false }).collect();
        let err = match run(&g, programs, SimConfig::seeded(0)) {
            Err(e) => e,
            Ok(_) => panic!("expected neighbor error"),
        };
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: 3,
                to: 0,
                round: 0
            }
        );
    }

    #[test]
    fn out_of_range_send_is_rejected() {
        let g = gen::path(4);
        let programs = (0..4)
            .map(|_| BadSender {
                to: 999,
                done: false,
            })
            .collect();
        let err = match run(&g, programs, SimConfig::seeded(0)) {
            Err(e) => e,
            Ok(_) => panic!("expected neighbor error"),
        };
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: 3,
                to: 999,
                round: 0
            }
        );
    }

    #[test]
    fn errors_are_deterministic_across_thread_counts() {
        // Big enough to shard; every node ≥ 300 misbehaves, and the
        // engine must still report the smallest offender.
        #[derive(Clone)]
        struct ManyBad {
            done: bool,
        }
        impl Program for ManyBad {
            type Msg = IdMsg;
            fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
                let me = ctx.id();
                if me >= 300 {
                    ctx.send(me, IdMsg(0)); // self-send: never a neighbor
                }
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let g = gen::cycle(500);
        for threads in [1, 2, 8] {
            let programs = (0..500).map(|_| ManyBad { done: false }).collect();
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(0)
            };
            let err = match run(&g, programs, cfg) {
                Err(e) => e,
                Ok(_) => panic!("expected neighbor error"),
            };
            assert_eq!(
                err,
                SimError::NotANeighbor {
                    from: 300,
                    to: 300,
                    round: 0
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn congest_bits_scales_with_log_n() {
        assert_eq!(SimConfig::congest_bits(1023, 1), 10);
        assert_eq!(SimConfig::congest_bits(1024, 2), 22);
        // Unified with message::bits_for_range (the id-width helper).
        for n in [0usize, 1, 2, 63, 64, 1 << 16] {
            assert_eq!(
                SimConfig::congest_bits(n, 1),
                bits_for_range(n as u64 + 1).max(1)
            );
        }
    }

    #[test]
    fn empty_graph_trivially_completes() {
        let g = gen::path(0);
        let (_, report) = run::<MinFlood>(&g, Vec::new(), SimConfig::seeded(0)).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn same_seed_same_transcript() {
        let g = gen::gnp(100, 0.05, 4);
        let (_, r1) = run(&g, min_flood_programs(100), SimConfig::seeded(11)).unwrap();
        let (_, r2) = run(&g, min_flood_programs(100), SimConfig::seeded(11)).unwrap();
        assert_eq!(r1, r2);
    }

    /// Round 0: interleaves both lanes — targeted, broadcast, targeted —
    /// with sequence-revealing payloads. Round 1: records the inbox.
    #[derive(Clone)]
    struct LaneMixer {
        seen: Vec<(NodeId, u64)>,
        done: bool,
    }

    #[derive(Clone)]
    struct Tagged(u64);
    impl Message for Tagged {
        fn bit_cost(&self) -> u64 {
            20
        }
    }

    impl Program for LaneMixer {
        type Msg = Tagged;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged>) {
            if ctx.round() == 0 {
                let me = u64::from(ctx.id());
                let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
                if let Some(&w) = neighbors.first() {
                    ctx.send(w, Tagged(me * 1000));
                }
                ctx.broadcast(Tagged(me * 1000 + 1));
                if let Some(&w) = neighbors.first() {
                    ctx.send(w, Tagged(me * 1000 + 2));
                }
            } else {
                self.seen = ctx.inbox().iter().map(|&(u, Tagged(t))| (u, t)).collect();
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    /// The two lanes merge back into exact send order, matching the
    /// reference plane across thread counts.
    #[test]
    fn mixed_lane_sends_interleave_in_send_order() {
        let n = 300usize;
        let g = gen::gnp(n, 0.03, 31);
        let mk = || {
            (0..n)
                .map(|_| LaneMixer {
                    seen: Vec::new(),
                    done: false,
                })
                .collect::<Vec<_>>()
        };
        let (base, rb) = run_reference(&g, mk(), SimConfig::seeded(2)).unwrap();
        for threads in [1, 2, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(2)
            };
            let (progs, rn) = run(&g, mk(), cfg).unwrap();
            assert_eq!(rb, rn, "threads={threads}");
            for (v, p) in progs.iter().enumerate() {
                assert_eq!(p.seen, base[v].seen, "threads={threads}, node {v}");
            }
        }
    }

    /// Round 0: sends a sequence-numbered message to every neighbor in
    /// **descending** id order, plus a second message to the smallest
    /// neighbor. Round 1: records the inbox verbatim.
    #[derive(Clone)]
    struct ShuffledSender {
        seen: Vec<(NodeId, u64)>,
        done: bool,
    }

    impl Program for ShuffledSender {
        type Msg = Tagged;
        fn on_round(&mut self, ctx: &mut Ctx<'_, Tagged>) {
            if ctx.round() == 0 {
                let me = u64::from(ctx.id());
                let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
                for (seq, &w) in neighbors.iter().rev().enumerate() {
                    ctx.send(w, Tagged(me * 1000 + seq as u64));
                }
                if let Some(&w) = neighbors.first() {
                    ctx.send(w, Tagged(me * 1000 + 999));
                }
            } else {
                self.seen = ctx.inbox().iter().map(|&(u, Tagged(t))| (u, t)).collect();
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    /// Satellite regression: inbox arrival order is CSR order (sorted by
    /// sender; per sender, send-call order) no matter how sends were
    /// shuffled, and identical across thread counts and to the reference
    /// plane.
    #[test]
    fn shuffled_sends_arrive_in_deterministic_csr_order() {
        let n = 300usize; // above PAR_MIN_NODES so threads>1 really shard
        let g = gen::gnp(n, 0.03, 21);
        let mk = || {
            (0..n)
                .map(|_| ShuffledSender {
                    seen: Vec::new(),
                    done: false,
                })
                .collect::<Vec<_>>()
        };
        let (base, _) = run_reference(&g, mk(), SimConfig::seeded(2)).unwrap();
        for threads in [1, 2, 8] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::seeded(2)
            };
            let (progs, _) = run(&g, mk(), cfg).unwrap();
            for (v, p) in progs.iter().enumerate() {
                // Sorted by sender id.
                assert!(
                    p.seen.windows(2).all(|w| w[0].0 <= w[1].0),
                    "node {v} inbox not sorted by sender at threads={threads}"
                );
                // Per sender, send order: the descending-order sends'
                // tag comes before the duplicate 999-tagged message.
                for w in p.seen.windows(2) {
                    if w[0].0 == w[1].0 {
                        assert!(w[0].1 % 1000 != 999, "999 tag must arrive last");
                    }
                }
                // Byte-identical to the reference plane.
                assert_eq!(p.seen, base[v].seen, "threads={threads}, node {v}");
            }
        }
    }
}
