//! The round-synchronous simulation engine.

use crate::error::SimError;
use crate::message::Message;
use crate::metrics::RunReport;
use crate::program::{Ctx, Program};
use graphs::{Graph, NodeId};
use prand::mix::mix2;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bandwidth policy for a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bandwidth {
    /// Abort with [`SimError::BandwidthExceeded`] if any directed edge
    /// carries more than this many bits in one round. Used in tests to
    /// prove a protocol CONGEST-legal.
    Strict(u64),
    /// Record loads without enforcing; overflows show up in
    /// [`RunReport::normalized_rounds`].
    Track,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Global seed; node `v`'s RNG is seeded from `(seed, v)`.
    pub seed: u64,
    /// Bandwidth policy.
    pub bandwidth: Bandwidth,
    /// Hard cap on rounds (a run not finished by then reports
    /// `completed = false`).
    pub max_rounds: u64,
    /// Worker threads for the node-step phase (1 = sequential). Results
    /// are identical regardless of thread count.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            bandwidth: Bandwidth::Track,
            max_rounds: 100_000,
            threads: 1,
        }
    }
}

impl SimConfig {
    /// A config with the given seed and defaults otherwise.
    pub fn seeded(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// The standard CONGEST cap for an `n`-node graph:
    /// `multiplier · ⌈log₂(n+1)⌉` bits per edge per round.
    pub fn congest_bits(n: usize, multiplier: u64) -> u64 {
        let log_n = u64::from(64 - (n as u64).leading_zeros()).max(1);
        multiplier * log_n
    }
}

/// Run `programs` (one per node of `graph`) to completion.
///
/// Returns the final programs and the run report.
///
/// # Errors
///
/// [`SimError::NotANeighbor`] if a program messages a non-neighbor, or
/// [`SimError::BandwidthExceeded`] in strict mode.
///
/// # Panics
///
/// Panics if `programs.len() != graph.n()`.
pub fn run<P: Program>(
    graph: &Graph,
    mut programs: Vec<P>,
    config: SimConfig,
) -> Result<(Vec<P>, RunReport), SimError> {
    assert_eq!(
        programs.len(),
        graph.n(),
        "need exactly one program per node"
    );
    let n = graph.n();
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| StdRng::seed_from_u64(mix2(config.seed, v as u64)))
        .collect();
    let mut inboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut outboxes: Vec<Vec<(NodeId, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut report = RunReport {
        completed: true,
        ..Default::default()
    };

    let mut round = 0u64;
    loop {
        if programs.iter().all(|p| p.is_done()) {
            break;
        }
        if round >= config.max_rounds {
            report.completed = false;
            break;
        }

        // Step phase: every node reads its inbox and fills its outbox.
        step_all(
            graph,
            &mut programs,
            &mut rngs,
            &inboxes,
            &mut outboxes,
            round,
            config.threads,
        );

        // Routing phase: account bandwidth and deliver.
        for inbox in &mut inboxes {
            inbox.clear();
        }
        let mut round_max_edge_bits = 0u64;
        for (src, out) in outboxes.iter_mut().enumerate() {
            if out.is_empty() {
                continue;
            }
            // Group by destination to compute per-directed-edge load.
            out.sort_by_key(|&(dst, _)| dst);
            let mut i = 0;
            while i < out.len() {
                let dst = out[i].0;
                if graph.neighbors(src as NodeId).binary_search(&dst).is_err() {
                    return Err(SimError::NotANeighbor {
                        from: src as NodeId,
                        to: dst,
                        round,
                    });
                }
                let mut edge_bits = 0u64;
                let mut j = i;
                while j < out.len() && out[j].0 == dst {
                    edge_bits += out[j].1.bit_cost();
                    j += 1;
                }
                if let Bandwidth::Strict(limit) = config.bandwidth {
                    if edge_bits > limit {
                        return Err(SimError::BandwidthExceeded {
                            from: src as NodeId,
                            to: dst,
                            bits: edge_bits,
                            limit,
                            round,
                        });
                    }
                }
                round_max_edge_bits = round_max_edge_bits.max(edge_bits);
                report.total_bits += edge_bits;
                report.messages += (j - i) as u64;
                i = j;
            }
            for (dst, msg) in out.drain(..) {
                inboxes[dst as usize].push((src as NodeId, msg));
            }
        }
        report.max_edge_bits_per_round.push(round_max_edge_bits);
        round += 1;
    }
    report.rounds = round;
    Ok((programs, report))
}

/// Execute the step phase, optionally sharded over threads. Each node only
/// touches its own program, RNG and outbox, so sharding cannot change
/// results.
fn step_all<P: Program>(
    graph: &Graph,
    programs: &mut [P],
    rngs: &mut [StdRng],
    inboxes: &[Vec<(NodeId, P::Msg)>],
    outboxes: &mut [Vec<(NodeId, P::Msg)>],
    round: u64,
    threads: usize,
) {
    let n = programs.len();
    if threads <= 1 || n < 256 {
        for v in 0..n {
            step_one(
                graph,
                &mut programs[v],
                &mut rngs[v],
                &inboxes[v],
                &mut outboxes[v],
                v,
                round,
            );
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut prog_chunks = programs.chunks_mut(chunk);
        let mut rng_chunks = rngs.chunks_mut(chunk);
        let mut out_chunks = outboxes.chunks_mut(chunk);
        let mut base = 0usize;
        for _ in 0..threads {
            let (Some(ps), Some(rs), Some(os)) =
                (prog_chunks.next(), rng_chunks.next(), out_chunks.next())
            else {
                break;
            };
            let start = base;
            base += ps.len();
            let inboxes = &inboxes;
            scope.spawn(move || {
                for (i, ((p, r), o)) in ps
                    .iter_mut()
                    .zip(rs.iter_mut())
                    .zip(os.iter_mut())
                    .enumerate()
                {
                    let v = start + i;
                    step_one(graph, p, r, &inboxes[v], o, v, round);
                }
            });
        }
    });
}

fn step_one<P: Program>(
    graph: &Graph,
    program: &mut P,
    rng: &mut StdRng,
    inbox: &[(NodeId, P::Msg)],
    outbox: &mut Vec<(NodeId, P::Msg)>,
    v: usize,
    round: u64,
) {
    let mut ctx = Ctx {
        node: v as NodeId,
        round,
        neighbors: graph.neighbors(v as NodeId),
        inbox,
        rng,
        outbox,
    };
    program.on_round(&mut ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::bits_for_range;
    use graphs::gen;

    /// Flood the minimum id seen so far; finishes when stable for 2 rounds.
    #[derive(Clone)]
    struct MinFlood {
        min: NodeId,
        stable: u32,
        done: bool,
    }

    #[derive(Clone)]
    struct IdMsg(NodeId);

    impl Message for IdMsg {
        fn bit_cost(&self) -> u64 {
            bits_for_range(1 << 20)
        }
    }

    impl Program for MinFlood {
        type Msg = IdMsg;
        fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
            if self.done {
                return;
            }
            let before = self.min;
            if ctx.round() == 0 {
                self.min = ctx.id();
            }
            for &(_, IdMsg(m)) in ctx.inbox() {
                self.min = self.min.min(m);
            }
            if ctx.round() > 0 && self.min == before {
                self.stable += 1;
            } else {
                self.stable = 0;
            }
            // Diameter-bounded stability implies convergence on a path.
            if self.stable >= 64 {
                self.done = true;
            } else {
                ctx.broadcast(IdMsg(self.min));
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn min_flood_programs(n: usize) -> Vec<MinFlood> {
        (0..n)
            .map(|_| MinFlood {
                min: NodeId::MAX,
                stable: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn min_flood_converges_on_cycle() {
        let g = gen::cycle(32);
        let (progs, report) =
            run(&g, min_flood_programs(32), SimConfig::seeded(1)).expect("run failed");
        assert!(report.completed);
        assert!(progs.iter().all(|p| p.min == 0));
        assert!(report.messages > 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::gnp(400, 0.02, 9);
        let seq_cfg = SimConfig {
            threads: 1,
            ..SimConfig::seeded(5)
        };
        let par_cfg = SimConfig {
            threads: 4,
            ..SimConfig::seeded(5)
        };
        let (ps, rs) = run(&g, min_flood_programs(400), seq_cfg).unwrap();
        let (pp, rp) = run(&g, min_flood_programs(400), par_cfg).unwrap();
        assert_eq!(rs, rp);
        assert!(ps.iter().zip(&pp).all(|(a, b)| a.min == b.min));
    }

    #[test]
    fn strict_bandwidth_catches_overflow() {
        let g = gen::path(2);
        let cfg = SimConfig {
            bandwidth: Bandwidth::Strict(10),
            ..SimConfig::seeded(0)
        };
        let err = match run(&g, min_flood_programs(2), cfg) {
            Err(e) => e,
            Ok(_) => panic!("expected bandwidth error"),
        };
        assert!(matches!(err, SimError::BandwidthExceeded { limit: 10, .. }));
    }

    #[test]
    fn round_cap_reports_incomplete() {
        let g = gen::cycle(8);
        let cfg = SimConfig {
            max_rounds: 3,
            ..SimConfig::seeded(0)
        };
        let (_, report) = run(&g, min_flood_programs(8), cfg).unwrap();
        assert!(!report.completed);
        assert_eq!(report.rounds, 3);
    }

    /// A program that illegally messages node 0 from everywhere.
    #[derive(Clone)]
    struct BadSender {
        done: bool,
    }
    impl Program for BadSender {
        type Msg = IdMsg;
        fn on_round(&mut self, ctx: &mut Ctx<'_, IdMsg>) {
            if ctx.id() == 3 {
                ctx.send(0, IdMsg(0)); // 3 is not adjacent to 0 on a path
            }
            self.done = true;
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn non_neighbor_send_is_rejected() {
        let g = gen::path(4);
        let programs = (0..4).map(|_| BadSender { done: false }).collect();
        let err = match run(&g, programs, SimConfig::seeded(0)) {
            Err(e) => e,
            Ok(_) => panic!("expected neighbor error"),
        };
        assert_eq!(
            err,
            SimError::NotANeighbor {
                from: 3,
                to: 0,
                round: 0
            }
        );
    }

    #[test]
    fn congest_bits_scales_with_log_n() {
        assert_eq!(SimConfig::congest_bits(1023, 1), 10);
        assert_eq!(SimConfig::congest_bits(1024, 2), 22);
    }

    #[test]
    fn empty_graph_trivially_completes() {
        let g = gen::path(0);
        let (_, report) = run::<MinFlood>(&g, Vec::new(), SimConfig::seeded(0)).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn same_seed_same_transcript() {
        let g = gen::gnp(100, 0.05, 4);
        let (_, r1) = run(&g, min_flood_programs(100), SimConfig::seeded(11)).unwrap();
        let (_, r2) = run(&g, min_flood_programs(100), SimConfig::seeded(11)).unwrap();
        assert_eq!(r1, r2);
    }
}
