//! Two-party transcript accounting.
//!
//! `EstimateSimilarity` and `JointSample` (Algs. 1–2) are two-party
//! procedures run on an edge. The estimation crate provides both a pure
//! in-memory form (for statistical experiments over many set pairs, with
//! no engine overhead) and a CONGEST-program form. The in-memory form
//! accounts its communication through [`BitTally`], so Lemma 2's message
//! cost claim stays measurable.

/// Tallies bits and message flights exchanged between two parties.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitTally {
    bits_a_to_b: u64,
    bits_b_to_a: u64,
    flights: u64,
}

impl BitTally {
    /// A fresh, empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a message of `bits` from party A to party B.
    pub fn a_to_b(&mut self, bits: u64) {
        self.bits_a_to_b += bits;
        self.flights += 1;
    }

    /// Record a message of `bits` from party B to party A.
    pub fn b_to_a(&mut self, bits: u64) {
        self.bits_b_to_a += bits;
        self.flights += 1;
    }

    /// Record a symmetric exchange (both directions, `bits` each).
    pub fn exchange(&mut self, bits: u64) {
        self.a_to_b(bits);
        self.b_to_a(bits);
    }

    /// Total bits in both directions.
    pub fn total_bits(&self) -> u64 {
        self.bits_a_to_b + self.bits_b_to_a
    }

    /// The larger of the two directional totals — what a CONGEST edge
    /// would have to carry.
    pub fn max_direction_bits(&self) -> u64 {
        self.bits_a_to_b.max(self.bits_b_to_a)
    }

    /// Number of message flights recorded.
    pub fn flights(&self) -> u64 {
        self.flights
    }

    /// CONGEST rounds needed to realize this transcript with the given
    /// per-round bandwidth (each direction serialized independently; the
    /// two directions ride in parallel).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth == 0`.
    pub fn rounds(&self, bandwidth: u64) -> u64 {
        assert!(bandwidth > 0, "bandwidth must be positive");
        self.max_direction_bits()
            .div_ceil(bandwidth)
            .max(u64::from(self.flights > 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates() {
        let mut t = BitTally::new();
        t.a_to_b(10);
        t.b_to_a(25);
        t.exchange(5);
        assert_eq!(t.total_bits(), 45);
        assert_eq!(t.max_direction_bits(), 30);
        assert_eq!(t.flights(), 4);
    }

    #[test]
    fn rounds_ceiling() {
        let mut t = BitTally::new();
        t.exchange(65);
        assert_eq!(t.rounds(32), 3);
        assert_eq!(t.rounds(65), 1);
        let empty = BitTally::new();
        assert_eq!(empty.rounds(32), 0);
    }
}
