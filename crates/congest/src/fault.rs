//! Deterministic fault injection between send and delivery.
//!
//! A [`FaultPlan`] describes a lossy network: per-bundle drop, delay, and
//! duplication probabilities, a per-round abort probability (a modeled
//! crash/timeout surfaced as [`SimError::FaultInjected`]), and an optional
//! truncate-to-cap mode that clips over-budget bundles instead of failing
//! a strict run. The *bundle* — everything one sender puts on one directed
//! edge in one round, in send order — is the unit every decision applies
//! to, because it is also the unit the mailbox plane's delivery merge
//! produces, so all three engine generations (session, per-pass sweep,
//! legacy sort-and-scatter) can share one decision function and stay
//! byte-identical.
//!
//! Decisions are **stateless counter hashes**, not sequential RNG draws:
//! the fate of the bundle `(from, to, round)` is a pure function of
//! `(pass seed, plan salt, from, to, round)`. No ordering between workers
//! can change an outcome, which is what makes a faulty run reproducible
//! across thread counts {1, 2, 8} and engine modes alike.
//!
//! Delayed bundles sit in a per-edge **holdback queue** owned by the
//! *receiver-side* CSR edge id — the same receiver-range exclusivity the
//! plane's slot arrays rely on — and are delivered at the start of their
//! due round, before that round's fresh bundle from the same sender, so
//! the inbox-order guarantee (sorted by sender, send order within a
//! sender) survives injection. The queues live for exactly one engine
//! run: a pass boundary is a synchronization point, so a delayed slot can
//! never alias a later pass or a rebound graph.

use crate::engine::Bandwidth;
use crate::error::SimError;
use crate::message::Message;
use crate::plane::{MailboxPlane, PlaneCell};
use graphs::{Graph, NodeId};
use prand::mix::{bounded, mix2, mix3};

/// Probability denominator of every `*_q` field: `q / 65536`, so `0` is
/// never and [`FaultPlan::ALWAYS`] (= 65536) is certainty.
const Q_ONE: u32 = 1 << 16;

/// Domain-separation tags for the fault decision streams.
const STREAM_FAULT: u64 = 0xFA17_0001;
const STREAM_ABORT: u64 = 0xFA17_0002;
const STREAM_DELAY: u64 = 0xFA17_0003;

/// A deterministic, seeded fault-injection plan.
///
/// Probabilities are fixed-point with denominator 65536 (`q / 65536`), so
/// the plan stays `Copy + Eq` and can ride inside
/// [`SimConfig`](crate::SimConfig) — and therefore inside a solve's memo
/// key — without floating-point equality headaches. The default plan is
/// [`FaultPlan::none`]: with it, the engines take their fault-free paths
/// untouched, bit for bit.
///
/// Any faulty run is exactly reproducible from `(pass seed, plan)`: the
/// plan carries its own [`salt`](FaultPlan::salt) so a serving layer can
/// re-roll the fault stream between retry attempts while leaving the
/// protocol randomness (driven by the pass seed) untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Probability (`/65536`) that a bundle is dropped in flight.
    pub drop_q: u32,
    /// Probability (`/65536`) that a surviving bundle is delayed by
    /// `1..=max_delay` rounds.
    pub delay_q: u32,
    /// Largest possible delay, in rounds (treated as 1 when 0 but
    /// `delay_q > 0`). The delay amount is drawn uniformly from
    /// `1..=max_delay`.
    pub max_delay: u32,
    /// Probability (`/65536`) that a delivered bundle arrives twice.
    pub dup_q: u32,
    /// Probability (`/65536`), per round, that the whole run aborts with
    /// [`SimError::FaultInjected`] — the transient failure the serving
    /// layer's retry loop exists for.
    pub abort_q: u32,
    /// Under [`Bandwidth::Strict`], clip an over-cap bundle to the prefix
    /// that fits the limit (counting the clipped suffix in
    /// [`FaultCounters::truncated`]) instead of failing the run.
    pub truncate: bool,
    /// Extra entropy mixed into every decision. Same `(seed, plan)` ⇒
    /// same faults; bumping the salt re-rolls the fault stream without
    /// touching protocol randomness (see [`FaultPlan::resalted`]).
    pub salt: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The `q` value meaning "always" (probability 1).
    pub const ALWAYS: u32 = Q_ONE;

    /// The fault-free plan: every engine ignores the fault layer entirely
    /// and runs its unmodified fast path.
    pub fn none() -> Self {
        FaultPlan {
            drop_q: 0,
            delay_q: 0,
            max_delay: 0,
            dup_q: 0,
            abort_q: 0,
            truncate: false,
            salt: 0,
        }
    }

    /// Quantize a probability in `[0, 1]` to the fixed-point `q` scale.
    pub fn quantize(rate: f64) -> u32 {
        let q = (rate.clamp(0.0, 1.0) * f64::from(Q_ONE)).round();
        (q as u32).min(Q_ONE)
    }

    /// A plan that drops each bundle independently with probability
    /// `rate` (and nothing else).
    pub fn lossy(rate: f64) -> Self {
        FaultPlan {
            drop_q: Self::quantize(rate),
            ..FaultPlan::none()
        }
    }

    /// Add delays: each surviving bundle is held back `1..=max_delay`
    /// rounds with probability `rate`.
    #[must_use]
    pub fn with_delay(mut self, rate: f64, max_delay: u32) -> Self {
        self.delay_q = Self::quantize(rate);
        self.max_delay = max_delay;
        self
    }

    /// Add duplication: each delivered bundle arrives twice with
    /// probability `rate`.
    #[must_use]
    pub fn with_dup(mut self, rate: f64) -> Self {
        self.dup_q = Self::quantize(rate);
        self
    }

    /// Add per-round aborts: each round the whole run dies with
    /// probability `rate`, surfacing [`SimError::FaultInjected`].
    #[must_use]
    pub fn with_abort(mut self, rate: f64) -> Self {
        self.abort_q = Self::quantize(rate);
        self
    }

    /// Enable truncate-to-cap under [`Bandwidth::Strict`].
    #[must_use]
    pub fn with_truncate(mut self) -> Self {
        self.truncate = true;
        self
    }

    /// The same plan with `extra` folded into the salt — a different but
    /// equally deterministic fault stream. Retry layers use
    /// `plan.resalted(attempt)` so a transient abort is not replayed
    /// verbatim on the next attempt.
    #[must_use]
    pub fn resalted(mut self, extra: u64) -> Self {
        self.salt = self.salt.wrapping_add(extra);
        self
    }

    /// Whether this plan can perturb a run at all. `false` means the
    /// engines skip the fault layer completely (the zero-overhead
    /// guarantee: a `FaultPlan::none()` run is bit-for-bit the fault-free
    /// engine).
    pub fn is_active(&self) -> bool {
        (self.drop_q | self.delay_q | self.dup_q | self.abort_q) > 0 || self.truncate
    }
}

/// Per-run fault-event counters, surfaced through
/// [`RunReport`](crate::RunReport) (and aggregated per solve by
/// [`PassLog::fault_totals`](crate::PassLog::fault_totals)). All zero for
/// a fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Bundles dropped in flight.
    pub dropped: u64,
    /// Bundles held back for later rounds.
    pub delayed: u64,
    /// Bundles delivered twice.
    pub duplicated: u64,
    /// Messages clipped off over-cap bundles (truncate mode).
    pub truncated: u64,
    /// Messages sent to a non-neighbor and eaten by the faulty network
    /// (fault-free runs fail loudly with
    /// [`SimError::NotANeighbor`](crate::SimError) instead — see the
    /// fault-model notes in DESIGN.md §8).
    pub misrouted: u64,
}

impl FaultCounters {
    /// Whether any fault event was counted.
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }

    /// Sum of all counted fault events.
    pub fn total(&self) -> u64 {
        self.dropped + self.delayed + self.duplicated + self.truncated + self.misrouted
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.duplicated += other.duplicated;
        self.truncated += other.truncated;
        self.misrouted += other.misrouted;
    }
}

/// The fate of one bundle, decided by [`FaultState::decide`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Deliver this round, `copies` times (1 or 2).
    Deliver {
        /// Delivery multiplicity (2 when duplicated).
        copies: u32,
    },
    /// Lost in flight.
    Drop,
    /// Held back until `due`, then delivered `copies` times.
    Delay {
        /// Round the bundle becomes deliverable.
        due: u64,
        /// Delivery multiplicity (2 when duplicated).
        copies: u32,
    },
}

/// One held-back bundle: the merged messages of a directed edge's round,
/// tagged with the round they were sent in.
pub(crate) struct Held<M> {
    /// Round at which the bundle becomes deliverable.
    due: u64,
    /// Round the bundle was originally sent (diagnostics / ordering).
    pub(crate) sent: u64,
    /// Delivery multiplicity.
    copies: u32,
    msgs: Vec<M>,
}

/// Per-run fault-injection state: the decision key plus the holdback
/// queues. Built once per engine run when the plan
/// [`is_active`](FaultPlan::is_active); its absence *is* the fault-free
/// fast path.
///
/// Concurrency: `held` is keyed by receiver-side CSR edge id and
/// `pending`/`perturbed` by receiver id, so routing workers touch only
/// the cells of their own disjoint receiver ranges — exactly the
/// [`PlaneCell`] protocol of the slot arrays (see `crate::plane`).
pub(crate) struct FaultState<M> {
    pub(crate) plan: FaultPlan,
    /// Decision key: `mix3(pass seed, salt, STREAM_FAULT)`.
    key: u64,
    /// Holdback queue per receiver-side directed-edge id, due-round
    /// ascending by construction (bundles are pushed in send-round order
    /// with non-negative delays... not necessarily sorted, so delivery
    /// scans the whole queue; queues are tiny in practice).
    held: Vec<PlaneCell<Vec<Held<M>>>>,
    /// Per receiver: number of bundles currently held back across its
    /// in-edges (lets routing visit a receiver that is not dirty but has
    /// deliveries pending).
    pending: Vec<PlaneCell<u32>>,
    /// Per receiver: whether any inbound bundle was dropped, delayed, or
    /// truncated this run — the "starved inbox" sentinel collected into
    /// [`RunReport::starved`](crate::RunReport::starved).
    perturbed: Vec<PlaneCell<bool>>,
}

impl<M: Message> FaultState<M> {
    /// Fault state for one run of `graph` under `plan`, keyed by the
    /// run's pass seed.
    pub(crate) fn new(plan: FaultPlan, seed: u64, graph: &Graph) -> Self {
        let m = graph.adjacency().len();
        let n = graph.n();
        FaultState {
            plan,
            key: mix3(seed, plan.salt, STREAM_FAULT),
            held: (0..m).map(|_| PlaneCell::new(Vec::new())).collect(),
            pending: (0..n).map(|_| PlaneCell::new(0)).collect(),
            perturbed: (0..n).map(|_| PlaneCell::new(false)).collect(),
        }
    }

    /// Whether the modeled crash fires this round. Checked by every
    /// engine at the top of its round loop (after the termination and
    /// round-cap checks), on the coordinator only — thread-independent by
    /// construction.
    pub(crate) fn abort_round(&self, round: u64) -> bool {
        self.plan.abort_q > 0
            && (mix3(self.key, STREAM_ABORT, round) & 0xFFFF) < u64::from(self.plan.abort_q)
    }

    /// The fate of the bundle `(from → to, round)` — a pure function of
    /// the key and those coordinates. Because the key is the directed
    /// edge itself (never a worker, shard, or chunk index), fates are
    /// invariant under the session engine's ownership sharding: the same
    /// bundle meets the same fate whether its sender wrote the slot
    /// locally or staged it through the exchange lanes.
    pub(crate) fn decide(&self, from: NodeId, to: NodeId, round: u64) -> Decision {
        let edge = (u64::from(from) << 32) | u64::from(to);
        let h = mix3(self.key, edge, round);
        if (h & 0xFFFF) < u64::from(self.plan.drop_q) {
            return Decision::Drop;
        }
        let copies = if ((h >> 32) & 0xFFFF) < u64::from(self.plan.dup_q) {
            2
        } else {
            1
        };
        if ((h >> 16) & 0xFFFF) < u64::from(self.plan.delay_q) {
            let span = u64::from(self.plan.max_delay.max(1));
            let delay = 1 + bounded(mix2(h, STREAM_DELAY), span);
            return Decision::Delay {
                due: round + delay,
                copies,
            };
        }
        Decision::Deliver { copies }
    }

    /// Whether receiver `v` has bundles held back on any in-edge.
    ///
    /// SAFETY-wise this is a plain read of a receiver-owned cell: callers
    /// must hold routing-phase exclusivity over `v` (the same contract as
    /// the slot arrays).
    pub(crate) fn has_pending(&self, v: usize) -> bool {
        // SAFETY: receiver-owned cell, caller holds the routing-phase
        // exclusivity over `v` (see above).
        unsafe { *self.pending[v].get() > 0 }
    }

    /// Raise receiver `v`'s starved-inbox sentinel. Same exclusivity
    /// contract as [`FaultState::has_pending`].
    pub(crate) fn mark_perturbed(&self, v: usize) {
        // SAFETY: receiver-owned cell (see has_pending).
        unsafe { *self.perturbed[v].get() = true };
    }

    /// Queue a bundle on edge `e` (receiver `v`'s in-edge) for delivery
    /// at `due`. Same exclusivity contract as [`FaultState::has_pending`].
    pub(crate) fn hold(&self, e: usize, v: usize, round: u64, due: u64, copies: u32, msgs: Vec<M>) {
        // SAFETY: edge e belongs to receiver v's contiguous in-slot
        // range; the caller holds routing-phase exclusivity over v.
        unsafe {
            (*self.held[e].get()).push(Held {
                due,
                sent: round,
                copies,
                msgs,
            });
            *self.pending[v].get() += 1;
        }
    }

    /// Deliver every due bundle of edge `e` (sender `u`, receiver `v`)
    /// into `inbox`, preserving send-round order. Same exclusivity
    /// contract as [`FaultState::has_pending`].
    pub(crate) fn deliver_due(
        &self,
        e: usize,
        u: NodeId,
        v: usize,
        round: u64,
        inbox: &mut Vec<(NodeId, M)>,
    ) {
        // SAFETY: as in `hold`.
        let held = unsafe { &mut *self.held[e].get() };
        if held.is_empty() {
            return;
        }
        let mut delivered = 0u32;
        held.retain_mut(|h| {
            if h.due > round {
                return true;
            }
            // `sent == round` is the legacy engine's same-round delivery
            // through the queue; anything else must be from the past.
            debug_assert!(
                h.sent <= round,
                "a bundle cannot arrive before its send round"
            );
            for _ in 0..h.copies {
                inbox.extend(h.msgs.iter().map(|m| (u, m.clone())));
            }
            delivered += 1;
            false
        });
        if delivered > 0 {
            // SAFETY: receiver-owned cell (see has_pending).
            unsafe { *self.pending[v].get() -= delivered };
        }
    }

    /// The sorted list of receivers whose inbound traffic was perturbed
    /// (dropped/delayed/truncated) during the run — collected by the
    /// coordinator after the last routing phase.
    pub(crate) fn collect_starved(&self) -> Vec<NodeId> {
        self.perturbed
            .iter()
            .enumerate()
            // SAFETY: coordinator-only read after every routing worker
            // has passed its phase barrier.
            .filter(|(_, cell)| unsafe { *cell.get() })
            .map(|(v, _)| v as NodeId)
            .collect()
    }
}

/// Per-receiver flow counters of one faulty delivery (merged into the
/// engines' routing stats).
#[derive(Default)]
pub(crate) struct EdgeFlow {
    pub(crate) max: u64,
    pub(crate) bits: u64,
    pub(crate) messages: u64,
    pub(crate) faults: FaultCounters,
}

/// Enforce the strict cap on a gathered bundle: error out like the
/// fault-free engines, or — in truncate mode — clip the bundle to the
/// longest prefix that fits and count the clipped suffix. Shared by all
/// three engines so the accounting stays identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_cap<M: Message>(
    plan: &FaultPlan,
    bundle: &mut Vec<M>,
    edge_bits: &mut u64,
    bandwidth: Bandwidth,
    from: NodeId,
    to: NodeId,
    round: u64,
    faults: &mut FaultCounters,
) -> Result<bool, SimError> {
    let Bandwidth::Strict(limit) = bandwidth else {
        return Ok(false);
    };
    if *edge_bits <= limit {
        return Ok(false);
    }
    if !plan.truncate {
        return Err(SimError::BandwidthExceeded {
            from,
            to,
            bits: *edge_bits,
            limit,
            round,
        });
    }
    let mut kept_bits = 0u64;
    let mut keep = 0usize;
    for m in bundle.iter() {
        let c = m.bit_cost();
        if kept_bits + c > limit {
            break;
        }
        kept_bits += c;
        keep += 1;
    }
    faults.truncated += (bundle.len() - keep) as u64;
    bundle.truncate(keep);
    *edge_bits = kept_bits;
    Ok(true)
}

/// The faulty counterpart of the plane engines' per-receiver delivery
/// sweep ([`crate::session`]'s `route_shard` / [`crate::reference`]'s
/// `sweep_route_range`): per in-neighbor, deliver due held-back bundles
/// first, then gather the fresh bundle from the slot arrays (draining
/// them exactly like the fast path), apply the cap, and route it through
/// [`FaultState::decide`]. `stamp` is the slot-liveness stamp of this
/// round (the session's epoch, the sweep engine's round); fault decisions
/// always key on the pass-local `round` so every engine draws the same
/// fates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_receiver_faulty<M: Message>(
    graph: &Graph,
    plane: &MailboxPlane<M>,
    fault: &FaultState<M>,
    inbox: &mut Vec<(NodeId, M)>,
    v: usize,
    round: u64,
    stamp: u64,
    bandwidth: Bandwidth,
    targeted: bool,
    bcast: bool,
) -> Result<EdgeFlow, SimError> {
    let offsets = graph.offsets();
    let base = offsets[v];
    let mut flow = EdgeFlow::default();
    let mut bundle: Vec<M> = Vec::new();
    for (j, &u) in graph.neighbors(v as NodeId).iter().enumerate() {
        let e = base + j;
        // Held-back bundles from earlier rounds arrive before anything
        // sent this round — per sender, so inbox order stays sorted by
        // sender with send order within one.
        fault.deliver_due(e, u, v, round, inbox);
        // Fresh bundle: the same slot gather (and drain) as the fast
        // path, redirected into a scratch buffer.
        // SAFETY: identical access protocol to the fault-free sweep —
        // receiver-side keyed slots, disjoint receiver ranges, phase
        // barrier between step writes and these reads (crate::plane).
        let eslot = targeted
            .then(|| unsafe { &mut *plane.slots[e].get() })
            .filter(|s| s.stamp == stamp);
        // SAFETY: broadcast slots are only read during routing.
        let bslot = bcast
            .then(|| unsafe { &*plane.bcast[u as usize].get() })
            .filter(|b| b.stamp == stamp);
        if eslot.is_none() && bslot.is_none() {
            continue;
        }
        let mut edge_bits = eslot.as_ref().map_or(0u64, |s| u64::from(s.bits))
            + bslot.map_or(0u64, |b| u64::from(b.bits));
        bundle.clear();
        match (eslot, bslot) {
            (Some(s), None) => {
                bundle.push(s.first.take().expect("live slot has a first message"));
                if s.spilled > 0 {
                    s.spilled = 0;
                    // SAFETY: same receiver-range exclusivity.
                    let sp = unsafe { &mut *plane.spill[e].get() };
                    bundle.extend(sp.drain(..).map(|(m, _)| m));
                }
            }
            (None, Some(b)) => {
                bundle.push(b.first.clone().expect("live slot has a first message"));
                if b.spilled > 0 {
                    // SAFETY: read-only, like the hot broadcast slot.
                    let sp = unsafe { &*plane.bcast_spill[u as usize].get() };
                    bundle.extend(sp.iter().map(|(m, _)| m.clone()));
                }
            }
            (Some(s), Some(b)) => {
                // Both lanes in one round: merge back into exact send
                // order by sequence tag, as the fast path does.
                let first_t = s.first.take().expect("live slot has a first message");
                s.spilled = 0;
                // SAFETY: as in the single-lane branches above.
                let sp_t = unsafe { &mut *plane.spill[e].get() };
                let sp_b = unsafe { &*plane.bcast_spill[u as usize].get() };
                let mut te = std::iter::once((s.seq, first_t))
                    .chain(sp_t.drain(..).map(|(m, q)| (q, m)))
                    .peekable();
                let first_b = b.first.clone().expect("live slot has a first message");
                let mut be = std::iter::once((b.seq, first_b))
                    .chain(sp_b.iter().map(|(m, q)| (*q, m.clone())))
                    .peekable();
                loop {
                    let take_targeted = match (te.peek(), be.peek()) {
                        (Some((tq, _)), Some((bq, _))) => tq < bq,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    let (_, m) = if take_targeted {
                        te.next().expect("peeked")
                    } else {
                        be.next().expect("peeked")
                    };
                    bundle.push(m);
                }
            }
            (None, None) => unreachable!("filtered above"),
        }
        if apply_cap(
            &fault.plan,
            &mut bundle,
            &mut edge_bits,
            bandwidth,
            u,
            v as NodeId,
            round,
            &mut flow.faults,
        )? {
            fault.mark_perturbed(v);
        }
        // Transmission is accounted at the send round, post-truncation,
        // whatever fate the bundle then meets: the bits occupied the
        // channel even if the payload is lost or late.
        flow.max = flow.max.max(edge_bits);
        flow.bits += edge_bits;
        flow.messages += bundle.len() as u64;
        if bundle.is_empty() {
            continue;
        }
        match fault.decide(u, v as NodeId, round) {
            Decision::Drop => {
                flow.faults.dropped += 1;
                fault.mark_perturbed(v);
            }
            Decision::Delay { due, copies } => {
                flow.faults.delayed += 1;
                if copies > 1 {
                    flow.faults.duplicated += 1;
                }
                fault.hold(e, v, round, due, copies, std::mem::take(&mut bundle));
                fault.mark_perturbed(v);
            }
            Decision::Deliver { copies } => {
                if copies > 1 {
                    flow.faults.duplicated += 1;
                }
                for _ in 0..copies {
                    inbox.extend(bundle.iter().map(|m| (u, m.clone())));
                }
            }
        }
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn none_is_inactive_and_constructors_activate() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
        assert!(FaultPlan::lossy(0.1).is_active());
        assert!(FaultPlan::none().with_delay(0.5, 3).is_active());
        assert!(FaultPlan::none().with_dup(0.2).is_active());
        assert!(FaultPlan::none().with_abort(0.01).is_active());
        assert!(FaultPlan::none().with_truncate().is_active());
        // Zero-rate constructors stay inactive.
        assert!(!FaultPlan::lossy(0.0).is_active());
    }

    #[test]
    fn quantize_clamps_and_scales() {
        assert_eq!(FaultPlan::quantize(0.0), 0);
        assert_eq!(FaultPlan::quantize(1.0), FaultPlan::ALWAYS);
        assert_eq!(FaultPlan::quantize(2.0), FaultPlan::ALWAYS);
        assert_eq!(FaultPlan::quantize(-1.0), 0);
        assert_eq!(FaultPlan::quantize(0.5), FaultPlan::ALWAYS / 2);
    }

    #[test]
    fn decisions_are_deterministic_and_extremes_are_certain() {
        let g = gen::cycle(8);
        let always_drop: FaultState<()> = FaultState::new(
            FaultPlan {
                drop_q: FaultPlan::ALWAYS,
                ..FaultPlan::none()
            },
            7,
            &g,
        );
        let never: FaultState<()> = FaultState::new(FaultPlan::lossy(0.0), 7, &g);
        for round in 0..50 {
            assert_eq!(always_drop.decide(0, 1, round), Decision::Drop);
            assert_eq!(never.decide(0, 1, round), Decision::Deliver { copies: 1 });
        }
        // Same (seed, plan) ⇒ same stream; different salt ⇒ (statistically)
        // a different one.
        let a: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5), 7, &g);
        let b: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5), 7, &g);
        let c: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5).resalted(1), 7, &g);
        let stream = |s: &FaultState<()>| {
            (0..200)
                .map(|r| s.decide(1, 2, r) == Decision::Drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(&a), stream(&b));
        assert_ne!(stream(&a), stream(&c));
    }

    #[test]
    fn delay_draws_stay_in_declared_span() {
        let g = gen::complete(4);
        let plan = FaultPlan::none().with_delay(1.0, 3);
        let state: FaultState<()> = FaultState::new(plan, 11, &g);
        for round in 0..200 {
            match state.decide(2, 3, round) {
                Decision::Delay { due, .. } => {
                    assert!(due > round && due <= round + 3, "due {due} round {round}");
                }
                other => panic!("delay_q=ALWAYS must delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn abort_stream_matches_probability_extremes() {
        let g = gen::cycle(4);
        let always: FaultState<()> = FaultState::new(FaultPlan::none().with_abort(1.0), 3, &g);
        let never: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5), 3, &g);
        for r in 0..100 {
            assert!(always.abort_round(r));
            assert!(!never.abort_round(r));
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Byte(u8);
    impl Message for Byte {
        fn bit_cost(&self) -> u64 {
            8
        }
    }

    #[test]
    fn holdback_queue_orders_and_counts() {
        let g = gen::path(3); // 0-1-2; edge ids: offsets[1] is node 1's in-slots
        let state: FaultState<Byte> = FaultState::new(FaultPlan::lossy(0.5), 1, &g);
        let offsets = g.offsets();
        // Node 1's in-edge from node 0 is position 0 of its neighbor list.
        let e = offsets[1];
        assert!(!state.has_pending(1));
        state.hold(e, 1, 0, 2, 1, vec![Byte(10), Byte(11)]);
        state.hold(e, 1, 1, 3, 2, vec![Byte(12)]);
        assert!(state.has_pending(1));
        let mut inbox = Vec::new();
        state.deliver_due(e, 0, 1, 1, &mut inbox);
        assert!(inbox.is_empty(), "nothing due before round 2");
        state.deliver_due(e, 0, 1, 2, &mut inbox);
        assert_eq!(inbox, vec![(0, Byte(10)), (0, Byte(11))]);
        assert!(state.has_pending(1), "round-3 bundle still held");
        state.deliver_due(e, 0, 1, 3, &mut inbox);
        // The duplicated bundle arrives twice, after the earlier one.
        assert_eq!(
            inbox,
            vec![(0, Byte(10)), (0, Byte(11)), (0, Byte(12)), (0, Byte(12))]
        );
        assert!(!state.has_pending(1));
    }

    /// Fault fates key on the directed edge, so every shard × worker
    /// geometry sees the identical fault stream: counters, starved
    /// sentinels, and program state all match the unsharded run.
    #[test]
    fn fault_fates_are_shard_invariant() {
        use crate::engine::tests::min_flood_programs;
        use crate::{Session, SimConfig};
        let g = gen::gnp(300, 0.03, 19);
        let plan = FaultPlan::lossy(0.10).with_delay(0.15, 3).with_dup(0.10);
        let mut anchor = None;
        for shards in [0usize, 1, 4, 8] {
            for threads in [1usize, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    fault: plan,
                    ..SimConfig::default()
                };
                let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
                let mut programs = min_flood_programs(300);
                let report = session.run(&mut programs, 29).expect("faulty run");
                assert!(report.faults.any(), "the plan must actually perturb");
                let mins: Vec<_> = programs.iter().map(|p| p.min).collect();
                match &anchor {
                    None => anchor = Some((report, mins)),
                    Some((r, m)) => {
                        assert_eq!(r, &report, "shards {shards} threads {threads}");
                        assert_eq!(m, &mins, "shards {shards} threads {threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn counters_merge_and_total() {
        let mut a = FaultCounters {
            dropped: 1,
            delayed: 2,
            duplicated: 3,
            truncated: 4,
            misrouted: 5,
        };
        assert!(a.any());
        assert_eq!(a.total(), 15);
        a.merge(&a.clone());
        assert_eq!(a.total(), 30);
        assert!(!FaultCounters::default().any());
    }
}
