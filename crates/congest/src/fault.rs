//! Deterministic fault injection between send and delivery.
//!
//! A [`FaultPlan`] describes a lossy network: per-bundle drop, delay, and
//! duplication probabilities, a per-round abort probability (a modeled
//! crash/timeout surfaced as [`SimError::FaultInjected`]), per-node
//! **crash-stop / crash-recovery fates** (a crashed node stops stepping
//! and sending, its in-flight bundles drop at their due round, and
//! neighbors observe silence through the starvation sentinels), and an
//! optional truncate-to-cap mode that clips over-budget bundles instead
//! of failing a strict run. The *bundle* — everything one sender puts on one directed
//! edge in one round, in send order — is the unit every decision applies
//! to, because it is also the unit the mailbox plane's delivery merge
//! produces, so all three engine generations (session, per-pass sweep,
//! legacy sort-and-scatter) can share one decision function and stay
//! byte-identical.
//!
//! Decisions are **stateless counter hashes**, not sequential RNG draws:
//! the fate of the bundle `(from, to, round)` is a pure function of
//! `(pass seed, plan salt, from, to, round)`. No ordering between workers
//! can change an outcome, which is what makes a faulty run reproducible
//! across thread counts {1, 2, 8} and engine modes alike.
//!
//! Delayed bundles sit in a per-edge **holdback queue** owned by the
//! *receiver-side* CSR edge id — the same receiver-range exclusivity the
//! plane's slot arrays rely on — and are delivered at the start of their
//! due round, before that round's fresh bundle from the same sender, so
//! the inbox-order guarantee (sorted by sender, send order within a
//! sender) survives injection. The queues live for exactly one engine
//! run: a pass boundary is a synchronization point, so a delayed slot can
//! never alias a later pass or a rebound graph.

use crate::engine::Bandwidth;
use crate::error::SimError;
use crate::message::Message;
use crate::plane::{MailboxPlane, PlaneCell};
use graphs::{Graph, NodeId};
use prand::mix::{bounded, mix2, mix3};

/// Probability denominator of every `*_q` field: `q / 65536`, so `0` is
/// never and [`FaultPlan::ALWAYS`] (= 65536) is certainty.
const Q_ONE: u32 = 1 << 16;

/// Domain-separation tags for the fault decision streams.
const STREAM_FAULT: u64 = 0xFA17_0001;
const STREAM_ABORT: u64 = 0xFA17_0002;
const STREAM_DELAY: u64 = 0xFA17_0003;
const STREAM_CRASH: u64 = 0xFA17_0004;
const STREAM_CRASH_DELAY: u64 = 0xFA17_0005;

/// A deterministic, seeded fault-injection plan.
///
/// Probabilities are fixed-point with denominator 65536 (`q / 65536`), so
/// the plan stays `Copy + Eq` and can ride inside
/// [`SimConfig`](crate::SimConfig) — and therefore inside a solve's memo
/// key — without floating-point equality headaches. The default plan is
/// [`FaultPlan::none`]: with it, the engines take their fault-free paths
/// untouched, bit for bit.
///
/// Any faulty run is exactly reproducible from `(pass seed, plan)`: the
/// plan carries its own [`salt`](FaultPlan::salt) so a serving layer can
/// re-roll the fault stream between retry attempts while leaving the
/// protocol randomness (driven by the pass seed) untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Probability (`/65536`) that a bundle is dropped in flight.
    pub drop_q: u32,
    /// Probability (`/65536`) that a surviving bundle is delayed by
    /// `1..=max_delay` rounds.
    pub delay_q: u32,
    /// Largest possible delay, in rounds (treated as 1 when 0 but
    /// `delay_q > 0`). The delay amount is drawn uniformly from
    /// `1..=max_delay`.
    pub max_delay: u32,
    /// Probability (`/65536`) that a delivered bundle arrives twice.
    pub dup_q: u32,
    /// Probability (`/65536`), per round, that the whole run aborts with
    /// [`SimError::FaultInjected`] — the transient failure the serving
    /// layer's retry loop exists for.
    pub abort_q: u32,
    /// Under [`Bandwidth::Strict`], clip an over-cap bundle to the prefix
    /// that fits the limit (counting the clipped suffix in
    /// [`FaultCounters::truncated`]) instead of failing the run.
    pub truncate: bool,
    /// Probability (`/65536`), per node per round, that a live node
    /// **crashes**: it stops stepping and sending, its in-flight bundles
    /// are dropped at their due round, and neighbors observe silence
    /// through the starvation sentinels. Fates are stateless hashes of
    /// `(pass seed, salt, node, round)`, so they are byte-identical
    /// across every shard/thread/engine geometry.
    pub crash_q: u32,
    /// Crash-recovery window, in rounds. `0` = crash-stop (a crashed
    /// node stays down for the rest of the run); `k > 0` = the node
    /// recovers after `1..=k` rounds (drawn uniformly) and resumes
    /// stepping where it left off.
    pub crash_recovery: u32,
    /// Fail fast on crashes: the earliest crash event surfaces as
    /// [`SimError::NodeCrashed`] at the end of the run's round loop (the
    /// pass still returns consistent states). Transient: a re-salted
    /// retry re-rolls the crash dice.
    pub crash_fatal: bool,
    /// Quorum floor: if fewer than this many nodes are up when the run
    /// ends, the run surfaces [`SimError::QuorumLost`]. Only meaningful
    /// together with `crash_q > 0` (a crash-free run never loses nodes).
    pub min_live: u32,
    /// Extra entropy mixed into every decision. Same `(seed, plan)` ⇒
    /// same faults; bumping the salt re-rolls the fault stream without
    /// touching protocol randomness (see [`FaultPlan::resalted`]).
    pub salt: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The `q` value meaning "always" (probability 1).
    pub const ALWAYS: u32 = Q_ONE;

    /// The fault-free plan: every engine ignores the fault layer entirely
    /// and runs its unmodified fast path.
    pub fn none() -> Self {
        FaultPlan {
            drop_q: 0,
            delay_q: 0,
            max_delay: 0,
            dup_q: 0,
            abort_q: 0,
            truncate: false,
            crash_q: 0,
            crash_recovery: 0,
            crash_fatal: false,
            min_live: 0,
            salt: 0,
        }
    }

    /// Quantize a probability in `[0, 1]` to the fixed-point `q` scale.
    pub fn quantize(rate: f64) -> u32 {
        let q = (rate.clamp(0.0, 1.0) * f64::from(Q_ONE)).round();
        (q as u32).min(Q_ONE)
    }

    /// A plan that drops each bundle independently with probability
    /// `rate` (and nothing else).
    pub fn lossy(rate: f64) -> Self {
        FaultPlan {
            drop_q: Self::quantize(rate),
            ..FaultPlan::none()
        }
    }

    /// Add delays: each surviving bundle is held back `1..=max_delay`
    /// rounds with probability `rate`.
    #[must_use]
    pub fn with_delay(mut self, rate: f64, max_delay: u32) -> Self {
        self.delay_q = Self::quantize(rate);
        self.max_delay = max_delay;
        self
    }

    /// Add duplication: each delivered bundle arrives twice with
    /// probability `rate`.
    #[must_use]
    pub fn with_dup(mut self, rate: f64) -> Self {
        self.dup_q = Self::quantize(rate);
        self
    }

    /// Add per-round aborts: each round the whole run dies with
    /// probability `rate`, surfacing [`SimError::FaultInjected`].
    #[must_use]
    pub fn with_abort(mut self, rate: f64) -> Self {
        self.abort_q = Self::quantize(rate);
        self
    }

    /// Enable truncate-to-cap under [`Bandwidth::Strict`].
    #[must_use]
    pub fn with_truncate(mut self) -> Self {
        self.truncate = true;
        self
    }

    /// Add crash fates: each live node crashes independently with
    /// probability `rate` per round. `recovery = 0` is crash-stop (the
    /// node never comes back); `recovery = k > 0` is crash-recovery (the
    /// node is down `1..=k` rounds, then resumes stepping — the pipeline
    /// quarantines and recolors it afterwards, see DESIGN.md §10).
    #[must_use]
    pub fn with_crashes(mut self, rate: f64, recovery: u32) -> Self {
        self.crash_q = Self::quantize(rate);
        self.crash_recovery = recovery;
        self
    }

    /// Opt into fail-fast crashes: the run's earliest crash event
    /// surfaces as [`SimError::NodeCrashed`] when the round loop ends.
    #[must_use]
    pub fn with_fatal_crashes(mut self) -> Self {
        self.crash_fatal = true;
        self
    }

    /// Opt into a quorum floor: a run ending with fewer than `min_live`
    /// nodes up surfaces [`SimError::QuorumLost`].
    #[must_use]
    pub fn with_quorum(mut self, min_live: u32) -> Self {
        self.min_live = min_live;
        self
    }

    /// The same plan with `extra` folded into the salt — a different but
    /// equally deterministic fault stream. Retry layers use
    /// `plan.resalted(attempt)` so a transient abort is not replayed
    /// verbatim on the next attempt.
    #[must_use]
    pub fn resalted(mut self, extra: u64) -> Self {
        self.salt = self.salt.wrapping_add(extra);
        self
    }

    /// Whether this plan can perturb a run at all. `false` means the
    /// engines skip the fault layer completely (the zero-overhead
    /// guarantee: a `FaultPlan::none()` run is bit-for-bit the fault-free
    /// engine).
    pub fn is_active(&self) -> bool {
        (self.drop_q | self.delay_q | self.dup_q | self.abort_q | self.crash_q) > 0 || self.truncate
    }
}

/// Per-run fault-event counters, surfaced through
/// [`RunReport`](crate::RunReport) (and aggregated per solve by
/// [`PassLog::fault_totals`](crate::PassLog::fault_totals)). All zero for
/// a fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Bundles dropped in flight.
    pub dropped: u64,
    /// Bundles held back for later rounds.
    pub delayed: u64,
    /// Bundles delivered twice.
    pub duplicated: u64,
    /// Messages clipped off over-cap bundles (truncate mode).
    pub truncated: u64,
    /// Messages sent to a non-neighbor and eaten by the faulty network
    /// (fault-free runs fail loudly with
    /// [`SimError::NotANeighbor`](crate::SimError) instead — see the
    /// fault-model notes in DESIGN.md §8).
    pub misrouted: u64,
    /// Node crash events (a recovered node crashing again counts each
    /// time). Bundles lost *because* an endpoint was down are counted in
    /// `dropped`.
    pub crashes: u64,
}

impl FaultCounters {
    /// Whether any fault event was counted.
    pub fn any(&self) -> bool {
        *self != FaultCounters::default()
    }

    /// Sum of all counted fault events.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.delayed
            + self.duplicated
            + self.truncated
            + self.misrouted
            + self.crashes
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.duplicated += other.duplicated;
        self.truncated += other.truncated;
        self.misrouted += other.misrouted;
        self.crashes += other.crashes;
    }
}

/// The fate of one bundle, decided by [`FaultState::decide`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Deliver this round, `copies` times (1 or 2).
    Deliver {
        /// Delivery multiplicity (2 when duplicated).
        copies: u32,
    },
    /// Lost in flight.
    Drop,
    /// Held back until `due`, then delivered `copies` times.
    Delay {
        /// Round the bundle becomes deliverable.
        due: u64,
        /// Delivery multiplicity (2 when duplicated).
        copies: u32,
    },
}

/// One held-back bundle: the merged messages of a directed edge's round,
/// tagged with the round they were sent in.
pub(crate) struct Held<M> {
    /// Round at which the bundle becomes deliverable.
    due: u64,
    /// Round the bundle was originally sent (diagnostics / ordering).
    pub(crate) sent: u64,
    /// Delivery multiplicity.
    copies: u32,
    msgs: Vec<M>,
}

/// Per-run fault-injection state: the decision key plus the holdback
/// queues. Built once per engine run when the plan
/// [`is_active`](FaultPlan::is_active); its absence *is* the fault-free
/// fast path.
///
/// Concurrency: `held` is keyed by receiver-side CSR edge id and
/// `pending`/`perturbed` by receiver id, so routing workers touch only
/// the cells of their own disjoint receiver ranges — exactly the
/// [`PlaneCell`] protocol of the slot arrays (see `crate::plane`).
pub(crate) struct FaultState<M> {
    pub(crate) plan: FaultPlan,
    /// Decision key: `mix3(pass seed, salt, STREAM_FAULT)`.
    key: u64,
    /// Crash decision key: `mix3(pass seed, salt, STREAM_CRASH)` — its
    /// own stream, so crash fates never collide with bundle fates.
    crash_key: u64,
    /// Holdback queue per receiver-side directed-edge id, due-round
    /// ascending by construction (bundles are pushed in send-round order
    /// with non-negative delays... not necessarily sorted, so delivery
    /// scans the whole queue; queues are tiny in practice).
    held: Vec<PlaneCell<Vec<Held<M>>>>,
    /// Per receiver: number of bundles currently held back across its
    /// in-edges (lets routing visit a receiver that is not dirty but has
    /// deliveries pending).
    pending: Vec<PlaneCell<u32>>,
    /// Per receiver: whether any inbound bundle was dropped, delayed, or
    /// truncated this run — the "starved inbox" sentinel collected into
    /// [`RunReport::starved`](crate::RunReport::starved).
    perturbed: Vec<PlaneCell<bool>>,
    /// Per node: first round at which the node will be back up. `0` =
    /// up (never crashed or already recovered into this value's past),
    /// `u64::MAX` = crash-stop. Written only by the node's owner during
    /// the step phase ([`FaultState::advance_crashes`]); cross-shard
    /// routing reads happen after the following barrier.
    down_until: Vec<PlaneCell<u64>>,
    /// Per node: round of the node's *first* crash (`u64::MAX` = never
    /// crashed). Owner-written alongside `down_until`.
    crash_round: Vec<PlaneCell<u64>>,
    /// Per node: crash events this run (recovered nodes can crash
    /// again). Owner-written; summed by the coordinator at run end.
    crash_events: Vec<PlaneCell<u32>>,
}

impl<M: Message> FaultState<M> {
    /// Fault state for one run of `graph` under `plan`, keyed by the
    /// run's pass seed.
    pub(crate) fn new(plan: FaultPlan, seed: u64, graph: &Graph) -> Self {
        let m = graph.adjacency().len();
        let n = graph.n();
        FaultState {
            plan,
            key: mix3(seed, plan.salt, STREAM_FAULT),
            crash_key: mix3(seed, plan.salt, STREAM_CRASH),
            held: (0..m).map(|_| PlaneCell::new(Vec::new())).collect(),
            pending: (0..n).map(|_| PlaneCell::new(0)).collect(),
            perturbed: (0..n).map(|_| PlaneCell::new(false)).collect(),
            down_until: (0..n).map(|_| PlaneCell::new(0)).collect(),
            crash_round: (0..n).map(|_| PlaneCell::new(u64::MAX)).collect(),
            crash_events: (0..n).map(|_| PlaneCell::new(0)).collect(),
        }
    }

    /// Whether this plan injects node crashes at all. `false` keeps every
    /// crash hook on its zero-cost path (one branch per phase).
    pub(crate) fn has_crashes(&self) -> bool {
        self.plan.crash_q > 0
    }

    /// Advance the crash state machine of every node in `lo..hi` for
    /// `round`. Called by the range's owner at the top of the step phase
    /// — over **all** owned nodes, frontier or not — so a node's fate
    /// sequence is a pure function of `(crash key, node, round)` whatever
    /// the shard/thread/engine geometry.
    pub(crate) fn advance_crashes(&self, lo: usize, hi: usize, round: u64) {
        if !self.has_crashes() {
            return;
        }
        for v in lo..hi {
            // SAFETY: owner-exclusive cells during the step phase (the
            // same exclusivity the step writes to this range rely on).
            let du = unsafe { &mut *self.down_until[v].get() };
            if *du == u64::MAX || round < *du {
                continue; // still down
            }
            let h = mix3(self.crash_key, v as u64, round);
            if (h & 0xFFFF) < u64::from(self.plan.crash_q) {
                // SAFETY: owner-exclusive cells (see above).
                unsafe {
                    let cr = &mut *self.crash_round[v].get();
                    if *cr == u64::MAX {
                        *cr = round;
                    }
                    *self.crash_events[v].get() += 1;
                }
                *du = if self.plan.crash_recovery == 0 {
                    u64::MAX
                } else {
                    round
                        + 1
                        + bounded(
                            mix2(h, STREAM_CRASH_DELAY),
                            u64::from(self.plan.crash_recovery),
                        )
                };
            }
        }
    }

    /// Whether node `v` is down (crashed and not yet recovered) at
    /// `round`. The cell is written only by `v`'s owner during the step
    /// phase; same-phase reads come from that owner, and cross-shard
    /// routing reads happen after the following barrier.
    pub(crate) fn is_down(&self, v: usize, round: u64) -> bool {
        // SAFETY: barrier-ordered read (see above).
        let du = unsafe { *self.down_until[v].get() };
        du == u64::MAX || round < du
    }

    /// Whether the modeled crash fires this round. Checked by every
    /// engine at the top of its round loop (after the termination and
    /// round-cap checks), on the coordinator only — thread-independent by
    /// construction.
    pub(crate) fn abort_round(&self, round: u64) -> bool {
        self.plan.abort_q > 0
            && (mix3(self.key, STREAM_ABORT, round) & 0xFFFF) < u64::from(self.plan.abort_q)
    }

    /// The fate of the bundle `(from → to, round)` — a pure function of
    /// the key and those coordinates. Because the key is the directed
    /// edge itself (never a worker, shard, or chunk index), fates are
    /// invariant under the session engine's ownership sharding: the same
    /// bundle meets the same fate whether its sender wrote the slot
    /// locally or staged it through the exchange lanes.
    pub(crate) fn decide(&self, from: NodeId, to: NodeId, round: u64) -> Decision {
        let edge = (u64::from(from) << 32) | u64::from(to);
        let h = mix3(self.key, edge, round);
        if (h & 0xFFFF) < u64::from(self.plan.drop_q) {
            return Decision::Drop;
        }
        let copies = if ((h >> 32) & 0xFFFF) < u64::from(self.plan.dup_q) {
            2
        } else {
            1
        };
        if ((h >> 16) & 0xFFFF) < u64::from(self.plan.delay_q) {
            let span = u64::from(self.plan.max_delay.max(1));
            let delay = 1 + bounded(mix2(h, STREAM_DELAY), span);
            return Decision::Delay {
                due: round + delay,
                copies,
            };
        }
        Decision::Deliver { copies }
    }

    /// Whether receiver `v` has bundles held back on any in-edge.
    ///
    /// SAFETY-wise this is a plain read of a receiver-owned cell: callers
    /// must hold routing-phase exclusivity over `v` (the same contract as
    /// the slot arrays).
    pub(crate) fn has_pending(&self, v: usize) -> bool {
        // SAFETY: receiver-owned cell, caller holds the routing-phase
        // exclusivity over `v` (see above).
        unsafe { *self.pending[v].get() > 0 }
    }

    /// Raise receiver `v`'s starved-inbox sentinel. Same exclusivity
    /// contract as [`FaultState::has_pending`].
    pub(crate) fn mark_perturbed(&self, v: usize) {
        // SAFETY: receiver-owned cell (see has_pending).
        unsafe { *self.perturbed[v].get() = true };
    }

    /// Queue a bundle on edge `e` (receiver `v`'s in-edge) for delivery
    /// at `due`. Same exclusivity contract as [`FaultState::has_pending`].
    pub(crate) fn hold(&self, e: usize, v: usize, round: u64, due: u64, copies: u32, msgs: Vec<M>) {
        // SAFETY: edge e belongs to receiver v's contiguous in-slot
        // range; the caller holds routing-phase exclusivity over v.
        unsafe {
            (*self.held[e].get()).push(Held {
                due,
                sent: round,
                copies,
                msgs,
            });
            *self.pending[v].get() += 1;
        }
    }

    /// Deliver every due bundle of edge `e` (sender `u`, receiver `v`)
    /// into `inbox`.
    ///
    /// **Ordering contract.** Bundles are delivered in queue *insertion*
    /// order, which is ascending send-round order by construction (each
    /// send round pushes at most one bundle per edge, and a bundle is
    /// only ever pushed in its own send round). This pin holds however
    /// delay, duplication, and schedule adversaries compose on the edge:
    /// when several bundles with interleaved due rounds fall due
    /// together, the *earlier send* is delivered first, a duplicated
    /// bundle's copies are adjacent, and — because the queue cell is
    /// owned by the receiver's routing shard and touched by exactly one
    /// worker per phase — the order can never depend on worker or shard
    /// count. The regression test
    /// `delivery_order_is_pinned_under_composition` fails if any of this
    /// drifts.
    ///
    /// Under crash fates, a due bundle whose sender or receiver is down
    /// at its due round is **dropped** instead (counted in
    /// `faults.dropped`; a live receiver additionally gets its
    /// starvation sentinel raised). Same exclusivity contract as
    /// [`FaultState::has_pending`].
    pub(crate) fn deliver_due(
        &self,
        e: usize,
        u: NodeId,
        v: usize,
        round: u64,
        inbox: &mut Vec<(NodeId, M)>,
        faults: &mut FaultCounters,
    ) {
        // SAFETY: as in `hold`.
        let held = unsafe { &mut *self.held[e].get() };
        if held.is_empty() {
            return;
        }
        let crash_drop =
            self.has_crashes() && (self.is_down(v, round) || self.is_down(u as usize, round));
        let receiver_live = !self.has_crashes() || !self.is_down(v, round);
        let mut delivered = 0u32;
        let mut crash_dropped = 0u64;
        held.retain_mut(|h| {
            if h.due > round {
                return true;
            }
            // `sent == round` is the legacy engine's same-round delivery
            // through the queue; anything else must be from the past.
            debug_assert!(
                h.sent <= round,
                "a bundle cannot arrive before its send round"
            );
            delivered += 1;
            if crash_drop {
                crash_dropped += 1;
                return false;
            }
            for _ in 0..h.copies {
                inbox.extend(h.msgs.iter().map(|m| (u, m.clone())));
            }
            false
        });
        if delivered > 0 {
            // SAFETY: receiver-owned cell (see has_pending).
            unsafe { *self.pending[v].get() -= delivered };
        }
        if crash_dropped > 0 {
            faults.dropped += crash_dropped;
            if receiver_live {
                self.mark_perturbed(v);
            }
        }
    }

    /// The sorted list of receivers whose inbound traffic was perturbed
    /// (dropped/delayed/truncated) during the run — collected by the
    /// coordinator after the last routing phase.
    pub(crate) fn collect_starved(&self) -> Vec<NodeId> {
        self.perturbed
            .iter()
            .enumerate()
            // SAFETY: coordinator-only read after every routing worker
            // has passed its phase barrier.
            .filter(|(_, cell)| unsafe { *cell.get() })
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// The sorted list of nodes that crashed at least once this run —
    /// collected by the coordinator after the round loop, like
    /// [`FaultState::collect_starved`].
    pub(crate) fn collect_crashed(&self) -> Vec<NodeId> {
        self.crash_round
            .iter()
            .enumerate()
            // SAFETY: coordinator-only read after the last phase barrier.
            .filter(|(_, cell)| unsafe { *cell.get() } != u64::MAX)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Total crash events this run (coordinator-only, after the round
    /// loop).
    pub(crate) fn crash_event_total(&self) -> u64 {
        self.crash_events
            .iter()
            // SAFETY: coordinator-only read after the last phase barrier.
            .map(|cell| u64::from(unsafe { *cell.get() }))
            .sum()
    }

    /// The fail-fast verdicts a plan opts into, evaluated by the
    /// coordinator when the round loop ends (`end_round` = rounds
    /// executed): the earliest crash under
    /// [`FaultPlan::crash_fatal`] surfaces as [`SimError::NodeCrashed`];
    /// a final live count under [`FaultPlan::min_live`] surfaces as
    /// [`SimError::QuorumLost`]. Evaluated sequentially over per-node
    /// state, so it is identical in every engine by construction.
    pub(crate) fn crash_outcome(&self, end_round: u64) -> Result<(), SimError> {
        if !self.has_crashes() {
            return Ok(());
        }
        if self.plan.crash_fatal {
            let first = self
                .crash_round
                .iter()
                .enumerate()
                // SAFETY: coordinator-only read after the last barrier.
                .map(|(v, cell)| (unsafe { *cell.get() }, v as NodeId))
                .min()
                .filter(|&(round, _)| round != u64::MAX);
            if let Some((round, node)) = first {
                return Err(SimError::NodeCrashed { node, round });
            }
        }
        if self.plan.min_live > 0 {
            let live = (0..self.down_until.len())
                .filter(|&v| !self.is_down(v, end_round))
                .count() as u64;
            if live < u64::from(self.plan.min_live) {
                return Err(SimError::QuorumLost {
                    live,
                    quorum: u64::from(self.plan.min_live),
                    round: end_round,
                });
            }
        }
        Ok(())
    }
}

/// Per-receiver flow counters of one faulty delivery (merged into the
/// engines' routing stats).
#[derive(Default)]
pub(crate) struct EdgeFlow {
    pub(crate) max: u64,
    pub(crate) bits: u64,
    pub(crate) messages: u64,
    pub(crate) faults: FaultCounters,
}

/// Enforce the strict cap on a gathered bundle: error out like the
/// fault-free engines, or — in truncate mode — clip the bundle to the
/// longest prefix that fits and count the clipped suffix. Shared by all
/// three engines so the accounting stays identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_cap<M: Message>(
    plan: &FaultPlan,
    bundle: &mut Vec<M>,
    edge_bits: &mut u64,
    bandwidth: Bandwidth,
    from: NodeId,
    to: NodeId,
    round: u64,
    faults: &mut FaultCounters,
) -> Result<bool, SimError> {
    let Bandwidth::Strict(limit) = bandwidth else {
        return Ok(false);
    };
    if *edge_bits <= limit {
        return Ok(false);
    }
    if !plan.truncate {
        return Err(SimError::BandwidthExceeded {
            from,
            to,
            bits: *edge_bits,
            limit,
            round,
        });
    }
    let mut kept_bits = 0u64;
    let mut keep = 0usize;
    for m in bundle.iter() {
        let c = m.bit_cost();
        if kept_bits + c > limit {
            break;
        }
        kept_bits += c;
        keep += 1;
    }
    faults.truncated += (bundle.len() - keep) as u64;
    bundle.truncate(keep);
    *edge_bits = kept_bits;
    Ok(true)
}

/// The faulty counterpart of the plane engines' per-receiver delivery
/// sweep ([`crate::session`]'s `route_shard` / [`crate::reference`]'s
/// `sweep_route_range`): per in-neighbor, deliver due held-back bundles
/// first, then gather the fresh bundle from the slot arrays (draining
/// them exactly like the fast path), apply the cap, and route it through
/// [`FaultState::decide`]. `stamp` is the slot-liveness stamp of this
/// round (the session's epoch, the sweep engine's round); fault decisions
/// always key on the pass-local `round` so every engine draws the same
/// fates.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_receiver_faulty<M: Message>(
    graph: &Graph,
    plane: &MailboxPlane<M>,
    fault: &FaultState<M>,
    inbox: &mut Vec<(NodeId, M)>,
    v: usize,
    round: u64,
    stamp: u64,
    bandwidth: Bandwidth,
    targeted: bool,
    bcast: bool,
) -> Result<EdgeFlow, SimError> {
    let offsets = graph.offsets();
    let base = offsets[v];
    let mut flow = EdgeFlow::default();
    let mut bundle: Vec<M> = Vec::new();
    let v_down = fault.has_crashes() && fault.is_down(v, round);
    for (j, &u) in graph.neighbors(v as NodeId).iter().enumerate() {
        let e = base + j;
        // Held-back bundles from earlier rounds arrive before anything
        // sent this round — per sender, so inbox order stays sorted by
        // sender with send order within one.
        fault.deliver_due(e, u, v, round, inbox, &mut flow.faults);
        // Fresh bundle: the same slot gather (and drain) as the fast
        // path, redirected into a scratch buffer.
        // SAFETY: identical access protocol to the fault-free sweep —
        // receiver-side keyed slots, disjoint receiver ranges, phase
        // barrier between step writes and these reads (crate::plane).
        let eslot = targeted
            .then(|| unsafe { &mut *plane.slots[e].get() })
            .filter(|s| s.stamp == stamp);
        // SAFETY: broadcast slots are only read during routing.
        let bslot = bcast
            .then(|| unsafe { &*plane.bcast[u as usize].get() })
            .filter(|b| b.stamp == stamp);
        if eslot.is_none() && bslot.is_none() {
            continue;
        }
        let mut edge_bits = eslot.as_ref().map_or(0u64, |s| u64::from(s.bits))
            + bslot.map_or(0u64, |b| u64::from(b.bits));
        bundle.clear();
        match (eslot, bslot) {
            (Some(s), None) => {
                bundle.push(s.first.take().expect("live slot has a first message"));
                if s.spilled > 0 {
                    s.spilled = 0;
                    // SAFETY: same receiver-range exclusivity.
                    let sp = unsafe { &mut *plane.spill[e].get() };
                    bundle.extend(sp.drain(..).map(|(m, _)| m));
                }
            }
            (None, Some(b)) => {
                bundle.push(b.first.clone().expect("live slot has a first message"));
                if b.spilled > 0 {
                    // SAFETY: read-only, like the hot broadcast slot.
                    let sp = unsafe { &*plane.bcast_spill[u as usize].get() };
                    bundle.extend(sp.iter().map(|(m, _)| m.clone()));
                }
            }
            (Some(s), Some(b)) => {
                // Both lanes in one round: merge back into exact send
                // order by sequence tag, as the fast path does.
                let first_t = s.first.take().expect("live slot has a first message");
                s.spilled = 0;
                // SAFETY: as in the single-lane branches above.
                let sp_t = unsafe { &mut *plane.spill[e].get() };
                let sp_b = unsafe { &*plane.bcast_spill[u as usize].get() };
                let mut te = std::iter::once((s.seq, first_t))
                    .chain(sp_t.drain(..).map(|(m, q)| (q, m)))
                    .peekable();
                let first_b = b.first.clone().expect("live slot has a first message");
                let mut be = std::iter::once((b.seq, first_b))
                    .chain(sp_b.iter().map(|(m, q)| (*q, m.clone())))
                    .peekable();
                loop {
                    let take_targeted = match (te.peek(), be.peek()) {
                        (Some((tq, _)), Some((bq, _))) => tq < bq,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => break,
                    };
                    let (_, m) = if take_targeted {
                        te.next().expect("peeked")
                    } else {
                        be.next().expect("peeked")
                    };
                    bundle.push(m);
                }
            }
            (None, None) => unreachable!("filtered above"),
        }
        if apply_cap(
            &fault.plan,
            &mut bundle,
            &mut edge_bits,
            bandwidth,
            u,
            v as NodeId,
            round,
            &mut flow.faults,
        )? {
            fault.mark_perturbed(v);
        }
        // Transmission is accounted at the send round, post-truncation,
        // whatever fate the bundle then meets: the bits occupied the
        // channel even if the payload is lost or late.
        flow.max = flow.max.max(edge_bits);
        flow.bits += edge_bits;
        flow.messages += bundle.len() as u64;
        if bundle.is_empty() {
            continue;
        }
        if v_down {
            // A down receiver loses every inbound bundle — the bits
            // already occupied the channel, the payload lands nowhere.
            // No dice are rolled (decide is stateless, so skipping it
            // perturbs no other fate) and no sentinel is raised (the
            // node is dead, not starved).
            flow.faults.dropped += 1;
            continue;
        }
        match fault.decide(u, v as NodeId, round) {
            Decision::Drop => {
                flow.faults.dropped += 1;
                fault.mark_perturbed(v);
            }
            Decision::Delay { due, copies } => {
                flow.faults.delayed += 1;
                if copies > 1 {
                    flow.faults.duplicated += 1;
                }
                fault.hold(e, v, round, due, copies, std::mem::take(&mut bundle));
                fault.mark_perturbed(v);
            }
            Decision::Deliver { copies } => {
                if copies > 1 {
                    flow.faults.duplicated += 1;
                }
                for _ in 0..copies {
                    inbox.extend(bundle.iter().map(|m| (u, m.clone())));
                }
            }
        }
    }
    Ok(flow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn none_is_inactive_and_constructors_activate() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::default().is_active());
        assert!(FaultPlan::lossy(0.1).is_active());
        assert!(FaultPlan::none().with_delay(0.5, 3).is_active());
        assert!(FaultPlan::none().with_dup(0.2).is_active());
        assert!(FaultPlan::none().with_abort(0.01).is_active());
        assert!(FaultPlan::none().with_truncate().is_active());
        // Zero-rate constructors stay inactive.
        assert!(!FaultPlan::lossy(0.0).is_active());
    }

    #[test]
    fn quantize_clamps_and_scales() {
        assert_eq!(FaultPlan::quantize(0.0), 0);
        assert_eq!(FaultPlan::quantize(1.0), FaultPlan::ALWAYS);
        assert_eq!(FaultPlan::quantize(2.0), FaultPlan::ALWAYS);
        assert_eq!(FaultPlan::quantize(-1.0), 0);
        assert_eq!(FaultPlan::quantize(0.5), FaultPlan::ALWAYS / 2);
    }

    #[test]
    fn decisions_are_deterministic_and_extremes_are_certain() {
        let g = gen::cycle(8);
        let always_drop: FaultState<()> = FaultState::new(
            FaultPlan {
                drop_q: FaultPlan::ALWAYS,
                ..FaultPlan::none()
            },
            7,
            &g,
        );
        let never: FaultState<()> = FaultState::new(FaultPlan::lossy(0.0), 7, &g);
        for round in 0..50 {
            assert_eq!(always_drop.decide(0, 1, round), Decision::Drop);
            assert_eq!(never.decide(0, 1, round), Decision::Deliver { copies: 1 });
        }
        // Same (seed, plan) ⇒ same stream; different salt ⇒ (statistically)
        // a different one.
        let a: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5), 7, &g);
        let b: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5), 7, &g);
        let c: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5).resalted(1), 7, &g);
        let stream = |s: &FaultState<()>| {
            (0..200)
                .map(|r| s.decide(1, 2, r) == Decision::Drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(&a), stream(&b));
        assert_ne!(stream(&a), stream(&c));
    }

    #[test]
    fn delay_draws_stay_in_declared_span() {
        let g = gen::complete(4);
        let plan = FaultPlan::none().with_delay(1.0, 3);
        let state: FaultState<()> = FaultState::new(plan, 11, &g);
        for round in 0..200 {
            match state.decide(2, 3, round) {
                Decision::Delay { due, .. } => {
                    assert!(due > round && due <= round + 3, "due {due} round {round}");
                }
                other => panic!("delay_q=ALWAYS must delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn abort_stream_matches_probability_extremes() {
        let g = gen::cycle(4);
        let always: FaultState<()> = FaultState::new(FaultPlan::none().with_abort(1.0), 3, &g);
        let never: FaultState<()> = FaultState::new(FaultPlan::lossy(0.5), 3, &g);
        for r in 0..100 {
            assert!(always.abort_round(r));
            assert!(!never.abort_round(r));
        }
    }

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct Byte(u8);
    impl Message for Byte {
        fn bit_cost(&self) -> u64 {
            8
        }
    }

    #[test]
    fn holdback_queue_orders_and_counts() {
        let g = gen::path(3); // 0-1-2; edge ids: offsets[1] is node 1's in-slots
        let state: FaultState<Byte> = FaultState::new(FaultPlan::lossy(0.5), 1, &g);
        let offsets = g.offsets();
        // Node 1's in-edge from node 0 is position 0 of its neighbor list.
        let e = offsets[1];
        assert!(!state.has_pending(1));
        state.hold(e, 1, 0, 2, 1, vec![Byte(10), Byte(11)]);
        state.hold(e, 1, 1, 3, 2, vec![Byte(12)]);
        assert!(state.has_pending(1));
        let mut inbox = Vec::new();
        let mut faults = FaultCounters::default();
        state.deliver_due(e, 0, 1, 1, &mut inbox, &mut faults);
        assert!(inbox.is_empty(), "nothing due before round 2");
        state.deliver_due(e, 0, 1, 2, &mut inbox, &mut faults);
        assert_eq!(inbox, vec![(0, Byte(10)), (0, Byte(11))]);
        assert!(state.has_pending(1), "round-3 bundle still held");
        state.deliver_due(e, 0, 1, 3, &mut inbox, &mut faults);
        // The duplicated bundle arrives twice, after the earlier one.
        assert_eq!(
            inbox,
            vec![(0, Byte(10)), (0, Byte(11)), (0, Byte(12)), (0, Byte(12))]
        );
        assert!(!state.has_pending(1));
        assert_eq!(faults, FaultCounters::default(), "no crash, no drops");
    }

    /// Records its whole inbox, in delivery order, every round — the
    /// transcript that pins holdback-queue ordering.
    struct Recorder {
        rounds: u64,
        log: Vec<(u64, NodeId, u8)>,
        done: bool,
    }

    impl crate::Program for Recorder {
        type Msg = Byte;
        fn on_round(&mut self, ctx: &mut crate::Ctx<'_, Byte>) {
            let round = ctx.round();
            for (from, m) in ctx.inbox() {
                self.log.push((round, *from, m.0));
            }
            if round < self.rounds {
                ctx.broadcast(Byte((u64::from(ctx.id()) + round) as u8));
            } else {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    /// Satellite regression (PR 10): the [`FaultState::deliver_due`]
    /// ordering contract under composed delay + dup + schedule
    /// adversaries. Two pins: (a) bundles with interleaved due rounds on
    /// one edge deliver in send order, duplicates adjacent; (b) whole
    /// inbox transcripts are byte-identical across worker and shard
    /// counts — delivery order may never depend on the geometry.
    #[test]
    fn delivery_order_is_pinned_under_composition() {
        // (a) Direct pin, interleaved dues on one edge: sent 0 due 4,
        // sent 1 due 3, sent 2 due 4 duplicated.
        let g = gen::path(3);
        let state: FaultState<Byte> = FaultState::new(FaultPlan::lossy(0.0), 1, &g);
        let e = g.offsets()[1];
        state.hold(e, 1, 0, 4, 1, vec![Byte(0)]);
        state.hold(e, 1, 1, 3, 1, vec![Byte(1)]);
        state.hold(e, 1, 2, 4, 2, vec![Byte(2)]);
        let mut inbox = Vec::new();
        let mut faults = FaultCounters::default();
        state.deliver_due(e, 0, 1, 3, &mut inbox, &mut faults);
        assert_eq!(inbox, vec![(0, Byte(1))], "only the round-1 send is due");
        state.deliver_due(e, 0, 1, 4, &mut inbox, &mut faults);
        assert_eq!(
            inbox,
            vec![(0, Byte(1)), (0, Byte(0)), (0, Byte(2)), (0, Byte(2))],
            "due round 4 delivers in send order (0 then 2), copies adjacent"
        );
        assert!(!state.has_pending(1));

        // (b) Geometry pin: delay × dup × an active schedule plan, full
        // inbox transcripts identical for every worker and shard count.
        use crate::{SchedulePlan, Session, SimConfig};
        let g = gen::gnp(300, 0.03, 19);
        let n = g.n();
        let plan = FaultPlan::lossy(0.05).with_delay(0.25, 4).with_dup(0.15);
        let sched = SchedulePlan::jittery(0.3, 3).with_antififo(0.3, 4);
        let mut anchor: Option<Vec<Vec<(u64, NodeId, u8)>>> = None;
        for shards in [0usize, 1, 4, 8] {
            for threads in [1usize, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    fault: plan,
                    sched,
                    ..SimConfig::default()
                };
                let mut session: Session<'_, Byte> = Session::new(&g, cfg);
                let mut programs: Vec<Recorder> = (0..n)
                    .map(|_| Recorder {
                        rounds: 12,
                        log: Vec::new(),
                        done: false,
                    })
                    .collect();
                let report = session.run(&mut programs, 29).expect("faulty run");
                assert!(report.faults.delayed > 0, "the plan must actually delay");
                assert!(report.faults.duplicated > 0, "the plan must duplicate");
                let logs: Vec<_> = programs.into_iter().map(|p| p.log).collect();
                match &anchor {
                    None => anchor = Some(logs),
                    Some(a) => assert_eq!(
                        *a, logs,
                        "delivery order depends on shards={shards} threads={threads}"
                    ),
                }
            }
        }
    }

    /// Crash fates: the per-node state machine is deterministic, extreme
    /// rates are certain, crash-stop never recovers, and crash-recovery
    /// stays inside its declared window.
    #[test]
    fn crash_fates_are_deterministic_and_bounded() {
        let g = gen::cycle(16);
        let stop: FaultState<()> = FaultState::new(FaultPlan::none().with_crashes(1.0, 0), 5, &g);
        stop.advance_crashes(0, 16, 0);
        for v in 0..16 {
            assert!(stop.is_down(v, 0), "rate 1.0 must crash node {v}");
            assert!(stop.is_down(v, 400), "crash-stop never recovers");
        }
        assert_eq!(stop.collect_crashed().len(), 16);
        assert_eq!(stop.crash_event_total(), 16);

        let never: FaultState<()> = FaultState::new(FaultPlan::none().with_crashes(0.0, 0), 5, &g);
        assert!(!never.has_crashes());
        for r in 0..50 {
            never.advance_crashes(0, 16, r);
        }
        assert!(never.collect_crashed().is_empty());

        // Recovery window: a node down at round r is up again within
        // 1..=k rounds, and the fate stream replays exactly.
        let rec = FaultPlan::none().with_crashes(1.0, 3);
        let a: FaultState<()> = FaultState::new(rec, 9, &g);
        let b: FaultState<()> = FaultState::new(rec, 9, &g);
        let mut downs_a = Vec::new();
        let mut downs_b = Vec::new();
        for r in 0..60 {
            a.advance_crashes(0, 16, r);
            b.advance_crashes(0, 16, r);
            downs_a.push((0..16).map(|v| a.is_down(v, r)).collect::<Vec<_>>());
            downs_b.push((0..16).map(|v| b.is_down(v, r)).collect::<Vec<_>>());
        }
        assert_eq!(downs_a, downs_b, "same (seed, plan) ⇒ same fates");
        // At rate 1.0 with recovery, a node crashes the moment it is up,
        // so it must be down at round 0 and up again within 3 rounds of
        // every crash (i.e. some later round sees it up... then down
        // again immediately; just check the window bound via down_until).
        assert!(downs_a[0].iter().all(|&d| d), "rate 1.0 downs everyone");
        assert!(a.crash_event_total() >= 16, "recovered nodes re-crash");

        // Different salts draw (statistically) different fates: compare
        // the full down matrices, not the crashed sets (at this rate over
        // 30 rounds everyone crashes eventually under either salt).
        let half = FaultPlan::none().with_crashes(0.5, 0);
        let c: FaultState<()> = FaultState::new(half, 9, &g);
        let d: FaultState<()> = FaultState::new(half.resalted(1), 9, &g);
        let mut downs_c = Vec::new();
        let mut downs_d = Vec::new();
        for r in 0..30 {
            c.advance_crashes(0, 16, r);
            d.advance_crashes(0, 16, r);
            downs_c.push((0..16).map(|v| c.is_down(v, r)).collect::<Vec<_>>());
            downs_d.push((0..16).map(|v| d.is_down(v, r)).collect::<Vec<_>>());
        }
        assert_ne!(downs_c, downs_d, "resalted plans must re-roll crash dice");
    }

    /// The opt-in fail-fast verdicts: `crash_fatal` surfaces the
    /// earliest crash, `min_live` surfaces a lost quorum, and a plan
    /// without them reports Ok whatever crashed.
    #[test]
    fn crash_outcome_verdicts() {
        let g = gen::cycle(8);
        let plain: FaultState<()> = FaultState::new(FaultPlan::none().with_crashes(1.0, 0), 3, &g);
        plain.advance_crashes(0, 8, 0);
        assert_eq!(plain.crash_outcome(1), Ok(()));

        let fatal: FaultState<()> = FaultState::new(
            FaultPlan::none().with_crashes(1.0, 0).with_fatal_crashes(),
            3,
            &g,
        );
        fatal.advance_crashes(0, 8, 0);
        assert!(matches!(
            fatal.crash_outcome(1),
            Err(SimError::NodeCrashed { round: 0, .. })
        ));

        let quorum: FaultState<()> =
            FaultState::new(FaultPlan::none().with_crashes(1.0, 0).with_quorum(5), 3, &g);
        quorum.advance_crashes(0, 8, 0);
        assert_eq!(
            quorum.crash_outcome(1),
            Err(SimError::QuorumLost {
                live: 0,
                quorum: 5,
                round: 1
            })
        );
        // A quorum the run keeps is no error.
        let kept: FaultState<()> =
            FaultState::new(FaultPlan::none().with_crashes(0.0, 0).with_quorum(5), 3, &g);
        assert_eq!(kept.crash_outcome(1), Ok(()));
    }

    /// Crash-aware delivery: a held bundle due while its sender is down
    /// is dropped and the (live) receiver's starvation sentinel fires; a
    /// down receiver loses the bundle without a sentinel.
    #[test]
    fn due_bundles_drop_when_an_endpoint_is_down() {
        let g = gen::path(3); // 0-1-2
        let plan = FaultPlan::none().with_crashes(1.0, 0);
        let state: FaultState<Byte> = FaultState::new(plan, 1, &g);
        let e = g.offsets()[1]; // node 1's in-edge from node 0
        state.hold(e, 1, 0, 2, 1, vec![Byte(7)]);
        // Crash everyone at round 1 (rate 1.0).
        state.advance_crashes(0, 3, 1);
        let mut inbox = Vec::new();
        let mut faults = FaultCounters::default();
        state.deliver_due(e, 0, 1, 2, &mut inbox, &mut faults);
        assert!(inbox.is_empty(), "both endpoints down: bundle lost");
        assert_eq!(faults.dropped, 1);
        assert!(!state.has_pending(1));
        assert!(
            !state.collect_starved().contains(&1),
            "a dead receiver is not 'starved'"
        );
    }

    /// Fault fates key on the directed edge, so every shard × worker
    /// geometry sees the identical fault stream: counters, starved
    /// sentinels, and program state all match the unsharded run.
    #[test]
    fn fault_fates_are_shard_invariant() {
        use crate::engine::tests::min_flood_programs;
        use crate::{Session, SimConfig};
        let g = gen::gnp(300, 0.03, 19);
        let plan = FaultPlan::lossy(0.10).with_delay(0.15, 3).with_dup(0.10);
        let mut anchor = None;
        for shards in [0usize, 1, 4, 8] {
            for threads in [1usize, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    fault: plan,
                    ..SimConfig::default()
                };
                let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
                let mut programs = min_flood_programs(300);
                let report = session.run(&mut programs, 29).expect("faulty run");
                assert!(report.faults.any(), "the plan must actually perturb");
                let mins: Vec<_> = programs.iter().map(|p| p.min).collect();
                match &anchor {
                    None => anchor = Some((report, mins)),
                    Some((r, m)) => {
                        assert_eq!(r, &report, "shards {shards} threads {threads}");
                        assert_eq!(m, &mins, "shards {shards} threads {threads}");
                    }
                }
            }
        }
    }

    /// Crash fates key on the node (not the shard or worker), so every
    /// shard × worker geometry sees identical crash fates: counters,
    /// crashed sets, and program state all match the unsharded run.
    #[test]
    fn crash_fates_are_shard_invariant() {
        use crate::engine::tests::min_flood_programs;
        use crate::{Session, SimConfig};
        let g = gen::gnp(300, 0.03, 19);
        let plan = FaultPlan::none().with_crashes(0.002, 4).with_delay(0.10, 2);
        let mut anchor = None;
        for shards in [0usize, 1, 4, 8] {
            for threads in [1usize, 8] {
                let cfg = SimConfig {
                    threads,
                    shards,
                    fault: plan,
                    ..SimConfig::default()
                };
                let mut session: Session<'_, crate::engine::tests::IdMsg> = Session::new(&g, cfg);
                let mut programs = min_flood_programs(300);
                let report = session.run(&mut programs, 31).expect("crashy run");
                assert!(report.faults.crashes > 0, "the plan must actually crash");
                assert!(!report.crashed.is_empty());
                let mins: Vec<_> = programs.iter().map(|p| p.min).collect();
                match &anchor {
                    None => anchor = Some((report, mins)),
                    Some((r, m)) => {
                        assert_eq!(r, &report, "shards {shards} threads {threads}");
                        assert_eq!(m, &mins, "shards {shards} threads {threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn counters_merge_and_total() {
        let mut a = FaultCounters {
            dropped: 1,
            delayed: 2,
            duplicated: 3,
            truncated: 4,
            misrouted: 5,
            crashes: 6,
        };
        assert!(a.any());
        assert_eq!(a.total(), 21);
        a.merge(&a.clone());
        assert_eq!(a.total(), 42);
        assert!(!FaultCounters::default().any());
    }
}
