//! Message cost accounting.
//!
//! In the CONGEST model a message crossing an edge in one round may carry
//! `O(log n)` bits. Every protocol message type implements [`Message`] and
//! reports its size honestly: a raw color costs the declared color-space
//! width, a hash-family index costs `⌈log₂ F⌉`, a window bitmap costs σ,
//! and so on. The engine sums these per directed edge per round.

/// A CONGEST message: cloneable payload with a declared bit size.
///
/// `Send + Sync` lets the engine share delivered inboxes across worker
/// threads; message types are plain data, so both come for free.
pub trait Message: Clone + Send + Sync + 'static {
    /// Number of bits this message occupies on the wire.
    fn bit_cost(&self) -> u64;
}

/// The empty message (pure synchronization pulses).
impl Message for () {
    fn bit_cost(&self) -> u64 {
        0
    }
}

/// Helper: cost in bits of an integer known to lie in `[0, bound)`.
///
/// # Example
///
/// ```
/// use congest::message::bits_for_range;
/// assert_eq!(bits_for_range(1), 0);
/// assert_eq!(bits_for_range(2), 1);
/// assert_eq!(bits_for_range(1000), 10);
/// ```
pub fn bits_for_range(bound: u64) -> u64 {
    u64::from(64 - bound.saturating_sub(1).leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_message_is_free() {
        assert_eq!(().bit_cost(), 0);
    }

    #[test]
    fn range_bits() {
        assert_eq!(bits_for_range(0), 0);
        assert_eq!(bits_for_range(1), 0);
        assert_eq!(bits_for_range(3), 2);
        assert_eq!(bits_for_range(4), 2);
        assert_eq!(bits_for_range(5), 3);
        assert_eq!(bits_for_range(u64::MAX), 64);
    }
}
