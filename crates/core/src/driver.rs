//! The pass driver: threads node states through a sequence of engine runs
//! and accumulates their round/bit costs in a [`PassLog`].
//!
//! By default every pass of a solve runs on **one persistent
//! [`congest::Session`]** — the mailbox plane, worker pool, RNG vector,
//! and scheduler scratch are built once and reused, and each pass only
//! pays the O(n) frontier/RNG reset (see [`EngineMode`]). The per-pass
//! seed derivation (`mix2(solve seed, pass counter)`) is unchanged, so
//! every engine mode produces byte-identical transcripts. The same seed
//! also keys any active [`congest::FaultPlan`]: fault fates are a pure
//! function of `(pass seed, plan, edge, round)`, so the byte-identity
//! guarantee extends to faulty runs — same plan, same losses, same
//! recovery, whatever the engine mode or thread count. An active
//! [`congest::SchedulePlan`] is keyed the same way: each pass draws its
//! schedule from its own pass seed, the α-synchronizer keeps the pass
//! transcript byte-identical to the synchronous run, and only the
//! synchronizer overhead counters in the [`PassLog`] record that the
//! adversary was there. A wedged schedule fails the pass with the
//! non-transient [`SimError::ScheduleStalled`].

use crate::passes::{ActivatePass, StatePass};
use crate::state::NodeState;
use crate::trycolor::TryColorPass;
use crate::wire::Wire;
use congest::{PassLog, Session, SimConfig, SimError};
use graphs::{Color, Graph};
use prand::mix::mix2;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation token: a wall-clock deadline, a shared
/// flag, or both. The [`Driver`] consults it **at pass boundaries only**
/// (the engine never interrupts a pass mid-round), failing the next pass
/// with [`SimError::Cancelled`] and the recovered node states — so a
/// cancelled solve still yields a consistent partial coloring.
///
/// This is what gives the serving layer (`d1lc::server`) per-request
/// deadlines and shutdown cancellation without ever producing a
/// transcript that differs from an uncancelled run: a token that never
/// fires changes nothing.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that fires once the wall clock reaches `at`.
    pub fn at(at: Instant) -> Self {
        CancelToken {
            deadline: Some(at),
            flag: None,
        }
    }

    /// A token that fires when the shared flag is raised (e.g. server
    /// shutdown broadcast to in-flight solves).
    pub fn flagged(flag: Arc<AtomicBool>) -> Self {
        CancelToken {
            deadline: None,
            flag: Some(flag),
        }
    }

    /// Add a wall-clock deadline to this token.
    #[must_use]
    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Whether the token has fired (deadline passed or flag raised).
    pub fn is_cancelled(&self) -> bool {
        self.deadline.is_some_and(|at| Instant::now() >= at)
            || self
                .flag
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// Which engine path a [`Driver`] runs its passes on. All three produce
/// byte-identical transcripts, reports, and colorings for every thread
/// count; they differ only in speed (differentially tested in
/// `tests/prop_invariants.rs`, measured by experiment E0b).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// One persistent session for the whole solve: plane, pool, and
    /// scratch built once, frontier and RNGs reset per pass. The fast
    /// default.
    #[default]
    Session,
    /// The pre-session engine, per pass
    /// ([`congest::reference::run_mailbox_sweep`]): mailbox plane rebuilt
    /// every pass, all `n` programs stepped and every edge slot swept
    /// every round, worker threads respawned per pass. Kept as the
    /// baseline arm of the E0b microbench.
    PerPass,
    /// The legacy sort-and-scatter plane per pass
    /// ([`congest::reference::run_reference`]) — differential testing
    /// and benchmarking only.
    Reference,
}

/// A failed engine pass **with the node states recovered** from the
/// aborted programs, so callers can report partial colorings instead of
/// aborting blind. Converts into the bare [`SimError`] via `From` (which
/// is how [`crate::solve`] propagates it).
#[derive(Debug)]
pub struct PassFailure {
    /// The engine error that aborted the pass.
    pub error: SimError,
    /// Every node's last consistent state. Empty in the legacy modes
    /// ([`EngineMode::PerPass`] / [`EngineMode::Reference`]), whose
    /// entry points consume their programs.
    pub states: Vec<NodeState>,
}

impl PassFailure {
    /// The partial coloring at the moment of failure (one entry per
    /// node, `None` where uncolored; empty in reference mode).
    pub fn partial_coloring(&self) -> Vec<Option<Color>> {
        self.states.iter().map(|s| s.color).collect()
    }

    /// Recover a failure from [`Driver::run_seeded`]'s
    /// `(error, programs)` pair by unwrapping the programs' states.
    pub fn from_programs<P: StatePass>((error, programs): (SimError, Vec<P>)) -> Self {
        PassFailure {
            error,
            states: programs.into_iter().map(StatePass::into_state).collect(),
        }
    }
}

impl From<PassFailure> for SimError {
    fn from(failure: PassFailure) -> SimError {
        failure.error
    }
}

enum Engine<'g> {
    Session(Box<Session<'g, Wire>>),
    PerPass,
    Reference,
}

/// Drives passes over a graph and its node states.
pub struct Driver<'g> {
    /// The graph everything runs on.
    pub graph: &'g Graph,
    /// Engine configuration template (seed varies per pass).
    pub config: SimConfig,
    /// Accumulated metrics, one entry per pass.
    pub log: PassLog,
    engine: Engine<'g>,
    seed: u64,
    pass_counter: u64,
    cancel: Option<CancelToken>,
}

impl<'g> Driver<'g> {
    /// A driver with the given base engine config, running every pass on
    /// one persistent session ([`EngineMode::Session`]).
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Driver::with_engine(graph, config, EngineMode::Session)
    }

    /// A driver running its passes through the given engine path.
    pub fn with_engine(graph: &'g Graph, config: SimConfig, mode: EngineMode) -> Self {
        let engine = match mode {
            EngineMode::Session => Engine::Session(Box::new(Session::new(graph, config))),
            EngineMode::PerPass => Engine::PerPass,
            EngineMode::Reference => Engine::Reference,
        };
        Driver {
            graph,
            config,
            log: PassLog::new(),
            engine,
            seed: config.seed,
            pass_counter: 0,
            cancel: None,
        }
    }

    /// A driver running on an **already-bound session** — the
    /// throughput-mode entry point: `d1lc::service::SolveService` binds a
    /// pooled [`congest::SessionCore`] to the request's graph and hands
    /// the session here, so a stream of solves reuses one warm engine.
    /// Behaviour is byte-identical to [`Driver::new`] on the same graph
    /// and config (session reuse only changes who owns the allocations).
    pub fn from_session(session: Session<'g, Wire>) -> Self {
        Driver {
            graph: session.graph(),
            config: session.config(),
            log: PassLog::new(),
            seed: session.config().seed,
            engine: Engine::Session(Box::new(session)),
            pass_counter: 0,
            cancel: None,
        }
    }

    /// Install a cooperative [`CancelToken`]: every subsequent pass
    /// checks it at its boundary and fails with [`SimError::Cancelled`]
    /// (states recovered) once it fires. A token that never fires leaves
    /// the transcript byte-identical to an un-cancelled run.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// The `Err` payload for a firing token, or `None` to proceed.
    fn cancelled_now(&self) -> Option<SimError> {
        self.cancel
            .as_ref()
            .filter(|t| t.is_cancelled())
            .map(|_| SimError::Cancelled {
                after_passes: self.pass_counter,
            })
    }

    /// Recover the engine session for recycling (`None` for the legacy
    /// engine modes, which own no session). The caller typically unbinds
    /// it back into a [`congest::SessionCore`] and pools it for the next
    /// solve.
    pub fn into_session(self) -> Option<Session<'g, Wire>> {
        match self.engine {
            Engine::Session(session) => Some(*session),
            _ => None,
        }
    }

    /// Whether this driver runs a preserved pre-session baseline
    /// ([`EngineMode::PerPass`] / [`EngineMode::Reference`]). Passes
    /// with a dual compute path (e.g. the ACD estimate signatures, see
    /// `estimate::window_signature_reference`) select their pre-fusion
    /// reference implementation under a legacy engine, so the E0b
    /// microbench's baseline arms measure the full pre-PR configuration
    /// — engine *and* pass compute. Outputs are identical either way
    /// (pinned by tests).
    pub fn legacy_compute(&self) -> bool {
        !matches!(self.engine, Engine::Session(_))
    }

    /// Mark a pipeline-phase boundary: every pass recorded from now on is
    /// attributed to `name` in [`PassLog::phase_breakdown`]. Purely a
    /// metrics label — no rounds are spent.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.log.set_phase(name);
    }

    /// Run one pass: build a program per node (in id order), execute to
    /// completion on the driver's engine, recover the states, record
    /// metrics under `name`.
    ///
    /// # Errors
    ///
    /// Engine errors come back as a [`PassFailure`] carrying every
    /// node's last consistent state, so callers can report partial
    /// colorings instead of aborting blind.
    pub fn run_pass<P, B>(
        &mut self,
        name: &'static str,
        states: Vec<NodeState>,
        mut build: B,
    ) -> Result<Vec<NodeState>, PassFailure>
    where
        P: StatePass,
        B: FnMut(NodeState) -> P,
    {
        if let Some(error) = self.cancelled_now() {
            return Err(PassFailure { error, states });
        }
        self.pass_counter += 1;
        let seed = mix2(self.seed, self.pass_counter);
        let mut programs: Vec<P> = states.into_iter().map(&mut build).collect();
        let outcome = match &mut self.engine {
            Engine::Session(session) => session.run(&mut programs, seed),
            legacy => {
                let config = SimConfig {
                    seed,
                    ..self.config
                };
                let run = match legacy {
                    Engine::PerPass => congest::reference::run_mailbox_sweep::<P>,
                    _ => congest::reference::run_reference::<P>,
                };
                return match run(self.graph, programs, config) {
                    Ok((programs, report)) => {
                        self.log.record(name, report);
                        Ok(programs.into_iter().map(StatePass::into_state).collect())
                    }
                    Err(error) => Err(PassFailure {
                        error,
                        states: Vec::new(),
                    }),
                };
            }
        };
        match outcome {
            Ok(report) => {
                self.log.record(name, report);
                Ok(programs.into_iter().map(StatePass::into_state).collect())
            }
            Err(error) => Err(PassFailure {
                error,
                states: programs.into_iter().map(StatePass::into_state).collect(),
            }),
        }
    }

    /// Run an arbitrary program pass on the driver's engine with an
    /// **explicit engine seed** — for passes whose seed derivation is not
    /// the driver's pass counter, or whose programs carry extra outputs
    /// beyond a [`NodeState`] (so [`Driver::run_pass`] cannot recover
    /// them). Records metrics under `name`; does not advance the pass
    /// counter.
    ///
    /// # Errors
    ///
    /// Returns the engine error together with the programs (empty in
    /// [`EngineMode::Reference`], whose legacy entry point consumes
    /// them), so callers can recover states for partial reporting.
    #[allow(clippy::type_complexity)]
    pub fn run_seeded<P: congest::Program<Msg = Wire>>(
        &mut self,
        name: &'static str,
        seed: u64,
        mut programs: Vec<P>,
    ) -> Result<Vec<P>, (SimError, Vec<P>)> {
        if let Some(error) = self.cancelled_now() {
            return Err((error, programs));
        }
        let outcome = match &mut self.engine {
            Engine::Session(session) => session.run(&mut programs, seed),
            legacy => {
                let config = SimConfig {
                    seed,
                    ..self.config
                };
                let run = match legacy {
                    Engine::PerPass => congest::reference::run_mailbox_sweep::<P>,
                    _ => congest::reference::run_reference::<P>,
                };
                return match run(self.graph, programs, config) {
                    Ok((programs, report)) => {
                        self.log.record(name, report);
                        Ok(programs)
                    }
                    Err(error) => Err((error, Vec::new())),
                };
            }
        };
        match outcome {
            Ok(report) => {
                self.log.record(name, report);
                Ok(programs)
            }
            Err(error) => Err((error, programs)),
        }
    }

    /// Refresh activation: node `v` stays/becomes active iff `keep(v)` and
    /// it is uncolored; all activity/coloring flags are re-exchanged.
    ///
    /// # Errors
    ///
    /// Propagates engine errors with the recovered states.
    pub fn activate(
        &mut self,
        states: Vec<NodeState>,
        mut keep: impl FnMut(&NodeState) -> bool,
    ) -> Result<Vec<NodeState>, PassFailure> {
        self.run_pass("activate", states, |st| {
            let on = keep(&st);
            ActivatePass::new(st, on)
        })
    }

    /// One synchronized `TryRandomColor` trial over the active nodes.
    ///
    /// # Errors
    ///
    /// Propagates engine errors with the recovered states.
    pub fn try_color(
        &mut self,
        states: Vec<NodeState>,
        name: &'static str,
    ) -> Result<Vec<NodeState>, PassFailure> {
        self.run_pass(name, states, |st| TryColorPass::every_node(st, name))
    }

    /// Number of nodes currently active.
    pub fn active_count(states: &[NodeState]) -> usize {
        states.iter().filter(|s| s.active).count()
    }

    /// Number of uncolored nodes.
    pub fn uncolored_count(states: &[NodeState]) -> usize {
        states.iter().filter(|s| s.uncolored()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use graphs::gen;

    fn fresh(g: &Graph) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as u32);
                let list: Vec<u64> = (0..=(d as u64)).collect();
                NodeState::new(
                    v as u32,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 16, d),
                    d,
                )
            })
            .collect()
    }

    #[test]
    fn activate_then_trials_color_everything() {
        let g = gen::cycle(20);
        let mut driver = Driver::new(&g, SimConfig::seeded(5));
        let mut states = fresh(&g);
        states = driver.activate(states, |_| true).unwrap();
        assert_eq!(Driver::active_count(&states), 20);
        for _ in 0..60 {
            states = driver.try_color(states, "trial").unwrap();
            if Driver::uncolored_count(&states) == 0 {
                break;
            }
        }
        assert!(Driver::uncolored_count(&states) <= 2);
        assert!(driver.log.total_rounds() > 0);
        assert!(driver.log.passes().len() >= 2);
    }

    /// Satellite: a failed pass returns the recovered states alongside
    /// the error, so callers can report partial colorings.
    #[test]
    fn failed_pass_returns_states_for_partial_reporting() {
        let g = gen::complete(8);
        // An 8-bit cap passes the 2-bit activation flags but not the
        // 16-bit color trials.
        let cfg = SimConfig {
            bandwidth: congest::Bandwidth::Strict(8),
            ..SimConfig::seeded(3)
        };
        let mut driver = Driver::new(&g, cfg);
        let mut states = fresh(&g);
        states[0].color = Some(99);
        states = driver.activate(states, |_| true).unwrap();
        let failure = driver
            .try_color(states, "trial")
            .expect_err("16-bit colors must blow an 8-bit cap");
        assert!(matches!(
            failure.error,
            congest::SimError::BandwidthExceeded { .. }
        ));
        assert_eq!(failure.states.len(), 8, "states recovered with the error");
        let partial = failure.partial_coloring();
        assert_eq!(partial[0], Some(99), "pre-existing coloring survives");
        // The recovered states are consistent driver inputs: a fresh
        // driver without the cap finishes the solve from them.
        let mut retry = Driver::new(&g, SimConfig::seeded(4));
        let mut states = failure.states;
        for _ in 0..40 {
            states = retry.try_color(states, "retry").unwrap();
            if Driver::uncolored_count(&states) == 0 {
                break;
            }
        }
        assert_eq!(Driver::uncolored_count(&states), 0);
    }

    /// All three engine modes drive byte-identical pass sequences.
    #[test]
    fn engine_modes_are_transcript_identical() {
        let g = gen::gnp(60, 0.1, 2);
        let run_mode = |mode: EngineMode| {
            let mut driver = Driver::with_engine(&g, SimConfig::seeded(9), mode);
            let mut states = fresh(&g);
            states = driver.activate(states, |_| true).unwrap();
            for _ in 0..12 {
                states = driver.try_color(states, "trial").unwrap();
            }
            let colors: Vec<_> = states.iter().map(|s| s.color).collect();
            (colors, driver.log)
        };
        let (base_colors, base_log) = run_mode(EngineMode::Session);
        for mode in [EngineMode::PerPass, EngineMode::Reference] {
            let (colors, log) = run_mode(mode);
            assert_eq!(base_colors, colors, "{mode:?} coloring diverged");
            assert_eq!(base_log.passes(), log.passes(), "{mode:?} log diverged");
        }
    }

    /// A fired cancel token fails the next pass at its boundary with
    /// the states recovered; an unfired one changes nothing.
    #[test]
    fn cancel_token_fires_at_pass_boundaries() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let g = gen::gnp(40, 0.1, 5);
        // An unfired token leaves the transcript untouched.
        let run = |token: Option<CancelToken>| {
            let mut driver = Driver::new(&g, SimConfig::seeded(6));
            if let Some(t) = token {
                driver.set_cancel(t);
            }
            let states = driver.activate(fresh(&g), |_| true).unwrap();
            (driver, states)
        };
        let (plain, plain_states) = run(None);
        let flag = Arc::new(AtomicBool::new(false));
        let (tokened, tokened_states) = run(Some(CancelToken::flagged(Arc::clone(&flag))));
        assert_eq!(plain.log.passes(), tokened.log.passes());
        let colors = |s: &[NodeState]| s.iter().map(|n| n.color).collect::<Vec<_>>();
        assert_eq!(colors(&plain_states), colors(&tokened_states));

        // Fire the flag: the very next pass boundary rejects the run
        // and hands the states back as a consistent partial result.
        let (mut driver, states) = run(Some(CancelToken::flagged(Arc::clone(&flag))));
        flag.store(true, Ordering::Relaxed);
        let passes_before = driver.log.passes().len() as u64;
        let failure = driver
            .try_color(states, "trial")
            .expect_err("a fired token cancels at the boundary");
        assert_eq!(
            failure.error,
            congest::SimError::Cancelled {
                after_passes: passes_before
            }
        );
        assert_eq!(failure.states.len(), 40, "states recovered intact");
        // An already-expired deadline behaves identically.
        let expired = CancelToken::at(std::time::Instant::now());
        assert!(expired.is_cancelled());
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn pass_seeds_differ() {
        // Two identical try_color passes must not repeat the same random
        // choices (they'd deadlock on a clique otherwise).
        let g = gen::complete(8);
        let mut driver = Driver::new(&g, SimConfig::seeded(1));
        let mut states = fresh(&g);
        states = driver.activate(states, |_| true).unwrap();
        for _ in 0..40 {
            states = driver.try_color(states, "trial").unwrap();
        }
        // With fresh randomness each pass, a K8 with 8-color lists
        // eventually colors fully.
        assert_eq!(Driver::uncolored_count(&states), 0);
    }
}
