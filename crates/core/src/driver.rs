//! The pass driver: threads node states through a sequence of engine runs
//! and accumulates their round/bit costs in a [`PassLog`].

use crate::passes::{ActivatePass, StatePass};
use crate::state::NodeState;
use crate::trycolor::TryColorPass;
use congest::{PassLog, SimConfig, SimError};
use graphs::Graph;
use prand::mix::mix2;

/// Drives passes over a graph and its node states.
pub struct Driver<'g> {
    /// The graph everything runs on.
    pub graph: &'g Graph,
    /// Engine configuration template (seed varies per pass).
    pub config: SimConfig,
    /// Accumulated metrics, one entry per pass.
    pub log: PassLog,
    seed: u64,
    pass_counter: u64,
}

impl<'g> Driver<'g> {
    /// A driver with the given base engine config.
    pub fn new(graph: &'g Graph, config: SimConfig) -> Self {
        Driver {
            graph,
            config,
            log: PassLog::new(),
            seed: config.seed,
            pass_counter: 0,
        }
    }

    /// Mark a pipeline-phase boundary: every pass recorded from now on is
    /// attributed to `name` in [`PassLog::phase_breakdown`]. Purely a
    /// metrics label — no rounds are spent.
    pub fn begin_phase(&mut self, name: impl Into<String>) {
        self.log.set_phase(name);
    }

    /// Run one pass: build a program per node (in id order), execute to
    /// completion, recover the states, record metrics under `name`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; states are lost in that case (the whole
    /// solve aborts).
    pub fn run_pass<P, B>(
        &mut self,
        name: &'static str,
        states: Vec<NodeState>,
        mut build: B,
    ) -> Result<Vec<NodeState>, SimError>
    where
        P: StatePass,
        B: FnMut(NodeState) -> P,
    {
        self.pass_counter += 1;
        let config = SimConfig {
            seed: mix2(self.seed, self.pass_counter),
            ..self.config
        };
        let programs: Vec<P> = states.into_iter().map(&mut build).collect();
        let (programs, report) = congest::run(self.graph, programs, config)?;
        self.log.record(name, report);
        Ok(programs.into_iter().map(StatePass::into_state).collect())
    }

    /// Refresh activation: node `v` stays/becomes active iff `keep(v)` and
    /// it is uncolored; all activity/coloring flags are re-exchanged.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn activate(
        &mut self,
        states: Vec<NodeState>,
        mut keep: impl FnMut(&NodeState) -> bool,
    ) -> Result<Vec<NodeState>, SimError> {
        self.run_pass("activate", states, |st| {
            let on = keep(&st);
            ActivatePass::new(st, on)
        })
    }

    /// One synchronized `TryRandomColor` trial over the active nodes.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn try_color(
        &mut self,
        states: Vec<NodeState>,
        name: &'static str,
    ) -> Result<Vec<NodeState>, SimError> {
        self.run_pass(name, states, |st| TryColorPass::every_node(st, name))
    }

    /// Number of nodes currently active.
    pub fn active_count(states: &[NodeState]) -> usize {
        states.iter().filter(|s| s.active).count()
    }

    /// Number of uncolored nodes.
    pub fn uncolored_count(states: &[NodeState]) -> usize {
        states.iter().filter(|s| s.uncolored()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use graphs::gen;

    fn fresh(g: &Graph) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as u32);
                let list: Vec<u64> = (0..=(d as u64)).collect();
                NodeState::new(
                    v as u32,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 16, d),
                    d,
                )
            })
            .collect()
    }

    #[test]
    fn activate_then_trials_color_everything() {
        let g = gen::cycle(20);
        let mut driver = Driver::new(&g, SimConfig::seeded(5));
        let mut states = fresh(&g);
        states = driver.activate(states, |_| true).unwrap();
        assert_eq!(Driver::active_count(&states), 20);
        for _ in 0..60 {
            states = driver.try_color(states, "trial").unwrap();
            if Driver::uncolored_count(&states) == 0 {
                break;
            }
        }
        assert!(Driver::uncolored_count(&states) <= 2);
        assert!(driver.log.total_rounds() > 0);
        assert!(driver.log.passes().len() >= 2);
    }

    #[test]
    fn pass_seeds_differ() {
        // Two identical try_color passes must not repeat the same random
        // choices (they'd deadlock on a clique otherwise).
        let g = gen::complete(8);
        let mut driver = Driver::new(&g, SimConfig::seeded(1));
        let mut states = fresh(&g);
        states = driver.activate(states, |_| true).unwrap();
        for _ in 0..40 {
            states = driver.try_color(states, "trial").unwrap();
        }
        // With fresh randomness each pass, a K8 with 8-color lists
        // eventually colors fully.
        assert_eq!(Driver::uncolored_count(&states), 0);
    }
}
