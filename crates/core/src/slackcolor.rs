//! `SlackColor(s_min)` — Algorithm 15.
//!
//! Colors nodes that have slack linear in their degree in `O(log* s_min)`
//! `MultiTrial` invocations: a constant number of single-color warm-up
//! trials, a tetration ladder `x_i = 2↑↑i`, a polynomial ladder
//! `x_i = ρ^{iκ}` with `ρ = s_min^{1/(1+κ)}`, and a final `MultiTrial(ρ)`.
//! Nodes whose uncolored degree stops shrinking fast enough drop out (they
//! are swept up by the post-shattering cleanup).

use crate::config::ParamProfile;
use crate::driver::{Driver, PassFailure};
use crate::multitrial::MultiTrialPass;
use crate::state::NodeState;

/// The tetration sequence `2↑↑i` for `i = 0, 1, 2, …`, saturating at
/// `cap`.
pub fn tetration_ladder(cap: u64) -> Vec<u64> {
    let mut ladder = vec![1u64];
    loop {
        let last = *ladder.last().expect("ladder never empty");
        if last >= cap || last >= 32 {
            break;
        }
        let next = 1u64.checked_shl(last as u32).unwrap_or(u64::MAX).min(cap);
        if next <= last {
            break;
        }
        ladder.push(next);
    }
    ladder
}

/// Run `SlackColor(s_min)` over the currently active nodes.
///
/// `s_min` is the globally known lower bound on participant slack; the
/// caller derives it (the paper assumes it known). Progress checks follow
/// Alg. 15 lines 2, 7 and 12; dropped nodes simply deactivate.
///
/// # Errors
///
/// Propagates engine errors.
pub fn slack_color(
    driver: &mut Driver<'_>,
    mut states: Vec<NodeState>,
    profile: &ParamProfile,
    seed: u64,
    smin: u64,
    pass_name: &'static str,
) -> Result<Vec<NodeState>, PassFailure> {
    let n = driver.graph.n();
    let smin = smin.max(1);

    // Line 1: a constant number of single-color trials.
    for _ in 0..profile.slackcolor_initial_trials {
        states = driver.try_color(states, pass_name)?;
    }

    // Line 2: terminate (drop out) if s(v) < 2·d̂(v) (factor from the
    // profile; the laptop profile disables this gate and relies on the
    // ladder's progress checks).
    if profile.slack_entry_factor > 0.0 {
        for st in &mut states {
            if st.active
                && (st.slack() as f64)
                    < profile.slack_entry_factor * st.active_uncolored_degree() as f64
            {
                st.active = false;
            }
        }
        states = driver.activate(states, |st| st.active)?;
    }

    let kappa = profile.kappa;
    let rho = (smin as f64).powf(1.0 / (1.0 + kappa)).max(2.0);
    let rho_k = rho.powf(kappa);

    let multitrial = |driver: &mut Driver<'_>,
                      states: Vec<NodeState>,
                      x: u64|
     -> Result<Vec<NodeState>, PassFailure> {
        let x = x.min(1 << 20) as u32;
        driver.run_pass(pass_name, states, |st| {
            // Lemma 6 cap: x ≤ |Ψ_v|/(2|N(v)|), enforced per node.
            let cap =
                (st.palette.len() as u64 / (2 * st.active_uncolored_degree().max(1) as u64)).max(1);
            MultiTrialPass::new(st, x.min(cap as u32), *profile, seed, n, pass_name)
        })
    };

    // Lines 4–8: tetration ladder, MultiTrial twice per level.
    for &x in &tetration_ladder(rho.ceil() as u64) {
        for _ in 0..2 {
            states = multitrial(driver, states, x)?;
        }
        let bound = |s: i64| s as f64 / (2f64.powi(x.min(60) as i32)).min(rho_k);
        for st in &mut states {
            if st.active && (st.active_uncolored_degree() as f64) > bound(st.slack()) {
                st.active = false;
            }
        }
        states = driver.activate(states, |st| st.active)?;
        if Driver::active_count(&states) == 0 {
            return Ok(states);
        }
    }

    // Lines 9–13: polynomial ladder, MultiTrial three times per level.
    let levels = (1.0 / kappa).ceil() as u32;
    for i in 1..=levels {
        let x = rho.powf(f64::from(i) * kappa).ceil() as u64;
        for _ in 0..3 {
            states = multitrial(driver, states, x)?;
        }
        let cap = rho.powf(f64::from(i + 1) * kappa).min(rho);
        for st in &mut states {
            if st.active && (st.active_uncolored_degree() as f64) > st.slack() as f64 / cap {
                st.active = false;
            }
        }
        states = driver.activate(states, |st| st.active)?;
        if Driver::active_count(&states) == 0 {
            return Ok(states);
        }
    }

    // Line 14: the final big trial.
    states = multitrial(driver, states, rho.ceil() as u64)?;
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph, NodeId};

    #[test]
    fn tetration_values() {
        assert_eq!(tetration_ladder(100), vec![1, 2, 4, 16, 100]);
        assert_eq!(tetration_ladder(3), vec![1, 2, 3]);
        assert_eq!(tetration_ladder(1), vec![1]);
    }

    fn states_with_extra(g: &Graph, extra: usize) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..(d + 1 + extra) as u64).map(|i| i * 7).collect();
                NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 24, d),
                    d,
                )
            })
            .collect()
    }

    #[test]
    fn slack_color_colors_high_slack_graphs() {
        let g = gen::gnp(100, 0.1, 7);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(3));
        let mut states = states_with_extra(&g, 2 * g.max_degree());
        states = driver.activate(states, |_| true).unwrap();
        let smin = states
            .iter()
            .filter(|s| s.active)
            .map(|s| s.slack().max(1) as u64)
            .min()
            .unwrap_or(1);
        states = slack_color(&mut driver, states, &profile, 42, smin, "sc").unwrap();
        let uncolored = Driver::uncolored_count(&states);
        assert!(
            uncolored <= g.n() / 20,
            "{uncolored}/{} uncolored after SlackColor",
            g.n()
        );
        // No conflicts.
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (states[u as usize].color, states[v as usize].color) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn dropouts_deactivate_but_stay_uncolored() {
        // Zero extra colors: slack ≈ 0, so the s < 2d check drops nodes
        // instead of looping forever.
        let g = gen::complete(12);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(1));
        let mut states = states_with_extra(&g, 0);
        states = driver.activate(states, |_| true).unwrap();
        states = slack_color(&mut driver, states, &profile, 9, 1, "sc").unwrap();
        // The pass must terminate (this test completing is the assertion)
        // and every uncolored node must have dropped out.
        for st in &states {
            if st.uncolored() {
                assert!(!st.active, "uncolored node {} still active", st.id);
            }
        }
    }

    #[test]
    fn round_cost_is_modest() {
        let g = gen::gnp(60, 0.15, 2);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(8));
        let mut states = states_with_extra(&g, 3 * g.max_degree());
        states = driver.activate(states, |_| true).unwrap();
        let _ = slack_color(&mut driver, states, &profile, 4, 64, "sc").unwrap();
        // The ladder is O(log* s_min + 1/κ) MultiTrials of 4 rounds each,
        // plus activations: comfortably below 150 rounds.
        assert!(
            driver.log.total_rounds() < 150,
            "SlackColor used {} rounds",
            driver.log.total_rounds()
        );
    }
}
