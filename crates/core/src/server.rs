//! An always-on concurrent solve server over pooled engine sessions.
//!
//! [`SolveServer::start`] spawns a fixed pool of worker threads draining
//! a bounded MPMC work queue. Any number of threads hold cloneable
//! [`ServerHandle`]s and call [`ServerHandle::submit`], which returns a
//! [`Ticket`] immediately; [`Ticket::wait`] blocks until the response is
//! ready. The serving layer adds policy around the unchanged solve
//! pipeline:
//!
//! * **Admission control** — the queue is bounded
//!   ([`ServiceConfig::queue_depth`]); a full queue either blocks the
//!   submitter or rejects with [`ServeError::Overloaded`]
//!   ([`crate::service::Admission`]).
//! * **Deadlines** — a request's [`crate::service::RequestPolicy::deadline`]
//!   is checked when its job is dequeued and then cooperatively at every
//!   engine pass boundary via [`crate::driver::CancelToken`]; expiry
//!   surfaces as [`ServeError::DeadlineExceeded`].
//! * **Retries** — solves that fail *transiently* (an injected fault,
//!   [`congest::SimError::is_transient`]) re-run up to the request's
//!   [`crate::service::RequestPolicy::retry_limit`], each attempt under
//!   a re-salted fault plan; exhaustion surfaces as
//!   [`ServeError::RetriesExhausted`]. Deterministic failures are never
//!   retried — they fail fast as [`ServeError::Engine`].
//! * **Single-flight memoization** — completed responses are memoized
//!   (FIFO, [`ServiceConfig::memo_capacity`]); a submit that duplicates
//!   an *in-flight* request attaches to the existing flight instead of
//!   enqueuing, so N concurrent identical submissions cost one engine
//!   solve and resolve to N clones of the same `Arc`.
//! * **Supervision** — each job runs under `catch_unwind`; a panicking
//!   worker resolves its ticket with [`ServeError::WorkerPanicked`],
//!   quarantines its resident engine core (a panicked core is never
//!   returned to rotation), spawns its own replacement, and exits. A
//!   wedged-solve watchdog ([`ServiceConfig::watchdog`]) escalates
//!   solves that outlive their budget; blocking admission sheds load
//!   after sustained overload ([`ServiceConfig::shed_after`]).
//!   [`HealthSnapshot`] reports the lifecycle counters.
//!
//! **Ticket-resolution guarantee**: every submitted ticket resolves — to
//! a response or a typed [`ServeError`] — even if its worker panics or
//! the server is dropped mid-flight. Rejections resolve at submit;
//! panics resolve through the supervisor; dropping the [`SolveServer`]
//! fails still-queued jobs with [`ServeError::Closed`] and cancels
//! in-flight solves at their next pass boundary (see
//! [`SolveServer::abort`]). No parked waiter ever hangs.
//!
//! Determinism is untouched: every completed response is byte-identical
//! to a one-shot [`crate::solve`] of the same request, whatever the
//! worker count, queue depth, or submission order (enforced by the E0c
//! differential suite and `tests/prop_invariants.rs`).
//!
//! Concurrency invariant (see DESIGN.md §7 and §10): the memo's lookup
//! and flight-insertion happen under one lock acquisition, so for any
//! request key at most one flight exists at a time, and every duplicate
//! submitted during that flight joins it. Lock order is
//! `queue → threads`; the memo lock and the queue lock are never held
//! together; the inflight table and ticket cells are leaf locks.
//!
//! ```
//! use d1lc::server::SolveServer;
//! use d1lc::service::{ServiceConfig, SolveRequest};
//! use d1lc::SolveOptions;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(graphs::gen::gnp(120, 0.08, 7));
//! let lists = Arc::new(graphs::palette::random_lists(&graph, 40, 0, 3));
//! let server = SolveServer::start(ServiceConfig::builder().workers(2).build().unwrap());
//! let handle = server.handle();
//! let ticket = handle.submit(SolveRequest::shared(&graph, &lists, SolveOptions::seeded(1)));
//! let result = ticket.wait().unwrap();
//! assert_eq!(result.coloring.len(), 120);
//! ```

use crate::driver::CancelToken;
use crate::pipeline::{SolveOptions, SolveResult};
use crate::service::{
    solve_with_core, Admission, CoreUse, PooledCore, ServeError, ServiceConfig, SolveRequest,
};
use graphs::palette::ListAssignment;
use graphs::Graph;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The resolved value a ticket carries: the response (or serving error)
/// plus the instant it resolved, so latency can be measured without a
/// waiter thread in the loop.
type Resolution = (Result<Arc<SolveResult>, ServeError>, Instant);

/// Shared completion slot between a [`Ticket`] and the worker that
/// resolves it.
struct TicketCell {
    state: Mutex<Option<Resolution>>,
    cv: Condvar,
}

impl TicketCell {
    fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn resolve(&self, outcome: Result<Arc<SolveResult>, ServeError>) {
        let mut state = self.state.lock().unwrap();
        // First resolution wins; double-resolve is a server bug but must
        // not clobber an answer a waiter may already have observed.
        if state.is_none() {
            *state = Some((outcome, Instant::now()));
            self.cv.notify_all();
        }
    }
}

/// A claim on one submitted request. Cheap to clone (clones share the
/// completion slot); waitable from any thread, any number of times.
#[derive(Clone)]
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl Ticket {
    /// A ticket resolved on the spot (memo hits, admission rejections).
    fn resolved(outcome: Result<Arc<SolveResult>, ServeError>) -> Self {
        let cell = TicketCell::new();
        cell.resolve(outcome);
        Ticket { cell }
    }

    /// Block until the response is ready.
    ///
    /// Never hangs on a live server: every admitted job is drained even
    /// during shutdown, and rejected/closed submissions resolve
    /// immediately.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`] — admission, deadline, retry exhaustion,
    /// engine failure, or server shutdown.
    pub fn wait(&self) -> Result<Arc<SolveResult>, ServeError> {
        let mut state = self.cell.state.lock().unwrap();
        loop {
            if let Some((outcome, _)) = state.as_ref() {
                return outcome.clone();
            }
            state = self.cell.cv.wait(state).unwrap();
        }
    }

    /// The response if it is already resolved, without blocking.
    pub fn try_result(&self) -> Option<Result<Arc<SolveResult>, ServeError>> {
        self.cell
            .state
            .lock()
            .unwrap()
            .as_ref()
            .map(|(outcome, _)| outcome.clone())
    }

    /// When the ticket resolved (for latency measurement), if it has.
    pub fn completed_at(&self) -> Option<Instant> {
        self.cell.state.lock().unwrap().as_ref().map(|(_, at)| *at)
    }
}

/// One queued unit of work: the request, its completion slot, and the
/// submission instant its deadline is measured from.
struct Job {
    req: SolveRequest,
    cell: Arc<TicketCell>,
    submitted_at: Instant,
}

/// Memo identity: the `Arc` pointers of the instance plus the full
/// option set. Policy (deadline, retries) is deliberately absent — it
/// never affects the solve's output.
struct MemoKey {
    graph: Arc<Graph>,
    lists: Arc<ListAssignment>,
    options: SolveOptions,
}

impl MemoKey {
    fn of(req: &SolveRequest) -> Self {
        MemoKey {
            graph: Arc::clone(&req.graph),
            lists: Arc::clone(&req.lists),
            options: req.options,
        }
    }

    fn matches(&self, req: &SolveRequest) -> bool {
        Arc::ptr_eq(&self.graph, &req.graph)
            && Arc::ptr_eq(&self.lists, &req.lists)
            && self.options == req.options
    }
}

/// A completed, memoized response. Holding the key's `Arc`s pins the
/// instance allocations, so pointer identity cannot be recycled while
/// the entry lives.
struct ReadyEntry {
    key: MemoKey,
    result: Arc<SolveResult>,
}

/// An in-flight request: one job is queued (or solving) for this key;
/// duplicates submitted meanwhile park their cells here instead of
/// enqueuing.
struct Flight {
    key: MemoKey,
    waiters: Vec<Arc<TicketCell>>,
}

/// The single-flight memo. One mutex guards both halves so a lookup and
/// the follow-up flight insertion are atomic — the property that makes
/// "at most one flight per key" an invariant rather than a race.
#[derive(Default)]
struct Memo {
    ready: VecDeque<ReadyEntry>,
    inflight: Vec<Flight>,
}

/// The bounded MPMC work queue: jobs plus the closed flag, guarded by
/// one mutex with separate not-empty / not-full condvars. `full_since`
/// tracks how long the queue has been continuously at capacity, which is
/// what [`ServiceConfig::shed_after`] measures sustained overload by.
#[derive(Default)]
struct WorkQueue {
    jobs: VecDeque<Job>,
    closed: bool,
    full_since: Option<Instant>,
}

/// One worker's currently-running solve, visible to the watchdog: when
/// it started and the cancel flag that asks it to stop.
struct Inflight {
    started: Instant,
    flag: Arc<AtomicBool>,
}

/// Atomic serving counters (see [`ServerStats`] for field meaning).
#[derive(Default)]
struct AtomicStats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    memo_hits: AtomicU64,
    dedup_joins: AtomicU64,
    deadline_misses: AtomicU64,
    retries: AtomicU64,
    engine_errors: AtomicU64,
    fresh_sessions: AtomicU64,
    rebinds: AtomicU64,
    same_graph_rebinds: AtomicU64,
    legacy_engine_solves: AtomicU64,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests submitted (admitted or not).
    pub submitted: u64,
    /// Tickets resolved with a response (engine solves, memo hits, and
    /// dedup joins alike).
    pub completed: u64,
    /// Submissions refused by [`Admission::Reject`] on a full queue.
    pub rejected: u64,
    /// Submissions answered instantly from the response memo.
    pub memo_hits: u64,
    /// Submissions that joined an in-flight duplicate instead of
    /// enqueuing their own job.
    pub dedup_joins: u64,
    /// Requests that failed their deadline (queued or mid-solve).
    pub deadline_misses: u64,
    /// Re-run attempts after a failed solve (each re-run counts once).
    pub retries: u64,
    /// Requests whose final outcome was an engine error
    /// ([`ServeError::Engine`] or [`ServeError::RetriesExhausted`]).
    pub engine_errors: u64,
    /// Engine runs on a from-scratch session.
    pub fresh_sessions: u64,
    /// Engine runs that rebound a warm core to a different graph.
    pub rebinds: u64,
    /// Engine runs that rebound a warm core to the same graph (reverse
    /// permutation rebuild skipped).
    pub same_graph_rebinds: u64,
    /// Requests honored through a legacy engine mode (no pooling).
    pub legacy_engine_solves: u64,
}

/// Atomic supervision/lifecycle counters (see [`HealthSnapshot`]).
#[derive(Default)]
struct AtomicHealth {
    live_workers: AtomicU64,
    respawns: AtomicU64,
    quarantined_cores: AtomicU64,
    shed: AtomicU64,
}

/// A point-in-time health report of the serving layer's supervision
/// machinery — the liveness counters, as opposed to the request-path
/// counters in [`ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Worker threads currently draining the queue. Steady-state this is
    /// [`ServiceConfig::workers`]; it dips only transiently while a
    /// panicked worker is being replaced, and falls to zero after
    /// shutdown.
    pub live_workers: u64,
    /// Workers respawned by the supervisor after a panic.
    pub respawns: u64,
    /// Engine cores discarded because their worker panicked. A poisoned
    /// core is never returned to rotation — the replacement worker
    /// starts cold.
    pub quarantined_cores: u64,
    /// Jobs currently queued (admitted, not yet picked up).
    pub queue_depth: usize,
    /// Blocking submissions shed after sustained overload
    /// ([`ServiceConfig::shed_after`]). [`crate::service::Admission::Reject`]
    /// refusals are counted in [`ServerStats::rejected`] instead.
    pub shed: u64,
}

/// State shared by the server, its handles, and its workers.
struct ServerShared {
    config: ServiceConfig,
    queue: Mutex<WorkQueue>,
    not_empty: Condvar,
    not_full: Condvar,
    memo: Mutex<Memo>,
    stats: AtomicStats,
    health: AtomicHealth,
    /// Per-worker-index join handles. A panicked worker registers its
    /// replacement here (under the queue lock, so registration races
    /// neither shutdown nor a concurrent close — lock order
    /// `queue → threads`); shutdown drains every slot.
    threads: Mutex<Vec<Option<thread::JoinHandle<()>>>>,
    /// Per-worker-index inflight slots the watchdog scans.
    inflight: Mutex<Vec<Option<Inflight>>>,
    /// Raised by [`SolveServer::abort`] before cancelling in-flight
    /// solves, so their `Cancelled` maps to [`ServeError::Closed`]
    /// rather than a deadline miss.
    aborting: AtomicBool,
}

impl ServerShared {
    fn snapshot(&self) -> ServerStats {
        let s = &self.stats;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStats {
            submitted: get(&s.submitted),
            completed: get(&s.completed),
            rejected: get(&s.rejected),
            memo_hits: get(&s.memo_hits),
            dedup_joins: get(&s.dedup_joins),
            deadline_misses: get(&s.deadline_misses),
            retries: get(&s.retries),
            engine_errors: get(&s.engine_errors),
            fresh_sessions: get(&s.fresh_sessions),
            rebinds: get(&s.rebinds),
            same_graph_rebinds: get(&s.same_graph_rebinds),
            legacy_engine_solves: get(&s.legacy_engine_solves),
        }
    }

    fn health(&self) -> HealthSnapshot {
        let h = &self.health;
        HealthSnapshot {
            live_workers: h.live_workers.load(Ordering::Relaxed),
            respawns: h.respawns.load(Ordering::Relaxed),
            quarantined_cores: h.quarantined_cores.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().unwrap().jobs.len(),
            shed: h.shed.load(Ordering::Relaxed),
        }
    }

    /// Fail a job's ticket and every duplicate parked on its flight —
    /// the resolution path for jobs that never complete (admission
    /// refusals, worker panics, teardown).
    fn fail(&self, job: &Job, error: ServeError) {
        let waiters = self.take_flight(&job.req);
        job.cell.resolve(Err(error.clone()));
        for cell in waiters {
            cell.resolve(Err(error.clone()));
        }
    }

    /// Remove the flight for `req` (if any) and return its waiter cells.
    /// Called when the flight's job leaves the system — completed,
    /// rejected, or refused at close.
    fn take_flight(&self, req: &SolveRequest) -> Vec<Arc<TicketCell>> {
        if self.config.memo_capacity() == 0 {
            return Vec::new();
        }
        let mut memo = self.memo.lock().unwrap();
        match memo.inflight.iter().position(|f| f.key.matches(req)) {
            Some(i) => memo.inflight.swap_remove(i).waiters,
            None => Vec::new(),
        }
    }

    /// Resolve a job's cell and every duplicate parked on its flight
    /// with the same outcome, memoizing successes.
    fn complete(&self, job: &Job, outcome: Result<Arc<SolveResult>, ServeError>) {
        if let Ok(result) = &outcome {
            let capacity = self.config.memo_capacity();
            if capacity > 0 {
                let mut memo = self.memo.lock().unwrap();
                if memo.ready.len() >= capacity {
                    memo.ready.pop_front();
                }
                memo.ready.push_back(ReadyEntry {
                    key: MemoKey::of(&job.req),
                    result: Arc::clone(result),
                });
            }
        }
        let waiters = self.take_flight(&job.req);
        // Count before resolving: a waiter woken by `resolve` may read
        // the stats immediately, and the count must already be there.
        if outcome.is_ok() {
            let resolved = 1 + waiters.len() as u64;
            self.stats.completed.fetch_add(resolved, Ordering::Relaxed);
        }
        job.cell.resolve(outcome.clone());
        for cell in waiters {
            cell.resolve(outcome.clone());
        }
    }
}

/// A cloneable, `Send + Sync` submission endpoint. All handles feed the
/// same queue; drop them freely — the server's lifetime is governed by
/// the [`SolveServer`] value, not its handles.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<ServerShared>,
}

impl ServerHandle {
    /// Submit a request, returning its [`Ticket`] immediately.
    ///
    /// Fast paths resolve the ticket before it is returned: a memo hit
    /// yields the memoized `Arc`; a duplicate of an in-flight request
    /// joins that flight (no queue slot consumed) and resolves when the
    /// flight does — sharing its outcome, including failure. Otherwise
    /// the job is enqueued; on a full queue [`Admission::Block`] waits
    /// for a slot and [`Admission::Reject`] resolves the ticket (and any
    /// duplicates that joined meanwhile) with [`ServeError::Overloaded`].
    ///
    /// # Panics
    ///
    /// Panics if the request's lists are not a valid (degree+1)-list
    /// assignment for its graph, exactly as [`crate::solve`] does.
    pub fn submit(&self, req: SolveRequest) -> Ticket {
        assert!(
            req.lists.is_degree_plus_one(&req.graph),
            "lists must give every node ≥ deg+1 colors"
        );
        let shared = &*self.shared;
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        if shared.config.memo_capacity() > 0 {
            let mut memo = shared.memo.lock().unwrap();
            if let Some(hit) = memo.ready.iter().find(|e| e.key.matches(&req)) {
                shared.stats.memo_hits.fetch_add(1, Ordering::Relaxed);
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                return Ticket::resolved(Ok(Arc::clone(&hit.result)));
            }
            if let Some(flight) = memo.inflight.iter_mut().find(|f| f.key.matches(&req)) {
                let cell = TicketCell::new();
                flight.waiters.push(Arc::clone(&cell));
                shared.stats.dedup_joins.fetch_add(1, Ordering::Relaxed);
                return Ticket { cell };
            }
            memo.inflight.push(Flight {
                key: MemoKey::of(&req),
                waiters: Vec::new(),
            });
        }
        let cell = TicketCell::new();
        let job = Job {
            req,
            cell: Arc::clone(&cell),
            submitted_at: Instant::now(),
        };
        let mut queue = shared.queue.lock().unwrap();
        loop {
            if queue.closed {
                drop(queue);
                self.refuse(&job, ServeError::Closed);
                return Ticket { cell };
            }
            if queue.jobs.len() < shared.config.queue_depth() {
                queue.jobs.push_back(job);
                if queue.jobs.len() >= shared.config.queue_depth() && queue.full_since.is_none() {
                    queue.full_since = Some(Instant::now());
                }
                shared.not_empty.notify_one();
                return Ticket { cell };
            }
            match shared.config.admission() {
                Admission::Block => match shared.config.shed_after() {
                    // Graceful degradation: a queue that has been full
                    // for the configured span means the server is not
                    // keeping up — stop parking submitters on it and
                    // shed instead of building an unbounded convoy.
                    Some(limit) => {
                        let full_for = queue
                            .full_since
                            .map(|t| t.elapsed())
                            .unwrap_or(Duration::ZERO);
                        if full_for >= limit {
                            drop(queue);
                            shared.health.shed.fetch_add(1, Ordering::Relaxed);
                            self.refuse(
                                &job,
                                ServeError::Overloaded {
                                    depth: shared.config.queue_depth(),
                                },
                            );
                            return Ticket { cell };
                        }
                        let (q, _) = shared
                            .not_full
                            .wait_timeout(queue, limit - full_for)
                            .unwrap();
                        queue = q;
                    }
                    None => {
                        queue = shared.not_full.wait(queue).unwrap();
                    }
                },
                Admission::Reject => {
                    drop(queue);
                    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    self.refuse(
                        &job,
                        ServeError::Overloaded {
                            depth: shared.config.queue_depth(),
                        },
                    );
                    return Ticket { cell };
                }
            }
        }
    }

    /// Fail a job that never made it into the queue, dissolving its
    /// flight so parked duplicates fail with it rather than hang.
    fn refuse(&self, job: &Job, error: ServeError) {
        self.shared.fail(job, error);
    }

    /// Submit and wait: the drop-in replacement for the deprecated
    /// batched `SolveService::solve`.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`]; see [`Ticket::wait`].
    pub fn solve(&self, req: SolveRequest) -> Result<Arc<SolveResult>, ServeError> {
        self.submit(req).wait()
    }

    /// A point-in-time snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// A point-in-time snapshot of the supervision health counters.
    pub fn health(&self) -> HealthSnapshot {
        self.shared.health()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> ServiceConfig {
        self.shared.config
    }
}

/// The always-on server: owns the worker threads. Dropping it **aborts**:
/// still-queued jobs fail with [`ServeError::Closed`], in-flight solves
/// are cancelled at their next pass boundary, and every outstanding
/// ticket resolves promptly — no parked waiter ever hangs on a dropped
/// server. Call [`SolveServer::shutdown`] first for a graceful drain.
pub struct SolveServer {
    shared: Arc<ServerShared>,
    watchdog: Option<thread::JoinHandle<()>>,
}

impl SolveServer {
    /// Start `config.workers()` worker threads over an empty queue (plus
    /// a watchdog thread iff [`ServiceConfig::watchdog`] is set).
    ///
    /// Worker `w` keeps its engine core warm between solves iff
    /// `w < config.pool_size()` — so `pool(0)` reproduces the
    /// fresh-session-per-solve baseline and `pool(k)`, `k ≥ workers`,
    /// keeps every worker warm.
    pub fn start(config: ServiceConfig) -> Self {
        let shared = Arc::new(ServerShared {
            config,
            queue: Mutex::new(WorkQueue::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            memo: Mutex::new(Memo::default()),
            stats: AtomicStats::default(),
            health: AtomicHealth::default(),
            threads: Mutex::new((0..config.workers()).map(|_| None).collect()),
            inflight: Mutex::new((0..config.workers()).map(|_| None).collect()),
            aborting: AtomicBool::new(false),
        });
        for index in 0..config.workers() {
            let handle = spawn_worker(index, &shared);
            shared.threads.lock().unwrap()[index] = Some(handle);
        }
        let watchdog = config.watchdog().map(|budget| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("d1lc-watchdog".into())
                .spawn(move || watchdog_loop(&shared, budget))
                .expect("spawn watchdog thread")
        });
        SolveServer { shared, watchdog }
    }

    /// A new submission handle (cloneable; all handles are equivalent).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A point-in-time snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// A point-in-time snapshot of the supervision health counters.
    pub fn health(&self) -> HealthSnapshot {
        self.shared.health()
    }

    /// Graceful shutdown: close the queue, let the workers drain every
    /// already-admitted job to completion, and join them. Use this when
    /// admitted work should still be answered; `Drop` instead aborts
    /// (admitted-but-unstarted jobs fail with [`ServeError::Closed`]).
    pub fn shutdown(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.closed = true;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        self.join_all();
    }

    /// Fail-fast teardown: close the queue, fail every still-queued job
    /// with [`ServeError::Closed`], cancel in-flight solves at their
    /// next pass boundary (they also resolve [`ServeError::Closed`]),
    /// and join the workers. Every outstanding ticket is resolved by the
    /// time this returns. Called by `Drop`.
    pub fn abort(&mut self) {
        self.shared.aborting.store(true, Ordering::Relaxed);
        let orphans: Vec<Job> = {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.closed = true;
            queue.full_since = None;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
            queue.jobs.drain(..).collect()
        };
        for job in &orphans {
            self.shared.fail(job, ServeError::Closed);
        }
        // Ask every in-flight solve to stop at its next pass boundary.
        for slot in self.shared.inflight.lock().unwrap().iter().flatten() {
            slot.flag.store(true, Ordering::Relaxed);
        }
        self.join_all();
    }

    /// Join every worker (and the watchdog). Handles are taken one at a
    /// time so no registry lock is held across a `join` — a panicked
    /// worker's replacement registers itself concurrently and is picked
    /// up by a later iteration.
    fn join_all(&mut self) {
        loop {
            let handle = {
                let mut threads = self.shared.threads.lock().unwrap();
                threads.iter_mut().find_map(Option::take)
            };
            match handle {
                Some(h) => drop(h.join()),
                None => break,
            }
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SolveServer {
    fn drop(&mut self) {
        self.abort();
    }
}

/// Spawn (or respawn) the worker for `index`, bumping the live gauge
/// before the thread exists so the count never under-reports.
fn spawn_worker(index: usize, shared: &Arc<ServerShared>) -> thread::JoinHandle<()> {
    shared.health.live_workers.fetch_add(1, Ordering::Relaxed);
    let shared = Arc::clone(shared);
    thread::Builder::new()
        .name(format!("d1lc-worker-{index}"))
        .spawn(move || worker_loop(index, &shared))
        .expect("spawn worker thread")
}

/// Watchdog thread body: periodically scan the inflight table and raise
/// the cancel flag of any solve that has outlived the budget. The flag
/// is observed cooperatively at the solve's next pass boundary, where it
/// surfaces as [`ServeError::DeadlineExceeded`] with the watchdog budget
/// (see `run_job`). Exits when the queue closes.
fn watchdog_loop(shared: &ServerShared, budget: Duration) {
    // Tick well inside the budget so escalation lags it by at most a
    // fraction; the floor keeps a tiny budget from busy-spinning.
    let tick = (budget / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    loop {
        if shared.queue.lock().unwrap().closed {
            return;
        }
        thread::sleep(tick);
        let now = Instant::now();
        for slot in shared.inflight.lock().unwrap().iter().flatten() {
            if now.duration_since(slot.started) >= budget {
                slot.flag.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Worker thread body: pop, enforce policy, solve (under `catch_unwind`
/// supervision), publish. Exits when the queue is closed *and* empty
/// (graceful drain), or — after resolving the victim ticket,
/// quarantining its core, and spawning its own replacement — when a job
/// panics.
fn worker_loop(index: usize, shared: &Arc<ServerShared>) {
    // The worker's resident warm core. Workers beyond the pool size run
    // fresh-session-per-solve.
    let mut resident: Option<PooledCore> = None;
    let retain = index < shared.config.pool_size();
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    queue.full_since = None;
                    shared.not_full.notify_one();
                    break job;
                }
                if queue.closed {
                    shared.health.live_workers.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                queue = shared.not_empty.wait(queue).unwrap();
            }
        };
        // Publish the solve to the watchdog, run it panic-isolated,
        // retract it. The per-job cancel flag serves both the watchdog
        // (wedged-solve escalation) and `abort` (teardown).
        let flag = Arc::new(AtomicBool::new(false));
        shared.inflight.lock().unwrap()[index] = Some(Inflight {
            started: Instant::now(),
            flag: Arc::clone(&flag),
        });
        let had_core = resident.is_some();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_job(shared, &job, &mut resident, retain, &flag)
        }));
        shared.inflight.lock().unwrap()[index] = None;
        if outcome.is_err() {
            supervise_panic(index, shared, &job, &mut resident, had_core);
            shared.health.live_workers.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

/// The supervisor path, run *on the dying worker itself* after its
/// `catch_unwind` caught a job panic: resolve the victim ticket (and any
/// parked duplicates) with [`ServeError::WorkerPanicked`], quarantine
/// whatever is left of the resident core — a panicked solve may have
/// left it mid-pass, so it is discarded, never returned to rotation —
/// and spawn a cold replacement worker under the same index (unless the
/// server is already closing, in which case the remaining workers and
/// teardown own the queue). The caller exits right after.
fn supervise_panic(
    index: usize,
    shared: &Arc<ServerShared>,
    job: &Job,
    resident: &mut Option<PooledCore>,
    had_core: bool,
) {
    shared.fail(job, ServeError::WorkerPanicked { worker: index });
    // If the panic struck mid-solve the core was consumed and dropped by
    // the unwind; either way nothing resident survives the worker.
    *resident = None;
    if had_core {
        shared
            .health
            .quarantined_cores
            .fetch_add(1, Ordering::Relaxed);
    }
    // Registration happens under the queue lock so the closed check and
    // the new handle's visibility to `join_all` are atomic (lock order
    // queue → threads).
    let queue = shared.queue.lock().unwrap();
    if queue.closed {
        return;
    }
    shared.health.respawns.fetch_add(1, Ordering::Relaxed);
    let replacement = spawn_worker(index, shared);
    // Dropping the old handle detaches this (exiting) thread.
    shared.threads.lock().unwrap()[index] = Some(replacement);
    drop(queue);
}

/// Enforce the job's policy around [`solve_with_core`] and publish the
/// outcome. `flag` is the job's cooperative cancel line (watchdog +
/// teardown); the caller owns panic isolation.
fn run_job(
    shared: &ServerShared,
    job: &Job,
    resident: &mut Option<PooledCore>,
    retain: bool,
    flag: &Arc<AtomicBool>,
) {
    let policy = job.req.policy();
    if policy.chaos_panic {
        panic!("injected chaos panic (RequestPolicy::chaos_panic)");
    }
    let deadline_at = policy.deadline.map(|d| job.submitted_at + d);
    // A request that expired while queued fails without touching the
    // engine — under overload this sheds work instead of compounding it.
    if deadline_at.is_some_and(|at| Instant::now() >= at) {
        shared.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        shared.complete(
            job,
            Err(ServeError::DeadlineExceeded {
                deadline: policy.deadline.expect("deadline_at implies deadline"),
            }),
        );
        return;
    }
    let attempts = policy.retry_limit + 1;
    let mut attempt = 0;
    let outcome = loop {
        attempt += 1;
        let mut token = CancelToken::flagged(Arc::clone(flag));
        if let Some(at) = deadline_at {
            token = token.with_deadline(at);
        }
        let cancel = Some(token);
        let mut core_use = CoreUse::default();
        let (solved, recovered) =
            solve_with_core(resident.take(), &job.req, cancel, attempt, &mut core_use);
        *resident = if retain { recovered } else { None };
        let s = &shared.stats;
        s.fresh_sessions
            .fetch_add(core_use.fresh, Ordering::Relaxed);
        s.rebinds.fetch_add(core_use.rebinds, Ordering::Relaxed);
        s.same_graph_rebinds
            .fetch_add(core_use.same_graph_rebinds, Ordering::Relaxed);
        s.legacy_engine_solves
            .fetch_add(core_use.legacy, Ordering::Relaxed);
        match solved {
            Ok(result) => break Ok(Arc::new(result)),
            Err(congest::SimError::Cancelled { .. }) => {
                // The cancel line fired mid-solve; retrying cannot help.
                // Attribute it: teardown beats deadline beats watchdog
                // (an aborting server is Closed even if the deadline
                // also lapsed meanwhile).
                break Err(if shared.aborting.load(Ordering::Relaxed) {
                    ServeError::Closed
                } else if deadline_at.is_some_and(|at| Instant::now() >= at) {
                    s.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    ServeError::DeadlineExceeded {
                        deadline: policy.deadline.expect("deadline_at implies deadline"),
                    }
                } else {
                    // Only the watchdog is left as a cause: the wedged
                    // solve is escalated with the watchdog budget as
                    // its effective deadline.
                    s.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    ServeError::DeadlineExceeded {
                        deadline: shared
                            .config
                            .watchdog()
                            .expect("flag cancel without abort implies watchdog"),
                    }
                });
            }
            // Only transient errors (injected faults) are worth a
            // re-roll; a deterministic failure (e.g. a strict bandwidth
            // cap the protocol genuinely exceeds) would fail identically
            // every time, so retrying it only burns the budget.
            Err(error) if error.is_transient() && attempt < attempts => {
                s.retries.fetch_add(1, Ordering::Relaxed);
            }
            Err(error) => {
                s.engine_errors.fetch_add(1, Ordering::Relaxed);
                break Err(if error.is_transient() && policy.retry_limit > 0 {
                    ServeError::RetriesExhausted {
                        attempts,
                        last: error,
                    }
                } else {
                    ServeError::Engine(error)
                });
            }
        }
    };
    shared.complete(job, outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Admission, ServiceConfig};
    use graphs::gen;
    use graphs::palette::random_lists;
    use std::time::Duration;

    fn instance(n: usize, seed: u64) -> (Arc<Graph>, Arc<ListAssignment>) {
        let graph = gen::gnp(n, 0.08, seed);
        let lists = random_lists(&graph, 32, 0, seed ^ 0x55);
        (Arc::new(graph), Arc::new(lists))
    }

    #[test]
    fn serves_byte_identical_to_one_shot() {
        let (g, lists) = instance(60, 5);
        let server = SolveServer::start(ServiceConfig::builder().workers(2).build().unwrap());
        let handle = server.handle();
        let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(11));
        let served = handle.solve(req).expect("serves");
        let direct = crate::solve(&g, &lists, SolveOptions::seeded(11)).expect("one-shot");
        assert_eq!(served.coloring, direct.coloring);
        assert_eq!(served.log.passes(), direct.log.passes());
        assert_eq!(served.stats, direct.stats);
    }

    /// Worker cores rebind shard layouts: one pooled core serving a
    /// stream that alternates shard counts (and thread counts) must
    /// produce byte-identical responses to one-shot solves — the shard
    /// geometry travels with the request's `SimConfig`, and a retained
    /// core re-derives it at every bind.
    #[test]
    fn worker_cores_rebind_across_shard_layouts() {
        let (g, lists) = instance(120, 12);
        let (g2, lists2) = instance(70, 13);
        let config = ServiceConfig::builder()
            .workers(1)
            .pool(1)
            .memo(0)
            .build()
            .unwrap();
        let server = SolveServer::start(config);
        let handle = server.handle();
        let layouts: [(usize, usize); 6] = [(0, 1), (4, 2), (1, 1), (8, 8), (2, 1), (0, 2)];
        let mut requests = Vec::new();
        for (i, &(shards, threads)) in layouts.iter().enumerate() {
            let mut options = SolveOptions::seeded(20 + i as u64);
            options.sim.shards = shards;
            options.sim.threads = threads;
            // Alternate graphs so the core also retargets topology
            // between shard layouts.
            let (graph, ls) = if i % 2 == 0 {
                (&g, &lists)
            } else {
                (&g2, &lists2)
            };
            requests.push(SolveRequest::shared(graph, ls, options));
        }
        let tickets: Vec<Ticket> = requests.iter().map(|r| handle.submit(r.clone())).collect();
        for (req, ticket) in requests.iter().zip(&tickets) {
            let served = ticket.wait().expect("serves");
            let direct = crate::solve(&req.graph, &req.lists, req.options).expect("one-shot");
            assert_eq!(
                served.coloring, direct.coloring,
                "opts {:?}",
                req.options.sim
            );
            assert_eq!(served.log.passes(), direct.log.passes());
            assert_eq!(served.stats, direct.stats);
        }
        // Every request reused the single pooled core after the first.
        assert_eq!(handle.stats().fresh_sessions, 1);
    }

    #[test]
    fn memo_hit_shares_the_response_arc() {
        let (g, lists) = instance(40, 6);
        let server = SolveServer::start(ServiceConfig::default());
        let handle = server.handle();
        let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(2));
        let first = handle.solve(req.clone()).unwrap();
        let second = handle.solve(req).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let stats = handle.stats();
        assert_eq!(stats.memo_hits, 1);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn reject_admission_surfaces_overloaded() {
        let (g, lists) = instance(200, 7);
        // One worker, queue depth 1: flood with distinct requests (memo
        // off so none dedup) and demand at least one rejection.
        let config = ServiceConfig::builder()
            .workers(1)
            .queue(1)
            .memo(0)
            .admission(Admission::Reject)
            .build()
            .unwrap();
        let server = SolveServer::start(config);
        let handle = server.handle();
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| handle.submit(SolveRequest::shared(&g, &lists, SolveOptions::seeded(i))))
            .collect();
        let outcomes: Vec<_> = tickets.iter().map(Ticket::wait).collect();
        let rejected = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServeError::Overloaded { depth: 1 })))
            .count();
        assert!(rejected > 0, "16 instant submissions must overflow depth 1");
        assert!(outcomes.iter().any(Result::is_ok), "queue still serves");
        assert_eq!(handle.stats().rejected, rejected as u64);
    }

    #[test]
    fn expired_deadline_fails_without_solving() {
        let (g, lists) = instance(40, 8);
        let server = SolveServer::start(ServiceConfig::default());
        let handle = server.handle();
        let req =
            SolveRequest::shared(&g, &lists, SolveOptions::seeded(3)).with_deadline(Duration::ZERO);
        match handle.solve(req) {
            Err(ServeError::DeadlineExceeded { deadline }) => {
                assert_eq!(deadline, Duration::ZERO);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(handle.stats().deadline_misses, 1);
        // The worker never ran the engine for it.
        assert_eq!(handle.stats().fresh_sessions, 0);
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let (g, lists) = instance(30, 9);
        let mut server = SolveServer::start(ServiceConfig::default());
        let handle = server.handle();
        server.shutdown();
        let outcome = handle.solve(SolveRequest::shared(&g, &lists, SolveOptions::seeded(4)));
        assert_eq!(outcome.unwrap_err(), ServeError::Closed);
    }

    #[test]
    fn explicit_shutdown_drains_admitted_jobs() {
        let (g, lists) = instance(80, 10);
        let mut server = SolveServer::start(ServiceConfig::builder().workers(1).build().unwrap());
        let handle = server.handle();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| handle.submit(SolveRequest::shared(&g, &lists, SolveOptions::seeded(i))))
            .collect();
        server.shutdown();
        for ticket in &tickets {
            assert!(ticket.wait().is_ok(), "admitted jobs drain on shutdown");
            assert!(ticket.completed_at().is_some());
        }
        assert_eq!(server.health().live_workers, 0, "workers joined");
    }

    /// Dropping the server (no explicit shutdown) must not leave any
    /// outstanding ticket unresolved: queued jobs fail `Closed`, solves
    /// already running either complete or are cancelled to `Closed` at
    /// the next pass boundary. See `tests/server_concurrency.rs` for the
    /// cross-thread regression version.
    #[test]
    fn drop_resolves_outstanding_tickets_promptly() {
        let (g, lists) = instance(80, 14);
        let server = SolveServer::start(ServiceConfig::builder().workers(1).build().unwrap());
        let handle = server.handle();
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| handle.submit(SolveRequest::shared(&g, &lists, SolveOptions::seeded(i))))
            .collect();
        drop(server);
        let mut closed = 0;
        for ticket in &tickets {
            match ticket.wait() {
                Ok(_) => {}
                Err(ServeError::Closed) => closed += 1,
                other => panic!("expected Ok or Closed, got {other:?}"),
            }
            assert!(ticket.completed_at().is_some(), "every ticket resolved");
        }
        assert!(closed > 0, "8 queued jobs cannot all finish before drop");
    }

    #[test]
    fn deterministic_failures_are_never_retried() {
        let (g, lists) = instance(120, 11);
        // A strict bandwidth cap of a few bits per round fails every
        // pass deterministically — every retry would fail identically,
        // so the server must not spend a single one on it, retry limit
        // or not.
        let mut options = SolveOptions::seeded(5);
        options.sim.bandwidth = congest::Bandwidth::Strict(4);
        let server = SolveServer::start(ServiceConfig::default());
        let handle = server.handle();
        let req = SolveRequest::shared(&g, &lists, options).with_retry_limit(2);
        match handle.solve(req) {
            Err(ServeError::Engine(e)) => {
                assert!(matches!(e, congest::SimError::BandwidthExceeded { .. }));
                assert!(!e.is_transient());
            }
            other => panic!("expected Engine, got {other:?}"),
        }
        let stats = handle.stats();
        assert_eq!(stats.retries, 0, "deterministic failure burned a retry");
        assert_eq!(stats.engine_errors, 1);
    }

    #[test]
    fn stalled_schedules_are_never_retried() {
        let (g, lists) = instance(96, 14);
        // A schedule is a pure function of `(seed, SchedulePlan)`: a
        // plan that wedges the synchronizer wedges every verbatim
        // retry identically, so `ScheduleStalled` must surface as a
        // non-transient `Engine` error without burning the retry
        // budget. Progress needs a re-planned request (here: more
        // watchdog patience), not a re-run.
        let mut options = SolveOptions::seeded(9);
        options.sim.sched = congest::SchedulePlan::none()
            .with_bursts(1.0, 6)
            .with_patience(2);
        let server = SolveServer::start(ServiceConfig::default());
        let handle = server.handle();
        let req = SolveRequest::shared(&g, &lists, options).with_retry_limit(2);
        match handle.solve(req) {
            Err(ServeError::Engine(e)) => {
                assert!(matches!(e, congest::SimError::ScheduleStalled { .. }));
                assert!(!e.is_transient());
            }
            other => panic!("expected Engine, got {other:?}"),
        }
        let stats = handle.stats();
        assert_eq!(stats.retries, 0, "stalled schedule burned a retry");
        assert_eq!(stats.engine_errors, 1);
        options.sim.sched = options.sim.sched.with_patience(16);
        let served = handle
            .solve(SolveRequest::shared(&g, &lists, options))
            .expect("a re-planned schedule completes");
        let direct = crate::solve(&g, &lists, options).expect("one-shot");
        assert_eq!(served.coloring, direct.coloring);
    }

    #[test]
    fn transient_faults_exhaust_retries_with_attempt_count() {
        let (g, lists) = instance(60, 13);
        // An always-abort fault plan fails every attempt transiently —
        // re-salting cannot save a probability-1 abort — so the retry
        // budget is spent in full and reported honestly.
        let mut options = SolveOptions::seeded(7);
        options.sim.fault = congest::FaultPlan::none().with_abort(1.0);
        let server = SolveServer::start(ServiceConfig::default());
        let handle = server.handle();
        let req = SolveRequest::shared(&g, &lists, options).with_retry_limit(2);
        match handle.solve(req) {
            Err(ServeError::RetriesExhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(matches!(last, congest::SimError::FaultInjected { .. }));
                assert!(last.is_transient());
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        let stats = handle.stats();
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.engine_errors, 1);
        // Without a retry limit the same transient failure is Engine(_).
        let req = SolveRequest::shared(&g, &lists, options);
        assert!(matches!(handle.solve(req), Err(ServeError::Engine(_))));
    }

    #[test]
    fn legacy_engine_modes_are_honored() {
        let (g, lists) = instance(50, 12);
        let server = SolveServer::start(ServiceConfig::default());
        let handle = server.handle();
        let mut options = SolveOptions::seeded(6);
        options.engine = crate::EngineMode::PerPass;
        let served = handle
            .solve(SolveRequest::shared(&g, &lists, options))
            .expect("legacy engine serves");
        let direct = crate::solve(&g, &lists, options).expect("one-shot");
        assert_eq!(served.coloring, direct.coloring);
        assert_eq!(handle.stats().legacy_engine_solves, 1);
        assert_eq!(handle.stats().fresh_sessions, 0);
    }
}
