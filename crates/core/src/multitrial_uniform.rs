//! Uniform `MultiTrial(x)` — Algorithm 5 (§5.1).
//!
//! The non-uniform `MultiTrial` relies on representative hash families that
//! are only known to *exist* (Lemma 1). The uniform variant replaces them
//! with explicit objects:
//!
//! * an ε-almost **pairwise-independent** hash `h_v` from palette to
//!   `[λ_v]`, chosen by `v` itself to have at most `λ_v/3` collisions
//!   inside its palette (the asymmetry trick of §5: one party *verifies*
//!   instead of trusting randomness);
//! * a **representative multiset** `S_v ⊆ [λ_v]` of size `σ_v = min(b, λ_v)`
//!   drawn through an averaging sampler with an `O(log n)`-bit seed
//!   (Appendix B).
//!
//! `v` announces `(λ_v, hash index, multiset seed)`, tries `x` random
//! palette colors hashing into `S_v`, and neighbors mark which positions
//! of `S_v` their own tried colors hit. The mutual-exclusion argument is
//! unchanged from Alg. 4, so adoptions remain conflict-free.

use crate::config::ParamProfile;
use crate::passes::{announce_adoption, digest_adoption, StatePass};
use crate::state::NodeState;
use crate::wire::{tags, Wire};
use congest::message::bits_for_range;
use congest::{Ctx, Program};
use graphs::Color;
use prand::mix::mix2;
use prand::{MultisetSampler, PairwiseFamily, PairwiseHash};
use rand::seq::SliceRandom;
use rand::Rng;

/// How many indices a node inspects to find a low-collision hash.
const HASH_TRIES: u32 = 24;

/// The shared pairwise family for range `λ` (all nodes derive the same).
fn pwi_family(profile: &ParamProfile, seed: u64, lambda: u64) -> PairwiseFamily {
    PairwiseFamily::new(mix2(seed, lambda ^ 0x9191), lambda, profile.family_bits)
}

/// The shared multiset sampler for range `λ` with window `σ`.
fn sampler_for(profile: &ParamProfile, seed: u64, lambda: u64, sigma: u64) -> MultisetSampler {
    MultisetSampler::new(
        mix2(seed, lambda ^ 0x5e7),
        lambda,
        sigma as u32,
        profile.family_bits.min(20),
    )
}

/// One uniform `MultiTrial(x)` execution (4 rounds).
#[derive(Debug)]
pub struct UniformMultiTrialPass {
    st: NodeState,
    x: u32,
    profile: ParamProfile,
    seed: u64,
    n: usize,
    pass_name: &'static str,
    my_lambda: u64,
    my_hash: Option<PairwiseHash>,
    my_set_seed: u64,
    /// `(λ_u, hash index, set seed)` per participating neighbor position.
    neighbor_setup: Vec<Option<(u64, u64, u64)>>,
    tried: Vec<Color>,
    done: bool,
}

impl UniformMultiTrialPass {
    /// Try up to `x` colors using only explicit pseudorandom objects.
    pub fn new(
        st: NodeState,
        x: u32,
        profile: ParamProfile,
        seed: u64,
        n: usize,
        pass_name: &'static str,
    ) -> Self {
        UniformMultiTrialPass {
            st,
            x,
            profile,
            seed,
            n,
            pass_name,
            my_lambda: 0,
            my_hash: None,
            my_set_seed: 0,
            neighbor_setup: Vec::new(),
            tried: Vec::new(),
            done: false,
        }
    }

    fn participates(&self) -> bool {
        self.st.active && self.st.uncolored() && !self.st.palette.is_empty() && self.x > 0
    }

    fn sigma(&self, lambda: u64) -> u64 {
        self.profile.mt_sigma(self.n).min(lambda)
    }

    /// Pick a member with few palette collisions (Alg. 5 line 1).
    fn pick_low_collision_hash<R: Rng + ?Sized>(
        &self,
        family: &PairwiseFamily,
        rng: &mut R,
    ) -> (u64, PairwiseHash) {
        let palette = self.st.palette.colors();
        let cap = (self.my_lambda / 3) as usize;
        let mut best: Option<(usize, u64)> = None;
        for _ in 0..HASH_TRIES {
            let idx = family.sample_index(rng);
            let collisions = family.member(idx).collision_count(palette);
            if collisions <= cap {
                return (idx, family.member(idx));
            }
            if best.is_none_or(|(c, _)| collisions < c) {
                best = Some((collisions, idx));
            }
        }
        let (_, idx) = best.expect("HASH_TRIES > 0");
        (idx, family.member(idx))
    }

    fn header_bits(&self) -> u32 {
        bits_for_range(6 * self.n as u64 + 7) as u32
            + self.profile.family_bits
            + self.profile.family_bits.min(20)
    }
}

impl Program for UniformMultiTrialPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                self.neighbor_setup = vec![None; ctx.degree()];
                if self.participates() {
                    self.my_lambda = 6 * self.st.palette.len().max(1) as u64;
                    let family = pwi_family(&self.profile, self.seed, self.my_lambda);
                    let (idx, h) = self.pick_low_collision_hash(&family, ctx.rng());
                    self.my_hash = Some(h);
                    let sampler = sampler_for(
                        &self.profile,
                        self.seed,
                        self.my_lambda,
                        self.sigma(self.my_lambda),
                    );
                    self.my_set_seed = sampler.sample_seed(ctx.rng());
                    // (λ, i, seed) in one header (the UintList carries the
                    // triple; its width is the honest sum).
                    ctx.broadcast(Wire::UintList {
                        tag: tags::ACTIVE,
                        values: vec![self.my_lambda, idx, self.my_set_seed],
                        bits_each: self.header_bits() / 3 + 1,
                    });
                }
            }
            1 => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::UintList {
                        tag: tags::ACTIVE,
                        values,
                        ..
                    } = msg
                    {
                        if let [lambda, idx, set_seed] = values[..] {
                            let pos = ctx.neighbor_index(from).expect("setup from non-neighbor");
                            self.neighbor_setup[pos] = Some((lambda, idx, set_seed));
                        }
                    }
                }
                let Some(h) = self.my_hash else { return };
                // X_v ← x random palette colors hashing into S_v. The
                // membership probe runs over a sorted scratch (binary
                // search) instead of a per-round hash set.
                let sigma = self.sigma(self.my_lambda);
                let sampler = sampler_for(&self.profile, self.seed, self.my_lambda, sigma);
                let mut in_set: Vec<u64> = sampler.multiset(self.my_set_seed).collect();
                in_set.sort_unstable();
                let mut candidates: Vec<Color> = self
                    .st
                    .palette
                    .colors()
                    .iter()
                    .copied()
                    .filter(|&c| in_set.binary_search(&h.hash(c)).is_ok())
                    .collect();
                candidates.shuffle(ctx.rng());
                candidates.truncate(self.x as usize);
                self.tried = candidates;
                if self.tried.is_empty() {
                    return;
                }
                // Per participating neighbor: mark the positions of S_u
                // hit by our tried colors through h_u. One sorted scratch
                // is reused across neighbors (|X_v| is tiny, so a binary
                // search beats building a hash set per neighbor).
                let mut hits: Vec<u64> = Vec::with_capacity(self.tried.len());
                for pos in 0..ctx.neighbors().len() {
                    let Some((lambda_u, idx_u, seed_u)) = self.neighbor_setup[pos] else {
                        continue;
                    };
                    let hu = pwi_family(&self.profile, self.seed, lambda_u).member(idx_u);
                    let sigma_u = self.sigma(lambda_u);
                    let sampler_u = sampler_for(&self.profile, self.seed, lambda_u, sigma_u);
                    hits.clear();
                    hits.extend(self.tried.iter().map(|&c| hu.hash(c)));
                    hits.sort_unstable();
                    let mut words = vec![0u64; (sigma_u as usize).div_ceil(64)];
                    for (i, s) in sampler_u.multiset(seed_u).enumerate() {
                        if hits.binary_search(&s).is_ok() {
                            words[i / 64] |= 1 << (i % 64);
                        }
                    }
                    ctx.send(
                        ctx.neighbors()[pos],
                        Wire::Bitmap {
                            tag: tags::TRIED,
                            words,
                            bits: sigma_u,
                        },
                    );
                }
            }
            2 => {
                if let Some(h) = self.my_hash {
                    if !self.tried.is_empty() {
                        let sigma = self.sigma(self.my_lambda);
                        let sampler = sampler_for(&self.profile, self.seed, self.my_lambda, sigma);
                        let positions: Vec<u64> = sampler.multiset(self.my_set_seed).collect();
                        let mut blocked_positions = vec![false; positions.len()];
                        for (_, msg) in ctx.inbox() {
                            if let Wire::Bitmap { words, .. } = msg {
                                for (i, b) in blocked_positions.iter_mut().enumerate() {
                                    if words.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0) {
                                        *b = true;
                                    }
                                }
                            }
                        }
                        let free = |psi: Color| {
                            let hv = h.hash(psi);
                            positions
                                .iter()
                                .enumerate()
                                .filter(|&(_, &s)| s == hv)
                                .all(|(i, _)| !blocked_positions[i])
                        };
                        if let Some(psi) = self.tried.iter().copied().find(|&p| free(p)) {
                            self.st.adopt(psi, self.pass_name);
                            announce_adoption(&self.st, ctx, psi);
                        }
                    }
                }
            }
            _ => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Color {
                        tag: tags::ADOPTED,
                        payload,
                        ..
                    } = msg
                    {
                        let pos = ctx
                            .neighbor_index(from)
                            .expect("adoption from non-neighbor");
                        digest_adoption(&mut self.st, pos, *payload, false);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for UniformMultiTrialPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Run one uniform `MultiTrial(x)` over all active nodes.
///
/// # Errors
///
/// Propagates engine errors.
pub fn uniform_multitrial(
    driver: &mut crate::driver::Driver<'_>,
    states: Vec<NodeState>,
    x: u32,
    profile: &ParamProfile,
    seed: u64,
) -> Result<Vec<NodeState>, crate::driver::PassFailure> {
    let n = driver.graph.n();
    let p = *profile;
    driver.run_pass("uniform-multitrial", states, |st| {
        UniformMultiTrialPass::new(st, x, p, seed, n, "uniform-multitrial")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph, NodeId};

    fn states_with_extra(g: &Graph, extra: usize) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..(d + 1 + extra) as u64).map(|i| i * 101).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 7, g.n(), 32, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect()
    }

    fn assert_proper(g: &Graph, states: &[NodeState]) {
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (states[u as usize].color, states[v as usize].color) {
                assert_ne!(a, b, "conflict on ({u},{v})");
            }
        }
    }

    #[test]
    fn uniform_multitrial_is_conflict_free() {
        for seed in 0..5u64 {
            let g = gen::complete(10);
            let profile = ParamProfile::laptop();
            let mut driver = Driver::new(&g, SimConfig::seeded(seed));
            let states =
                uniform_multitrial(&mut driver, states_with_extra(&g, 6), 3, &profile, 9).unwrap();
            assert_proper(&g, &states);
        }
    }

    #[test]
    fn uniform_multitrial_colors_high_slack_nodes() {
        let g = gen::gnp(80, 0.15, 3);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(4));
        let states =
            uniform_multitrial(&mut driver, states_with_extra(&g, 200), 8, &profile, 5).unwrap();
        assert_proper(&g, &states);
        let colored = states.iter().filter(|s| s.color.is_some()).count();
        assert!(
            colored * 10 >= g.n() * 7,
            "only {colored}/{} colored",
            g.n()
        );
    }

    #[test]
    fn uniform_multitrial_takes_four_rounds() {
        let g = gen::cycle(12);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(2));
        let _ = uniform_multitrial(&mut driver, states_with_extra(&g, 10), 4, &profile, 3).unwrap();
        assert_eq!(driver.log.total_rounds(), 4);
    }

    #[test]
    fn low_collision_hash_is_found() {
        let g = gen::path(2);
        let profile = ParamProfile::laptop();
        let mut states = states_with_extra(&g, 60);
        let st = states.remove(0);
        let mut pass = UniformMultiTrialPass::new(st, 2, profile, 1, 2, "t");
        pass.my_lambda = 6 * pass.st.palette.len() as u64;
        let family = pwi_family(&profile, 1, pass.my_lambda);
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        let (_, h) = pass.pick_low_collision_hash(&family, &mut rng);
        let collisions = h.collision_count(pass.st.palette.colors());
        assert!(
            collisions as u64 <= pass.my_lambda / 3,
            "{collisions} collisions exceed λ/3"
        );
    }
}
