//! Uniform `ε-Buddy` — Algorithm 6 (§5.2).
//!
//! Decides whether an edge `uv` is an ε-friend edge (Definition 2) using
//! only explicit pseudorandom objects:
//!
//! 1. degree balance check (line 1);
//! 2. `v` picks an almost-pairwise-independent hash over
//!    `λ = 6·max(d_u,d_v)/ε` with few collisions inside its own
//!    neighborhood and sends the index (line 2);
//! 3. both parties sample a shared representative multiset `S ⊆ [λ]` of
//!    size `σ = min(b, λ)` and exchange σ-bit vectors marking which
//!    sampled hashes have a *unique* preimage in their neighborhood
//!    (lines 3–8);
//! 4. few common marks ⇒ not friends (line 9) — evaluated *relative to
//!    each side's own mark count* rather than against the absolute
//!    `(1−3ε)σ` of the paper's sketch, whose constant presumes Θ(1) mark
//!    density while `λ = 6·max(d_u,d_v)/ε` makes the density `ε/6`
//!    (deviation recorded in DESIGN.md);
//! 5. otherwise the common preimages are encoded with the identifier
//!    error-correcting code ([`prand::IdCode`]) and a sampled-position
//!    Hamming test distinguishes "genuinely shared neighbors" from "the
//!    hash collided a lot" (lines 10–16).

use congest::BitTally;
use prand::mix::{mix2, mix3};
use prand::{IdCode, MultisetSampler, PairwiseFamily};
use rand::Rng;

/// Tunable knobs of the uniform buddy test.
#[derive(Clone, Copy, Debug)]
pub struct UniformBuddyParams {
    /// Friendship accuracy ε of Definition 2.
    pub eps: f64,
    /// Bandwidth parameter `b` (window/multiset sizes are `min(b, ·)`).
    pub b: u64,
    /// Family index width in bits.
    pub family_bits: u32,
    /// How many indices the chooser inspects for a low-collision hash.
    pub hash_tries: u32,
    /// Override the hash range λ (tests use small ranges to force the
    /// collision regime that exercises the error-correcting-code branch).
    pub lambda_override: Option<u64>,
}

impl Default for UniformBuddyParams {
    fn default() -> Self {
        UniformBuddyParams {
            eps: 0.25,
            b: 256,
            family_bits: 16,
            hash_tries: 24,
            lambda_override: None,
        }
    }
}

/// Outcome of a uniform ε-Buddy execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuddyOutcome {
    /// The verdict: does the edge look like an ε-friend edge?
    pub friends: bool,
    /// Which line of Alg. 6 decided (1, 9 or 16) — for tests and the E12
    /// experiment.
    pub decided_at: u8,
    /// Communication transcript.
    pub tally: BitTally,
}

/// Run uniform `ε-Buddy` for an edge whose endpoints hold the sorted
/// neighbor-id sets `nu` and `nv`.
///
/// `seed` selects the shared families (public advice); `rng` supplies the
/// joint randomness (multiset seeds) and `v`'s hash choice.
pub fn uniform_buddy<R: Rng + ?Sized>(
    params: &UniformBuddyParams,
    nu: &[u64],
    nv: &[u64],
    seed: u64,
    rng: &mut R,
) -> BuddyOutcome {
    let mut tally = BitTally::new();
    let (du, dv) = (nu.len() as f64, nv.len() as f64);
    // Line 1: degree balance.
    if du == 0.0 || dv == 0.0 || du > dv / (1.0 - params.eps) || dv > du / (1.0 - params.eps) {
        return BuddyOutcome {
            friends: false,
            decided_at: 1,
            tally,
        };
    }
    let lambda = params
        .lambda_override
        .unwrap_or(((6.0 * du.max(dv) / params.eps).ceil() as u64).max(4));
    // Line 2: v chooses a low-collision hash and sends (λ, i).
    let family = PairwiseFamily::new(mix2(seed, lambda), lambda, params.family_bits);
    let cap = ((params.eps * dv / 3.0).ceil() as usize).max(1);
    let mut chosen = family.member(0);
    let mut chosen_collisions = usize::MAX;
    for _ in 0..params.hash_tries {
        let idx = family.sample_index(rng);
        let h = family.member(idx);
        let c = h.collision_count(nv);
        if c < chosen_collisions {
            chosen = h;
            chosen_collisions = c;
        }
        if chosen_collisions <= cap {
            break;
        }
    }
    let h = chosen;
    tally.b_to_a(u64::from(family.index_bits()) + 32);

    // Line 3: joint representative multiset S of size σ.
    let sigma = params.b.min(lambda);
    let sampler = MultisetSampler::new(mix2(seed, 0x5e77), lambda, sigma as u32, 20);
    let set_seed = sampler.sample_seed(rng);
    tally.a_to_b(u64::from(sampler.seed_bits()));
    let samples: Vec<u64> = sampler.multiset(set_seed).collect();

    // Lines 4–7: unique-preimage marks.
    let unique_preimage = |nbrs: &[u64], target: u64| -> Option<u64> {
        let mut found = None;
        for &w in nbrs {
            if h.hash(w) == target {
                if found.is_some() {
                    return None;
                }
                found = Some(w);
            }
        }
        found
    };
    let pu: Vec<Option<u64>> = samples.iter().map(|&s| unique_preimage(nu, s)).collect();
    let pv: Vec<Option<u64>> = samples.iter().map(|&s| unique_preimage(nv, s)).collect();
    // Line 8: exchange the σ-bit vectors.
    tally.exchange(sigma);

    // Line 9: few common marks ⇒ not friends. Relative form: the common
    // marks must cover most of each side's own marks (see module docs).
    let mu = pu.iter().filter(|p| p.is_some()).count();
    let mv = pv.iter().filter(|p| p.is_some()).count();
    let common: Vec<usize> = (0..samples.len())
        .filter(|&i| pu[i].is_some() && pv[i].is_some())
        .collect();
    if common.is_empty() || (common.len() as f64) <= (1.0 - 3.0 * params.eps) * mu.min(mv) as f64 {
        return BuddyOutcome {
            friends: false,
            decided_at: 9,
            tally,
        };
    }

    // Lines 10–14: encode the common preimages.
    let code = IdCode::new();
    let encode_all = |picks: &[Option<u64>]| -> Vec<u64> {
        let mut bits: Vec<u64> = Vec::new();
        let mut len = 0usize;
        for &i in &common {
            let w = picks[i].expect("common index has a preimage");
            let cw = code.encode(w);
            for b in 0..code.bits() {
                if IdCode::bit(&cw, b) {
                    let pos = len + b;
                    if bits.len() <= pos / 64 {
                        bits.resize(pos / 64 + 1, 0);
                    }
                    bits[pos / 64] |= 1 << (pos % 64);
                }
            }
            len += code.bits();
        }
        let words = len.div_ceil(64).max(1);
        bits.resize(words, 0);
        bits
    };
    let xu = encode_all(&pu);
    let xv = encode_all(&pv);
    let ell = common.len() * code.bits();

    // Lines 15–16: sampled-position Hamming estimate.
    let sigma2 = params.b.min(ell as u64).max(1);
    let pos_sampler = MultisetSampler::new(mix3(seed, 0x4a11, 1), ell as u64, sigma2 as u32, 20);
    let pos_seed = pos_sampler.sample_seed(rng);
    tally.a_to_b(u64::from(pos_sampler.seed_bits()));
    tally.exchange(sigma2);
    let differing = pos_sampler
        .multiset(pos_seed)
        .filter(|&i| {
            let w = (i / 64) as usize;
            let b = i % 64;
            (xu.get(w).copied().unwrap_or(0) ^ xv.get(w).copied().unwrap_or(0)) & (1 << b) != 0
        })
        .count();
    let friends = (differing as f64) < params.eps * sigma2 as f64;
    BuddyOutcome {
        friends,
        decided_at: 16,
        tally,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(nu: &[u64], nv: &[u64], trial: u64) -> BuddyOutcome {
        let mut rng = StdRng::seed_from_u64(trial);
        uniform_buddy(&UniformBuddyParams::default(), nu, nv, 42, &mut rng)
    }

    #[test]
    fn identical_neighborhoods_are_friends() {
        let n: Vec<u64> = (0..60).map(|i| i * 13 + 5).collect();
        let hits = (0..20).filter(|&t| run(&n, &n, t).friends).count();
        assert!(
            hits >= 18,
            "only {hits}/20 accepted identical neighborhoods"
        );
    }

    #[test]
    fn near_identical_neighborhoods_are_friends() {
        let nu: Vec<u64> = (0..60).collect();
        let mut nv = nu.clone();
        nv[0] = 1000;
        nv[1] = 1001;
        nv.sort_unstable();
        let hits = (0..20).filter(|&t| run(&nu, &nv, t).friends).count();
        assert!(
            hits >= 15,
            "only {hits}/20 accepted near-identical neighborhoods"
        );
    }

    #[test]
    fn unbalanced_degrees_rejected_at_line_1() {
        let nu: Vec<u64> = (0..10).collect();
        let nv: Vec<u64> = (0..100).collect();
        let out = run(&nu, &nv, 3);
        assert!(!out.friends);
        assert_eq!(out.decided_at, 1);
        assert_eq!(out.tally.total_bits(), 0);
    }

    #[test]
    fn disjoint_neighborhoods_rejected() {
        let nu: Vec<u64> = (0..50).collect();
        let nv: Vec<u64> = (1000..1050).collect();
        let rejections = (0..20).filter(|&t| !run(&nu, &nv, t).friends).count();
        assert!(
            rejections >= 18,
            "only {rejections}/20 rejected disjoint sets"
        );
    }

    #[test]
    fn low_overlap_rejected() {
        // ε-Buddy distinguishes ε-friend (overlap ≥ 1−ε) from *far from
        // friend* (overlap < 1−3ε = 0.25 here); 5% overlap is firmly in
        // the reject region. Half overlap would be in the gray zone where
        // either answer is allowed.
        let nu: Vec<u64> = (0..60).collect();
        let nv: Vec<u64> = (57..117).collect();
        let rejections = (0..20).filter(|&t| !run(&nu, &nv, t).friends).count();
        assert!(rejections >= 16, "only {rejections}/20 rejected 5% overlap");
    }

    #[test]
    fn collision_heavy_hash_is_caught_by_the_code() {
        // λ forced to ~|N|: most sampled values have preimages on both
        // sides even for disjoint sets, so line 9 passes spuriously and
        // only the ECC Hamming test (line 16) can reject.
        let params = UniformBuddyParams {
            lambda_override: Some(48),
            ..Default::default()
        };
        let nu: Vec<u64> = (0..40).collect();
        let nv: Vec<u64> = (10_000..10_040).collect();
        let mut rejected = 0;
        let mut via_code = 0;
        for t in 0..20 {
            let mut rng = StdRng::seed_from_u64(t);
            let out = uniform_buddy(&params, &nu, &nv, 7, &mut rng);
            if !out.friends {
                rejected += 1;
                if out.decided_at == 16 {
                    via_code += 1;
                }
            }
        }
        assert!(
            rejected >= 18,
            "only {rejected}/20 rejected under collisions"
        );
        assert!(via_code >= 5, "ECC branch never fired ({via_code}/20)");
    }

    #[test]
    fn identical_sets_survive_tiny_lambda() {
        // Same collision regime, but genuinely identical neighborhoods:
        // the ECC test sees zero Hamming distance and accepts.
        let params = UniformBuddyParams {
            lambda_override: Some(48),
            ..Default::default()
        };
        let n: Vec<u64> = (0..40).collect();
        let hits = (0..20)
            .filter(|&t| {
                let mut rng = StdRng::seed_from_u64(t);
                uniform_buddy(&params, &n, &n, 7, &mut rng).friends
            })
            .count();
        assert!(hits >= 18, "only {hits}/20 accepted");
    }

    #[test]
    fn transcript_is_bounded_by_b() {
        let n: Vec<u64> = (0..80).collect();
        let out = run(&n, &n, 5);
        // ≤ a few multiset exchanges of ≤ b bits each plus headers.
        assert!(
            out.tally.total_bits() <= 4 * 256 + 200,
            "transcript too large: {} bits",
            out.tally.total_bits()
        );
    }
}
