//! Post-shattering deterministic cleanup.
//!
//! Nodes the randomized phases failed to color form, w.h.p., small
//! ("shattered") components \[BEPS16\]. The paper colors them with the
//! deterministic algorithm of \[GK21\] on top of a network decomposition
//! and a color-space reduction (Lemma 17). **Substitution** (see
//! DESIGN.md §3.4): we run the elementary deterministic procedure
//! *local-minimum greedy* — every uncolored node whose id is smallest
//! among its uncolored neighbors adopts its smallest palette color — whose
//! round count is bounded by the largest uncolored component, i.e.
//! polylog(n) on shattered instances. Large colors still travel hashed
//! (App. D.3), so the pass is CONGEST-legal for any color-space size.

use crate::passes::{announce_adoption, digest_adoption, StatePass};
use crate::state::NodeState;
use crate::wire::{tags, Wire};
use congest::{Ctx, Program};
use graphs::NodeId;

/// The deterministic cleanup program: repeated 2-round cycles of
/// status-flag exchange and local-minimum adoption.
#[derive(Debug)]
pub struct CleanupPass {
    st: NodeState,
    done: bool,
}

impl CleanupPass {
    /// Wrap a node state.
    pub fn new(st: NodeState) -> Self {
        CleanupPass { st, done: false }
    }
}

impl Program for CleanupPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        if ctx.round() % 2 == 0 {
            // Digest adoptions from the previous cycle, then re-announce
            // uncolored status.
            for &(from, ref msg) in ctx.inbox() {
                if let Wire::Color {
                    tag: tags::ADOPTED,
                    payload,
                    ..
                } = msg
                {
                    let pos = ctx
                        .neighbor_index(from)
                        .expect("adoption from non-neighbor");
                    digest_adoption(&mut self.st, pos, *payload, false);
                }
            }
            if self.st.uncolored() {
                if self.st.palette.is_empty() {
                    // Collision pathology: leave to the repair sweep.
                    self.done = true;
                } else {
                    ctx.broadcast(Wire::Flag {
                        tag: tags::UNCOLORED,
                        on: true,
                    });
                }
            } else {
                self.done = true;
            }
        } else if self.st.uncolored() {
            let min_uncolored: Option<NodeId> = ctx
                .inbox()
                .iter()
                .filter(|&(_, m)| {
                    matches!(
                        m,
                        Wire::Flag {
                            tag: tags::UNCOLORED,
                            ..
                        }
                    )
                })
                .map(|&(from, _)| from)
                .min();
            if min_uncolored.is_none_or(|m| self.st.id < m) {
                let c = self.st.palette.colors()[0];
                self.st.adopt(c, "cleanup");
                announce_adoption(&self.st, ctx, c);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for CleanupPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Run the cleanup to completion over all uncolored nodes.
///
/// # Errors
///
/// Propagates engine errors.
pub fn cleanup(
    driver: &mut crate::driver::Driver<'_>,
    states: Vec<NodeState>,
) -> Result<Vec<NodeState>, crate::driver::PassFailure> {
    driver.run_pass("cleanup", states, CleanupPass::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;
    use crate::driver::Driver;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    fn fresh(g: &Graph, color_bits: u32) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..=(d as u64)).collect();
                NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), color_bits, d),
                    d,
                )
            })
            .collect()
    }

    fn assert_complete_and_proper(g: &Graph, states: &[NodeState]) {
        for st in states {
            assert!(st.color.is_some(), "node {} uncolored", st.id);
        }
        for (u, v) in g.edges() {
            assert_ne!(
                states[u as usize].color, states[v as usize].color,
                "conflict on ({u},{v})"
            );
        }
    }

    #[test]
    fn cleanup_colors_everything_deterministically() {
        let g = gen::gnp(60, 0.1, 4);
        let mut driver = Driver::new(&g, SimConfig::seeded(1));
        let states = cleanup(&mut driver, fresh(&g, 16)).unwrap();
        assert_complete_and_proper(&g, &states);
    }

    #[test]
    fn cleanup_respects_preexisting_colors() {
        let g = gen::complete(10);
        let mut states = fresh(&g, 16);
        // Pre-color node 3 with color 7; cleanup must avoid it.
        states[3].color = Some(7);
        for st in &mut states {
            if st.id != 3 {
                st.palette.remove(7);
                let pos = g.neighbors(st.id).binary_search(&3).unwrap();
                st.neighbor_uncolored[pos] = false;
            }
        }
        let mut driver = Driver::new(&g, SimConfig::seeded(2));
        let states = cleanup(&mut driver, states).unwrap();
        assert_complete_and_proper(&g, &states);
        assert_eq!(states[3].color, Some(7));
    }

    #[test]
    fn rounds_scale_with_component_size_not_n() {
        // Many small components: the pass must finish fast even with many
        // nodes.
        let g = gen::disjoint_cliques(20, 4);
        let mut driver = Driver::new(&g, SimConfig::seeded(3));
        let states = cleanup(&mut driver, fresh(&g, 16)).unwrap();
        assert_complete_and_proper(&g, &states);
        assert!(
            driver.log.total_rounds() <= 2 * 4 + 4,
            "used {} rounds",
            driver.log.total_rounds()
        );
    }

    #[test]
    fn worst_case_path_still_terminates() {
        // Descending ids along a path is the adversarial case: one node
        // per cycle.
        let g = gen::path(24);
        let mut driver = Driver::new(&g, SimConfig::seeded(4));
        let states = cleanup(&mut driver, fresh(&g, 8)).unwrap();
        assert_complete_and_proper(&g, &states);
    }

    #[test]
    fn hashed_colors_work_in_cleanup() {
        let g = gen::gnp(40, 0.12, 9);
        let profile = ParamProfile::laptop();
        let lists = graphs::palette::random_lists(&g, 63, 0, 5);
        let states: Vec<NodeState> = (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                NodeState::new(
                    v as NodeId,
                    Palette::new(lists.list(v as NodeId).to_vec()),
                    ColorCodec::new(&profile, 1, g.n(), 63, d),
                    d,
                )
            })
            .collect();
        let mut driver = Driver::new(&g, SimConfig::seeded(5));
        let states = driver
            .run_pass("codec", states, crate::passes::CodecSetupPass::new)
            .unwrap();
        let states = cleanup(&mut driver, states).unwrap();
        assert_complete_and_proper(&g, &states);
    }
}
