//! `SynchColorTrial` — Algorithm 14.
//!
//! The leader of each almost-clique permutes its own palette and hands a
//! *distinct* color to every uncolored inlier, who tries it with a
//! standard `TryColor` exchange (distinctness kills intra-clique
//! conflicts; the exchange kills external ones). Colors travel as images
//! under the **leader's** universal hash (App. D.3): every inlier knows
//! the leader's hash index from the codec setup, so it can recover the
//! intended color from its own palette.

use crate::passes::{announce_adoption, digest_adoption, StatePass};
use crate::state::{AcdClass, NodeState};
use crate::wire::{tags, Wire};
use congest::{Ctx, Program};
use graphs::{Color, NodeId};
use rand::seq::SliceRandom;

/// One synchronized clique-wide color trial (5 rounds).
#[derive(Debug)]
pub struct SynchColorTrialPass {
    st: NodeState,
    candidate: Option<Color>,
    done: bool,
}

impl SynchColorTrialPass {
    /// Wrap a node state.
    pub fn new(st: NodeState) -> Self {
        SynchColorTrialPass {
            st,
            candidate: None,
            done: false,
        }
    }

    fn am_leader(&self) -> bool {
        self.st.class == AcdClass::Dense && self.st.leader == Some(self.st.id)
    }

    fn requester(&self) -> bool {
        self.st.class == AcdClass::Dense
            && self.st.is_inlier
            && !self.st.put_aside
            && self.st.uncolored()
            && self.st.leader.is_some()
            && self.st.leader != Some(self.st.id)
    }
}

impl Program for SynchColorTrialPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                if self.requester() {
                    let leader = self.st.leader.expect("requester() checked");
                    ctx.send(
                        leader,
                        Wire::Flag {
                            tag: tags::REQUEST,
                            on: true,
                        },
                    );
                }
            }
            1 => {
                if self.am_leader() {
                    let mut requesters: Vec<NodeId> = ctx
                        .inbox()
                        .iter()
                        .filter(|&(_, m)| {
                            matches!(
                                m,
                                Wire::Flag {
                                    tag: tags::REQUEST,
                                    ..
                                }
                            )
                        })
                        .map(|&(from, _)| from)
                        .collect();
                    requesters.sort_unstable();
                    let mut colors: Vec<Color> = self.st.palette.colors().to_vec();
                    colors.shuffle(ctx.rng());
                    let bits = self.st.codec.color_bits();
                    for (u, psi) in requesters.into_iter().zip(colors) {
                        let payload = self.st.codec.encode_own(psi);
                        ctx.send(
                            u,
                            Wire::Color {
                                tag: tags::ASSIGN,
                                payload,
                                bits,
                            },
                        );
                    }
                }
            }
            2 => {
                if self.requester() {
                    let leader = self.st.leader.expect("requester() checked");
                    let assigned = ctx.inbox().iter().find_map(|&(from, ref msg)| match msg {
                        Wire::Color {
                            tag: tags::ASSIGN,
                            payload,
                            ..
                        } if from == leader => Some(*payload),
                        _ => None,
                    });
                    if let Some(wire) = assigned {
                        let pos = ctx
                            .neighbor_index(leader)
                            .expect("inliers are leader-adjacent");
                        if let Some(c) =
                            self.st
                                .codec
                                .decode_via_neighbor(&self.st.palette, pos, wire)
                        {
                            self.candidate = Some(c);
                            let bits = self.st.codec.color_bits();
                            for p in 0..ctx.neighbors().len() {
                                let to = ctx.neighbors()[p];
                                let payload = self.st.codec.encode_for(p, c);
                                ctx.send(
                                    to,
                                    Wire::Color {
                                        tag: tags::TRIED,
                                        payload,
                                        bits,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            3 => {
                if let Some(c) = self.candidate {
                    let conflict = ctx.inbox().iter().any(|(_, msg)| {
                        matches!(msg, Wire::Color { tag: tags::TRIED, payload, .. }
                            if self.st.codec.matches_mine(c, *payload))
                    });
                    if conflict {
                        self.candidate = None;
                    } else {
                        self.st.adopt(c, "synch-trial");
                        announce_adoption(&self.st, ctx, c);
                    }
                }
            }
            _ => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Color {
                        tag: tags::ADOPTED,
                        payload,
                        ..
                    } = msg
                    {
                        let pos = ctx
                            .neighbor_index(from)
                            .expect("adoption from non-neighbor");
                        digest_adoption(&mut self.st, pos, *payload, false);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for SynchColorTrialPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Run one `SynchColorTrial` over all cliques.
///
/// # Errors
///
/// Propagates engine errors.
pub fn synch_color_trial(
    driver: &mut crate::driver::Driver<'_>,
    states: Vec<NodeState>,
) -> Result<Vec<NodeState>, crate::driver::PassFailure> {
    driver.run_pass("synch-trial", states, SynchColorTrialPass::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;
    use crate::driver::Driver;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    fn clique_states(g: &Graph, color_bits: u32, extra: u64) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..=(d as u64 + extra)).map(|i| i * 3 + 1).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), color_bits, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st.class = AcdClass::Dense;
                st.clique = Some(0);
                st.neighbor_clique = vec![Some(0); d];
                st.clique_size = g.n() as u32;
                st.leader = Some(0);
                st.leader_adjacent = v != 0;
                st.is_inlier = v != 0;
                st
            })
            .collect()
    }

    #[test]
    fn one_trial_colors_most_of_a_clique() {
        // All nodes share the same list, so the leader's distinct
        // assignments are valid for everyone.
        let g = gen::complete(20);
        let mut driver = Driver::new(&g, SimConfig::seeded(3));
        let states = synch_color_trial(&mut driver, clique_states(&g, 16, 2)).unwrap();
        let colored = states.iter().filter(|s| s.color.is_some()).count();
        // 19 inliers requested; the leader has 22 colors; every assigned
        // color is distinct, so everyone who got one adopts it.
        assert!(colored >= 18, "only {colored}/20 colored");
        // Validity.
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (states[u as usize].color, states[v as usize].color) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn distinctness_survives_hashed_colors() {
        let g = gen::complete(16);
        let mut driver = Driver::new(&g, SimConfig::seeded(7));
        // Codec setup to exchange hash indices (hashed path).
        let mut states = clique_states(&g, 63, 4);
        states = driver
            .run_pass("codec", states, crate::passes::CodecSetupPass::new)
            .unwrap();
        assert!(states[0].codec.hashed());
        let states = synch_color_trial(&mut driver, states).unwrap();
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (states[u as usize].color, states[v as usize].color) {
                assert_ne!(a, b, "hashed conflict on ({u},{v})");
            }
        }
        let colored = states.iter().filter(|s| s.color.is_some()).count();
        assert!(colored >= 14, "only {colored}/16 colored via hashes");
    }

    #[test]
    fn put_aside_nodes_do_not_request() {
        let g = gen::complete(8);
        let mut states = clique_states(&g, 16, 1);
        for st in &mut states {
            if st.id >= 4 {
                st.put_aside = true;
            }
        }
        let mut driver = Driver::new(&g, SimConfig::seeded(1));
        let states = synch_color_trial(&mut driver, states).unwrap();
        for st in states.iter().skip(4) {
            assert!(st.color.is_none(), "put-aside node {} got colored", st.id);
        }
    }
}
