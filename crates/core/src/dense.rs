//! The dense path — Algorithm 9.
//!
//! 1. `GenerateSlack` among the dense nodes;
//! 2. leader election + slackability classification (App. D.1 — runs
//!    after slack generation because the CONGEST leader score uses the
//!    chromatic slack `κ_v`, see `leader` module docs);
//! 3. put-aside selection in low-slack cliques (Alg. 13);
//! 4. `SlackColor` on the outliers;
//! 5. `SynchColorTrial` (Alg. 14);
//! 6. `SlackColor` on `V^{dense} \ P`;
//! 7. leaders color the put-aside sets (App. D.2).

use crate::config::ParamProfile;
use crate::driver::{Driver, PassFailure};
use crate::leader::select_leaders;
use crate::putaside::{color_put_aside, select_put_aside};
use crate::slackcolor::slack_color;
use crate::sparse::min_active_slack;
use crate::state::{AcdClass, NodeState};
use crate::synchtrial::synch_color_trial;
use crate::trycolor::TryColorPass;

/// Run the dense path over the current phase's participants.
///
/// # Errors
///
/// Propagates engine errors.
pub fn color_dense(
    driver: &mut Driver<'_>,
    mut states: Vec<NodeState>,
    profile: &ParamProfile,
    seed: u64,
    delta: usize,
) -> Result<Vec<NodeState>, PassFailure> {
    let dense = |st: &NodeState| st.class == AcdClass::Dense;
    states = driver.activate(states, |st| dense(st) && st.uncolored())?;
    if Driver::active_count(&states) == 0 {
        return Ok(states);
    }

    // Step 1: GenerateSlack among dense nodes.
    let pg = profile.pg;
    states = driver.run_pass("generate-slack-dense", states, |st| {
        TryColorPass::generate_slack(st, pg)
    })?;

    // Step 2: leaders, slackability, inliers.
    states = select_leaders(driver, states, profile, delta)?;

    // Step 3: put-aside sets in low-slack cliques.
    states = select_put_aside(driver, states, profile, delta)?;

    // Step 4: SlackColor on the outliers (non-inliers, incl. leaders).
    states = driver.activate(states, |st| {
        dense(st) && st.uncolored() && !st.is_inlier && !st.put_aside
    })?;
    if Driver::active_count(&states) > 0 {
        let smin = min_active_slack(&states);
        states = slack_color(driver, states, profile, seed ^ 0xd1, smin, "slack-outliers")?;
    }

    // Step 5: SynchColorTrial for the inliers.
    states = driver.activate(states, |st| dense(st) && st.uncolored() && !st.put_aside)?;
    states = synch_color_trial(driver, states)?;

    // Step 6: SlackColor on V^dense \ P.
    states = driver.activate(states, |st| dense(st) && st.uncolored() && !st.put_aside)?;
    if Driver::active_count(&states) > 0 {
        let smin = min_active_slack(&states);
        states = slack_color(driver, states, profile, seed ^ 0xd2, smin, "slack-dense")?;
    }

    // Step 7: leaders color the put-aside sets.
    states = color_put_aside(driver, states)?;
    Ok(states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acd::compute_acd;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph, NodeId};

    fn fresh_active(g: &Graph, extra: usize) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..(d + 1 + extra) as u64).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 24, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect()
    }

    fn assert_proper(g: &Graph, states: &[NodeState]) {
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (states[u as usize].color, states[v as usize].color) {
                assert_ne!(a, b, "conflict on ({u},{v})");
            }
        }
    }

    #[test]
    fn dense_path_colors_disjoint_cliques() {
        let g = gen::disjoint_cliques(3, 16);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(4));
        let states = compute_acd(&mut driver, fresh_active(&g, 0), &profile, 5).unwrap();
        assert!(states.iter().all(|s| s.class == AcdClass::Dense));
        let states = color_dense(&mut driver, states, &profile, 9, g.max_degree()).unwrap();
        assert_proper(&g, &states);
        let uncolored = states.iter().filter(|s| s.uncolored()).count();
        assert!(
            uncolored * 10 <= g.n(),
            "{uncolored}/{} uncolored after the dense path",
            g.n()
        );
    }

    #[test]
    fn dense_path_on_clique_blend() {
        let (g, truth) = gen::planted_acd(2, 20, 0.04, 50, 0.05, 8);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(6));
        let states = compute_acd(&mut driver, fresh_active(&g, 0), &profile, 7).unwrap();
        let states = color_dense(&mut driver, states, &profile, 11, g.max_degree()).unwrap();
        assert_proper(&g, &states);
        // Most planted members that were classified dense get colored.
        let mut dense_total = 0;
        let mut dense_colored = 0;
        for (v, t) in truth.iter().enumerate() {
            if t.is_some() && states[v].class == AcdClass::Dense {
                dense_total += 1;
                if states[v].color.is_some() {
                    dense_colored += 1;
                }
            }
        }
        assert!(dense_total >= 25, "dense pool too small: {dense_total}");
        assert!(
            dense_colored * 10 >= dense_total * 7,
            "{dense_colored}/{dense_total} dense nodes colored"
        );
    }

    #[test]
    fn sparse_nodes_are_left_alone() {
        let g = gen::gnp(80, 0.08, 3);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(2));
        let states = compute_acd(&mut driver, fresh_active(&g, 0), &profile, 3).unwrap();
        let states = color_dense(&mut driver, states, &profile, 5, g.max_degree()).unwrap();
        for st in &states {
            if st.class != AcdClass::Dense {
                assert!(
                    st.uncolored(),
                    "non-dense node {} colored by dense path",
                    st.id
                );
            }
        }
    }
}
