//! Leader selection and slackability estimation — Appendix D.1.
//!
//! Each almost-clique elects as leader the member minimizing the aggregate
//! `e_v + a_v + κ_v` (external degree + anti-degree + chromatic slack),
//! which Lemma 12 shows is a good-enough stand-in for the true
//! minimum-slackability node. The clique then estimates its slackability
//! as `e_x + ζ̂_x + κ_x` (Lemma 16), where `ζ̂_x` counts the edges inside
//! the leader's in-clique neighborhood via one counting round, and
//! classifies itself low- or high-slack against the threshold
//! `ℓ = log^{2.1} Δ` (laptop-scaled in the default profile).
//!
//! Inliers are selected by threshold rather than the paper's exact rank
//! rules (`max(d_x,|C|)/3` fewest common neighbors, `|C|/6` largest
//! degrees): a member is an inlier iff it is adjacent to the leader,
//! shares at least `(1−2ε)` of the clique with the leader's neighborhood,
//! and has degree at most `(1+2ε)|C|`. On ACD-valid cliques both rules
//! keep Ω(|C|) members; thresholds avoid distributed sorting (deviation
//! recorded in DESIGN.md).
//!
//! Since the aggregate uses `κ_v`, this runs **after** `GenerateSlack`
//! (the paper's Alg. 9 lists leader selection first because its LOCAL
//! original needs no κ; the CONGEST replacement of App. D.1 is
//! κ-dependent).

use crate::clique_comm::{pack_argmin, unpack_argmin_id, AggOp, CliqueAggregatePass};
use crate::config::ParamProfile;
use crate::driver::{Driver, PassFailure};
use crate::passes::StatePass;
use crate::state::{AcdClass, NodeState};
use crate::wire::{tags, Wire};
use congest::{Ctx, Program};
use graphs::NodeId;

/// The leader-selection score `e_v + a_v + κ_v` (Lemma 12).
pub fn leader_score(st: &NodeState) -> u64 {
    let av = u64::from(st.clique_size.saturating_sub(1).saturating_sub(st.nc));
    u64::from(st.ext) + av + u64::from(st.chroma_slack)
}

/// Adjacency/slackability pass run once leaders are known (5 rounds).
#[derive(Debug)]
struct LeaderInfoPass {
    st: NodeState,
    profile: ParamProfile,
    ell: u64,
    /// Same-clique neighbors adjacent to the leader (≈ |N(v) ∩ N_C(x)|).
    common: u32,
    low_slack: Option<bool>,
    done: bool,
}

impl LeaderInfoPass {
    fn new(st: NodeState, profile: ParamProfile, ell: u64) -> Self {
        LeaderInfoPass {
            st,
            profile,
            ell,
            common: 0,
            low_slack: None,
            done: false,
        }
    }

    fn member(&self) -> bool {
        self.st.class == AcdClass::Dense && self.st.leader.is_some()
    }

    fn am_leader(&self) -> bool {
        self.member() && self.st.leader == Some(self.st.id)
    }

    fn clique_positions(&self) -> Vec<usize> {
        self.st
            .neighbor_clique
            .iter()
            .enumerate()
            .filter(|&(_, c)| self.st.clique.is_some() && *c == self.st.clique)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Program for LeaderInfoPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        if !self.member() {
            self.done = ctx.round() >= 4;
            return;
        }
        let leader = self.st.leader.expect("member() checked");
        match ctx.round() {
            0 => {
                // The leader itself reports false: members count
                // |N(v) ∩ N_C(x)| excluding x, so Σ = 2·m(N_C(x)).
                self.st.leader_adjacent =
                    !self.am_leader() && ctx.neighbors().binary_search(&leader).is_ok();
                ctx.broadcast(Wire::Flag {
                    tag: tags::HUB_ADJ,
                    on: self.st.leader_adjacent,
                });
            }
            1 => {
                let mut common = 0u32;
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Flag {
                        tag: tags::HUB_ADJ,
                        on: true,
                    } = msg
                    {
                        let pos = ctx.neighbor_index(from).expect("flag from non-neighbor");
                        if self.st.neighbor_clique[pos] == self.st.clique {
                            common += 1;
                        }
                    }
                }
                self.common = common;
                if self.st.leader_adjacent {
                    ctx.send(
                        leader,
                        Wire::Uint {
                            tag: tags::AGG_UP,
                            value: u64::from(common),
                            bits: 32,
                        },
                    );
                }
            }
            2 => {
                if self.am_leader() {
                    let two_m: u64 = ctx
                        .inbox()
                        .iter()
                        .filter_map(|(_, msg)| match msg {
                            Wire::Uint {
                                tag: tags::AGG_UP,
                                value,
                                ..
                            } => Some(*value),
                            _ => None,
                        })
                        .sum();
                    let m_hat = (two_m / 2) as f64;
                    let dx = f64::from(self.st.nc + self.st.ext);
                    let zeta = if dx > 0.0 {
                        ((dx * (dx - 1.0) / 2.0 - m_hat) / dx).max(0.0)
                    } else {
                        0.0
                    };
                    let sigma_c = f64::from(self.st.ext) + zeta + f64::from(self.st.chroma_slack);
                    let low = sigma_c <= self.ell as f64;
                    self.low_slack = Some(low);
                    ctx.broadcast(Wire::Flag {
                        tag: tags::AGG_DOWN,
                        on: low,
                    });
                }
            }
            3 => {
                if self.low_slack.is_none() {
                    for &(from, ref msg) in ctx.inbox() {
                        if let Wire::Flag {
                            tag: tags::AGG_DOWN,
                            on,
                        } = msg
                        {
                            if from == leader {
                                self.low_slack = Some(*on);
                            }
                        }
                    }
                }
                // Leader-adjacent members relay the verdict to the
                // distance-2 members.
                if self.st.leader_adjacent {
                    if let Some(low) = self.low_slack {
                        for pos in self.clique_positions() {
                            let to = ctx.neighbors()[pos];
                            ctx.send(
                                to,
                                Wire::Flag {
                                    tag: tags::AGG_DOWN,
                                    on: low,
                                },
                            );
                        }
                    }
                }
            }
            _ => {
                if self.low_slack.is_none() {
                    for &(from, ref msg) in ctx.inbox() {
                        if let Wire::Flag {
                            tag: tags::AGG_DOWN,
                            on,
                        } = msg
                        {
                            let pos = ctx.neighbor_index(from).expect("flag from non-neighbor");
                            if self.st.neighbor_clique[pos] == self.st.clique {
                                self.low_slack = Some(*on);
                                break;
                            }
                        }
                    }
                }
                self.st.low_slack_clique = self.low_slack.unwrap_or(true);
                // Inlier selection by threshold (see module docs).
                let eps = self.profile.eps_acd;
                let c = f64::from(self.st.clique_size.max(1));
                let dv = f64::from(self.st.nc + self.st.ext);
                self.st.is_inlier = !self.am_leader()
                    && self.st.leader_adjacent
                    && f64::from(self.common) >= (1.0 - 2.0 * eps) * (c - 2.0)
                    && dv <= (1.0 + 2.0 * eps) * c;
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for LeaderInfoPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Elect leaders (arg-min aggregate of the Lemma 12 score), estimate
/// slackability (Lemma 16), classify cliques low/high-slack and split
/// members into inliers and outliers.
///
/// # Errors
///
/// Propagates engine errors.
pub fn select_leaders(
    driver: &mut Driver<'_>,
    states: Vec<NodeState>,
    profile: &ParamProfile,
    delta: usize,
) -> Result<Vec<NodeState>, PassFailure> {
    // Arg-min of the packed (score, id) word across each clique.
    let programs: Vec<CliqueAggregatePass> = states
        .into_iter()
        .map(|st| {
            let packed = pack_argmin(leader_score(&st), st.id);
            CliqueAggregatePass::new(st, AggOp::Min, packed, 64)
        })
        .collect();
    let programs = driver
        .run_seeded(
            "leader-argmin",
            prand::mix::mix2(driver.config.seed, 0x1ead),
            programs,
        )
        .map_err(PassFailure::from_programs)?;
    let states: Vec<NodeState> = programs
        .into_iter()
        .map(|p| {
            let result = p.result;
            let mut st = p.into_state();
            if st.class == AcdClass::Dense {
                st.leader = result.map(unpack_argmin_id);
            }
            st
        })
        .collect();

    // Slackability estimation + low/high classification + inliers.
    let ell = profile.ell(delta);
    driver.run_pass("leader-info", states, |st| {
        LeaderInfoPass::new(st, *profile, ell)
    })
}

/// Leaders of each clique, for inspection: `(hub id, leader id)` pairs.
pub fn leaders(states: &[NodeState]) -> Vec<(NodeId, NodeId)> {
    let mut out: Vec<(NodeId, NodeId)> = states
        .iter()
        .filter_map(|st| Some((st.clique?, st.leader?)))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acd::compute_acd;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    fn acd_states(g: &Graph, driver: &mut Driver<'_>, profile: &ParamProfile) -> Vec<NodeState> {
        let states = (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..=(d as u64)).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(profile, 1, g.n(), 16, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect();
        compute_acd(driver, states, profile, 7).unwrap()
    }

    #[test]
    fn disjoint_cliques_elect_one_leader_each() {
        let g = gen::disjoint_cliques(3, 10);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(3));
        let states = acd_states(&g, &mut driver, &profile);
        let states = select_leaders(&mut driver, states, &profile, g.max_degree()).unwrap();
        let pairs = leaders(&states);
        assert_eq!(pairs.len(), 3, "leaders: {pairs:?}");
        // In a perfect clique every score is 0, so ties break to the
        // minimum id — the hub itself.
        for &(hub, leader) in &pairs {
            assert_eq!(hub, leader);
        }
        // All members agree on their clique's leader and are inliers.
        for st in &states {
            assert!(st.leader.is_some());
            if st.leader != Some(st.id) {
                assert!(st.is_inlier, "node {} not inlier", st.id);
                assert!(st.leader_adjacent);
            }
            // Exact cliques are maximally dense: low slackability.
            assert!(st.low_slack_clique, "node {}", st.id);
        }
    }

    #[test]
    fn leader_score_prefers_internal_nodes() {
        let profile = ParamProfile::laptop();
        let codec = ColorCodec::new(&profile, 1, 100, 16, 4);
        let mut st = NodeState::new(5, Palette::new(vec![0]), codec, 4);
        st.clique_size = 10;
        st.nc = 9;
        st.ext = 0;
        st.chroma_slack = 0;
        assert_eq!(leader_score(&st), 0);
        st.ext = 3;
        st.nc = 6;
        assert_eq!(leader_score(&st), 3 + 3);
    }

    #[test]
    fn blend_cliques_classify_and_pick_inliers() {
        let (g, truth) = gen::planted_acd(2, 16, 0.05, 40, 0.05, 5);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(9));
        let states = acd_states(&g, &mut driver, &profile);
        let states = select_leaders(&mut driver, states, &profile, g.max_degree()).unwrap();
        // Planted members that survived ACD must have a leader and mostly
        // be inliers.
        let mut with_leader = 0;
        let mut inliers = 0;
        let mut dense = 0;
        for (v, t) in truth.iter().enumerate() {
            if t.is_some() && states[v].class == AcdClass::Dense {
                dense += 1;
                if states[v].leader.is_some() {
                    with_leader += 1;
                }
                if states[v].is_inlier {
                    inliers += 1;
                }
            }
        }
        assert!(dense >= 24, "only {dense} planted members stayed dense");
        assert_eq!(with_leader, dense);
        assert!(
            inliers * 10 >= dense * 5,
            "only {inliers}/{dense} dense members are inliers"
        );
    }
}
