//! Baselines the paper compares against (§1.1).
//!
//! * [`solve_random_trial`] — the classical `O(log n)`-round randomized
//!   D1LC algorithm of [Joh99, ABI86, Lub86]: every round each uncolored
//!   node tries one uniform palette color; conflicts drop symmetrically.
//!   Already CONGEST-legal (one color per edge per round).
//! * [`solve_naive_multitrial`] — the LOCAL-style `MultiTrial`: a node
//!   ships `x` **raw colors** to every neighbor each round
//!   (`x·log|C|` bits/edge/round). This is the bandwidth hog the paper's
//!   representative-hash MultiTrial replaces; run it in tracking mode and
//!   compare [`congest::RunReport::normalized_rounds`] (experiment E11).
//! * [`greedy_oracle`] — a sequential (non-distributed) greedy coloring,
//!   used as a validity reference.

use crate::driver::Driver;
use crate::passes::{announce_adoption, digest_adoption, CodecSetupPass, StatePass};
use crate::pipeline::{finish, initial_states, SolveOptions, SolveResult};
use crate::shattering::cleanup;
use crate::state::NodeState;
use crate::wire::{tags, Wire};
use congest::{Ctx, Program, SimConfig, SimError};
use graphs::palette::ListAssignment;
use graphs::{Color, Graph};
use rand::seq::SliceRandom;

/// The Johansson/Luby-style baseline: repeated single random color trials.
///
/// # Errors
///
/// Propagates engine errors.
///
/// # Panics
///
/// Panics if `lists` is not a (degree+1)-list assignment.
pub fn solve_random_trial(
    g: &Graph,
    lists: &ListAssignment,
    opts: SolveOptions,
) -> Result<SolveResult, SimError> {
    assert!(
        lists.is_degree_plus_one(g),
        "lists must give every node ≥ deg+1 colors"
    );
    let sim = SimConfig {
        seed: opts.seed,
        ..opts.sim
    };
    let mut driver = Driver::with_engine(g, sim, opts.engine);
    let mut states = initial_states(g, lists, &opts.profile, opts.seed);
    driver.begin_phase("setup");
    states = driver.run_pass("codec-setup", states, CodecSetupPass::new)?;
    driver.begin_phase("trials");
    states = driver.activate(states, |_| true)?;
    let cap = 40 + 12 * (64 - (g.n().max(2) as u64).leading_zeros());
    for _ in 0..cap {
        if Driver::uncolored_count(&states) == 0 {
            break;
        }
        states = driver.try_color(states, "random-trial")?;
    }
    if Driver::uncolored_count(&states) > 0 {
        driver.begin_phase("cleanup");
        states = cleanup(&mut driver, states)?;
    }
    Ok(finish(g, lists, states, driver.log, 0, 0, 0))
}

/// One LOCAL-style multi-trial round: `x` raw colors per edge.
#[derive(Debug)]
pub struct NaiveMultiTrialPass {
    st: NodeState,
    x: u32,
    color_bits: u32,
    tried: Vec<Color>,
    done: bool,
}

impl NaiveMultiTrialPass {
    /// Try `x` raw colors this round; each costs the declared
    /// `color_bits` on the wire.
    pub fn new(st: NodeState, x: u32, color_bits: u32) -> Self {
        NaiveMultiTrialPass {
            st,
            x,
            color_bits,
            tried: Vec::new(),
            done: false,
        }
    }
}

impl Program for NaiveMultiTrialPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                if self.st.active && self.st.uncolored() && !self.st.palette.is_empty() {
                    let mut colors = self.st.palette.colors().to_vec();
                    colors.shuffle(ctx.rng());
                    colors.truncate(self.x as usize);
                    self.tried = colors;
                    ctx.broadcast(Wire::UintList {
                        tag: tags::TRIED,
                        values: self.tried.clone(),
                        bits_each: self.color_bits,
                    });
                }
            }
            1 => {
                if !self.tried.is_empty() {
                    // Sorted scratch instead of a per-round hash set:
                    // rival lists are short and only membership-tested.
                    let mut rivals: Vec<Color> = Vec::new();
                    for (_, msg) in ctx.inbox() {
                        if let Wire::UintList {
                            tag: tags::TRIED,
                            values,
                            ..
                        } = msg
                        {
                            rivals.extend(values.iter().copied());
                        }
                    }
                    rivals.sort_unstable();
                    // A color tried by any neighbor is skipped by both
                    // sides — symmetric, hence conflict-free.
                    if let Some(&c) = self.tried.iter().find(|c| rivals.binary_search(c).is_err()) {
                        self.st.adopt(c, "naive-multitrial");
                        announce_adoption(&self.st, ctx, c);
                    }
                }
            }
            _ => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Color {
                        tag: tags::ADOPTED,
                        payload,
                        ..
                    } = msg
                    {
                        let pos = ctx
                            .neighbor_index(from)
                            .expect("adoption from non-neighbor");
                        digest_adoption(&mut self.st, pos, *payload, false);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for NaiveMultiTrialPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// The LOCAL-style baseline: repeated naive multi-trials of `x` raw colors.
/// Use with [`congest::Bandwidth::Track`] and compare normalized rounds —
/// the point of experiment E11.
///
/// # Errors
///
/// Propagates engine errors (it *will* error under a strict `O(log n)`
/// bandwidth policy when `x·color_bits` exceeds the cap — that failure is
/// the paper's motivation).
///
/// # Panics
///
/// Panics if `lists` is not a (degree+1)-list assignment.
pub fn solve_naive_multitrial(
    g: &Graph,
    lists: &ListAssignment,
    x: u32,
    opts: SolveOptions,
) -> Result<SolveResult, SimError> {
    assert!(
        lists.is_degree_plus_one(g),
        "lists must give every node ≥ deg+1 colors"
    );
    let sim = SimConfig {
        seed: opts.seed,
        ..opts.sim
    };
    let mut driver = Driver::with_engine(g, sim, opts.engine);
    let mut states = initial_states(g, lists, &opts.profile, opts.seed);
    states = driver.run_pass("codec-setup", states, CodecSetupPass::new)?;
    states = driver.activate(states, |_| true)?;
    let cap = 40 + 8 * (64 - (g.n().max(2) as u64).leading_zeros());
    let color_bits = lists.color_bits();
    for _ in 0..cap {
        if Driver::uncolored_count(&states) == 0 {
            break;
        }
        states = driver.run_pass("naive-multitrial", states, |st| {
            NaiveMultiTrialPass::new(st, x, color_bits)
        })?;
    }
    if Driver::uncolored_count(&states) > 0 {
        states = cleanup(&mut driver, states)?;
    }
    Ok(finish(g, lists, states, driver.log, 0, 0, 0))
}

/// Sequential greedy list coloring (oracle reference, not distributed).
///
/// # Panics
///
/// Panics if `lists` is not a (degree+1)-list assignment.
pub fn greedy_oracle(g: &Graph, lists: &ListAssignment) -> Vec<Color> {
    assert!(
        lists.is_degree_plus_one(g),
        "lists must give every node ≥ deg+1 colors"
    );
    let mut coloring: Vec<Option<Color>> = vec![None; g.n()];
    // One sorted scratch reused across all nodes — the per-node hash-set
    // rebuild used to dominate this oracle on large graphs. The
    // first-free rule itself is shared with the pipeline's repair sweep.
    let mut taken: Vec<Color> = Vec::new();
    for v in 0..g.n() {
        let c = crate::pipeline::first_free_color(g, lists, &coloring, v, &mut taken)
            .expect("greedy on (deg+1)-lists cannot fail");
        coloring[v] = Some(c);
    }
    coloring
        .into_iter()
        .map(|c| c.expect("assigned above"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;
    use graphs::palette::{check_coloring, degree_plus_one_lists, random_lists};

    #[test]
    fn random_trial_baseline_solves() {
        let g = gen::gnp(120, 0.08, 2);
        let lists = degree_plus_one_lists(&g);
        let r = solve_random_trial(&g, &lists, SolveOptions::seeded(3)).unwrap();
        assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
        assert_eq!(r.stats.repairs, 0);
    }

    #[test]
    fn naive_multitrial_solves_but_floods() {
        let g = gen::gnp(80, 0.1, 4);
        let lists = random_lists(&g, 48, 0, 7);
        let x = 8;
        let r = solve_naive_multitrial(&g, &lists, x, SolveOptions::seeded(5)).unwrap();
        assert_eq!(check_coloring(&g, &lists, &r.coloring), Ok(()));
        // The bandwidth bill: some round carried ≥ x·48 bits on one edge.
        assert!(
            r.log.max_edge_bits() >= u64::from(x) * 48,
            "max edge bits {} too low",
            r.log.max_edge_bits()
        );
    }

    #[test]
    fn naive_multitrial_violates_strict_congest() {
        let g = gen::gnp(60, 0.15, 1);
        let lists = random_lists(&g, 48, 0, 9);
        let opts = SolveOptions {
            sim: SimConfig {
                bandwidth: congest::Bandwidth::Strict(congest::SimConfig::congest_bits(60, 16)),
                ..SimConfig::default()
            },
            ..SolveOptions::seeded(7)
        };
        let result = solve_naive_multitrial(&g, &lists, 16, opts);
        assert!(
            result.is_err(),
            "16 raw 48-bit colors should blow a 96-bit cap"
        );
    }

    #[test]
    fn greedy_oracle_is_proper() {
        let g = gen::gnp(100, 0.12, 6);
        let lists = degree_plus_one_lists(&g);
        let coloring = greedy_oracle(&g, &lists);
        assert_eq!(check_coloring(&g, &lists, &coloring), Ok(()));
    }
}
