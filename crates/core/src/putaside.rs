//! Put-aside sets — Algorithm 13 and Appendix D.2.
//!
//! Low-slack almost-cliques park a set `P_C` of Θ(ℓ) inliers: they stay
//! uncolored through `SlackColor` (providing temporary slack to the rest
//! of the clique) and are colored at the very end by their leader, who
//! collects enough of their palettes and their induced topology.
//!
//! Selection (5 rounds): inliers of low-slack cliques sample themselves,
//! drop on a sampled neighbor in *another* clique (the `E_v ∩ S = ∅` rule,
//! which keeps put-aside sets of different cliques non-adjacent — the
//! property that makes end-of-algorithm coloring safe), and the leader
//! thins the survivors to the Θ(ℓ) target.
//!
//! Coloring (9 rounds): each `P_C` member uploads its `P_C`-neighbor ids
//! and then `|N(v) ∩ P_C| + 4` color *tokens* (images under the leader's
//! universal hash — App. D.3 — or raw colors when small), **chunked over
//! consecutive rounds** so no single message exceeds ~256 bits — the
//! bandwidth-spreading role App. D.2 assigns to its relay intervals,
//! realized here over the direct member↔leader edge (deviation noted in
//! DESIGN.md). The leader greedily assigns conflict-free tokens and sends
//! them back.

use crate::config::ParamProfile;
use crate::driver::{Driver, PassFailure};
use crate::passes::{announce_adoption, digest_adoption, StatePass};
use crate::state::{AcdClass, NodeState};
use crate::wire::{tags, ColorWire, Wire};
use congest::message::bits_for_range;
use congest::{Ctx, Program};
use graphs::NodeId;
use rand::Rng;

/// Sampling probability for put-aside candidates.
///
/// The paper's Alg. 13 uses `p_s = ℓ²/(48·Δ_C)`; at laptop scale that
/// expectation can be below one node, so the laptop profile also floors
/// the expected sample at `2ℓ` members (the leader trims back to ≈ ℓ).
pub fn putaside_prob(profile: &ParamProfile, ell: u64, clique_size: u32) -> f64 {
    let c = f64::from(clique_size.max(1));
    let paper = (ell * ell) as f64 / (profile.putaside_c * c);
    let floor = 2.0 * ell as f64 / c;
    paper.max(floor).min(0.5)
}

/// Selection pass (5 rounds).
#[derive(Debug)]
pub struct PutAsideSelectPass {
    st: NodeState,
    profile: ParamProfile,
    ell: u64,
    id_bits: u32,
    sampled: bool,
    survivor: bool,
    done: bool,
}

impl PutAsideSelectPass {
    /// Wrap a node state; `ell` is the clique-slack threshold `ℓ`.
    pub fn new(st: NodeState, profile: ParamProfile, ell: u64, n: usize) -> Self {
        PutAsideSelectPass {
            st,
            profile,
            ell,
            id_bits: bits_for_range(n as u64) as u32,
            sampled: false,
            survivor: false,
            done: false,
        }
    }

    fn candidate(&self) -> bool {
        self.st.class == AcdClass::Dense
            && self.st.low_slack_clique
            && self.st.is_inlier
            && self.st.uncolored()
    }

    fn am_leader(&self) -> bool {
        self.st.leader == Some(self.st.id)
    }
}

impl Program for PutAsideSelectPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                if self.candidate() {
                    let ps = putaside_prob(&self.profile, self.ell, self.st.clique_size);
                    if ctx.rng().gen::<f64>() < ps {
                        self.sampled = true;
                        let cid = self.st.clique.expect("dense node has a clique");
                        ctx.broadcast(Wire::Uint {
                            tag: tags::SAMPLED,
                            value: u64::from(cid),
                            bits: self.id_bits,
                        });
                    }
                }
            }
            1 => {
                if self.sampled {
                    let my_cid = self.st.clique.map(u64::from);
                    let clash = ctx.inbox().iter().any(|(_, msg)| {
                        matches!(msg, Wire::Uint { tag: tags::SAMPLED, value, .. }
                            if Some(*value) != my_cid)
                    });
                    if !clash {
                        self.survivor = true;
                        let leader = self.st.leader.expect("inlier has a leader");
                        ctx.send(
                            leader,
                            Wire::Flag {
                                tag: tags::REQUEST,
                                on: true,
                            },
                        );
                    }
                }
            }
            2 => {
                if self.am_leader() {
                    let survivors = ctx
                        .inbox()
                        .iter()
                        .filter(|&(_, m)| {
                            matches!(
                                m,
                                Wire::Flag {
                                    tag: tags::REQUEST,
                                    ..
                                }
                            )
                        })
                        .count() as u64;
                    let cap = self.ell.max(1);
                    // 16-bit fixed-point keep-probability.
                    let theta = if survivors <= cap {
                        u64::from(u16::MAX)
                    } else {
                        (u64::from(u16::MAX) * cap) / survivors
                    };
                    ctx.broadcast(Wire::Uint {
                        tag: tags::AGG_DOWN,
                        value: theta,
                        bits: 16,
                    });
                }
            }
            3 => {
                if self.survivor {
                    let leader = self.st.leader.expect("inlier has a leader");
                    let theta = ctx
                        .inbox()
                        .iter()
                        .find_map(|&(from, ref msg)| match msg {
                            Wire::Uint {
                                tag: tags::AGG_DOWN,
                                value,
                                ..
                            } if from == leader => Some(*value),
                            _ => None,
                        })
                        .unwrap_or(0);
                    if u64::from(ctx.rng().gen::<u16>()) <= theta {
                        self.st.put_aside = true;
                        let cid = self.st.clique.expect("dense node has a clique");
                        ctx.broadcast(Wire::Uint {
                            tag: tags::SAMPLED,
                            value: u64::from(cid),
                            bits: self.id_bits,
                        });
                    }
                }
            }
            _ => {
                self.st.pc_neighbors.clear();
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Uint {
                        tag: tags::SAMPLED,
                        value,
                        ..
                    } = msg
                    {
                        let pos = ctx.neighbor_index(from).expect("pc from non-neighbor");
                        if self.st.neighbor_clique[pos].map(u64::from) == Some(*value)
                            && self.st.clique.map(u64::from) == Some(*value)
                        {
                            self.st.pc_neighbors.push(from);
                        }
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for PutAsideSelectPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Token-chunk rounds of the coloring pass (supports up to
/// `CHUNK_ROUNDS · ⌊256/color_bits⌋` tokens per member).
const CHUNK_ROUNDS: u64 = 4;

/// One member's upload at the leader: its color tokens and its `P_C`
/// neighbor ids.
type Upload = (Vec<u64>, Vec<NodeId>);

/// End-of-phase coloring of the put-aside sets (9 rounds).
#[derive(Debug)]
pub struct PutAsideColorPass {
    st: NodeState,
    id_bits: u32,
    /// This member's token upload, chunked in round order.
    my_tokens: Vec<u64>,
    /// Leader scratch: tokens and `P_C` topology per member, kept sorted
    /// by member id (binary-search upsert — members are few and the
    /// inbox already arrives in sender order, so this replaces the old
    /// per-leader hash map at zero comparison cost).
    uploads: Vec<(NodeId, Upload)>,
    done: bool,
}

impl PutAsideColorPass {
    /// Wrap a node state.
    pub fn new(st: NodeState, n: usize) -> Self {
        PutAsideColorPass {
            st,
            id_bits: bits_for_range(n as u64) as u32,
            my_tokens: Vec::new(),
            uploads: Vec::new(),
            done: false,
        }
    }

    /// Tokens per chunk so one chunk message stays near 256 bits.
    fn chunk_len(&self) -> usize {
        (256 / self.st.codec.color_bits().max(1) as usize).max(1)
    }

    fn am_leader(&self) -> bool {
        self.st.class == AcdClass::Dense && self.st.leader == Some(self.st.id)
    }

    fn participating(&self) -> bool {
        self.st.put_aside && self.st.uncolored() && self.st.leader.is_some()
    }

    /// Leader-relative position (the leader is a neighbor of every
    /// put-aside member).
    fn leader_pos(&self, ctx: &Ctx<'_, Wire>) -> Option<usize> {
        ctx.neighbor_index(self.st.leader?)
    }

    /// The leader's upload record for `from` (sorted-insert on miss).
    fn upload_entry(&mut self, from: NodeId) -> &mut Upload {
        let i = match self.uploads.binary_search_by_key(&from, |(v, _)| *v) {
            Ok(i) => i,
            Err(i) => {
                self.uploads.insert(i, (from, (Vec::new(), Vec::new())));
                i
            }
        };
        &mut self.uploads[i].1
    }

    /// Distinct color tokens under the leader's hash for upload.
    fn tokens(&self, ctx: &Ctx<'_, Wire>) -> Vec<u64> {
        let want = (self.st.pc_neighbors.len() + 4).min(CHUNK_ROUNDS as usize * self.chunk_len());
        let Some(pos) = self.leader_pos(ctx) else {
            return Vec::new();
        };
        // Sorted dedup scratch: `want` is O(|P_C ∩ N(v)|), tiny.
        let mut seen: Vec<u64> = Vec::new();
        let mut out = Vec::new();
        for &c in self.st.palette.colors() {
            let token = match self.st.codec.encode_for(pos, c) {
                ColorWire::Raw(x) => x,
                ColorWire::Hashed(img) => img,
            };
            if let Err(i) = seen.binary_search(&token) {
                seen.insert(i, token);
                out.push(token);
                if out.len() >= want {
                    break;
                }
            }
        }
        out
    }
}

impl Program for PutAsideColorPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        let assign_round = 1 + CHUNK_ROUNDS; // ids round + chunk rounds
        match ctx.round() {
            0 => {
                if self.participating() {
                    let leader = self.st.leader.expect("participating() checked");
                    self.my_tokens = self.tokens(ctx);
                    let ids = self.st.pc_neighbors.iter().map(|&w| u64::from(w)).collect();
                    ctx.send(
                        leader,
                        Wire::UintList {
                            tag: tags::REQUEST,
                            values: ids,
                            bits_each: self.id_bits,
                        },
                    );
                }
            }
            r if (1..=CHUNK_ROUNDS).contains(&r) => {
                // Leader side: record incoming ids (round 1) and chunks.
                if self.am_leader() {
                    for &(from, ref msg) in ctx.inbox() {
                        let entry = self.upload_entry(from);
                        match msg {
                            Wire::UintList {
                                tag: tags::PAL_UP,
                                values,
                                ..
                            } => {
                                entry.0.extend_from_slice(values);
                            }
                            Wire::UintList {
                                tag: tags::REQUEST,
                                values,
                                ..
                            } => {
                                entry.1 = values.iter().map(|&x| x as NodeId).collect();
                            }
                            _ => {}
                        }
                    }
                }
                // Member side: ship chunk r−1.
                if self.participating() {
                    let leader = self.st.leader.expect("participating() checked");
                    let chunk_len = self.chunk_len();
                    let start = (r as usize - 1) * chunk_len;
                    if start < self.my_tokens.len() {
                        let end = (start + chunk_len).min(self.my_tokens.len());
                        let bits_each = self.st.codec.color_bits();
                        ctx.send(
                            leader,
                            Wire::UintList {
                                tag: tags::PAL_UP,
                                values: self.my_tokens[start..end].to_vec(),
                                bits_each,
                            },
                        );
                    }
                }
            }
            r if r == assign_round => {
                if self.am_leader() {
                    // Absorb the final chunk round's messages.
                    for &(from, ref msg) in ctx.inbox() {
                        if let Wire::UintList {
                            tag: tags::PAL_UP,
                            values,
                            ..
                        } = msg
                        {
                            self.upload_entry(from).0.extend_from_slice(values);
                        }
                    }
                    // Greedy assignment in id order (uploads are already
                    // sorted by member id): pick a token no
                    // already-assigned P_C-neighbor holds. `chosen` grows
                    // in that same ascending order, so member lookups are
                    // binary searches over a sorted vec.
                    let mut chosen: Vec<(NodeId, u64)> = Vec::new();
                    let mut taken: Vec<u64> = Vec::new();
                    let bits_each = self.st.codec.color_bits();
                    for m in 0..self.uploads.len() {
                        let (v, (tokens, nbrs)) = &self.uploads[m];
                        taken.clear();
                        taken.extend(nbrs.iter().filter_map(|u| {
                            chosen
                                .binary_search_by_key(u, |&(w, _)| w)
                                .ok()
                                .map(|i| chosen[i].1)
                        }));
                        taken.sort_unstable();
                        if let Some(&t) = tokens.iter().find(|t| taken.binary_search(t).is_err()) {
                            let v = *v;
                            chosen.push((v, t));
                            ctx.send(
                                v,
                                Wire::Uint {
                                    tag: tags::PAL_DOWN,
                                    value: t,
                                    bits: bits_each,
                                },
                            );
                        }
                    }
                }
            }
            r if r == assign_round + 1 => {
                if self.participating() {
                    let leader = self.st.leader.expect("participating() checked");
                    let token = ctx.inbox().iter().find_map(|&(from, ref msg)| match msg {
                        Wire::Uint {
                            tag: tags::PAL_DOWN,
                            value,
                            ..
                        } if from == leader => Some(*value),
                        _ => None,
                    });
                    if let Some(t) = token {
                        let pos = self.leader_pos(ctx).expect("leader is a neighbor");
                        let color = if self.st.codec.hashed() {
                            self.st.codec.decode_via_neighbor(
                                &self.st.palette,
                                pos,
                                ColorWire::Hashed(t),
                            )
                        } else {
                            self.st.palette.contains(t).then_some(t)
                        };
                        if let Some(c) = color {
                            self.st.adopt(c, "put-aside");
                            announce_adoption(&self.st, ctx, c);
                        }
                    }
                }
            }
            _ => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Color {
                        tag: tags::ADOPTED,
                        payload,
                        ..
                    } = msg
                    {
                        let pos = ctx
                            .neighbor_index(from)
                            .expect("adoption from non-neighbor");
                        digest_adoption(&mut self.st, pos, *payload, false);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for PutAsideColorPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Run selection then (later) coloring; exported pieces for the dense
/// orchestrator.
///
/// # Errors
///
/// Propagates engine errors.
pub fn select_put_aside(
    driver: &mut Driver<'_>,
    states: Vec<NodeState>,
    profile: &ParamProfile,
    delta: usize,
) -> Result<Vec<NodeState>, PassFailure> {
    let ell = profile.ell(delta);
    let n = driver.graph.n();
    driver.run_pass("put-aside-select", states, |st| {
        PutAsideSelectPass::new(st, *profile, ell, n)
    })
}

/// Color the put-aside sets through their leaders.
///
/// # Errors
///
/// Propagates engine errors.
pub fn color_put_aside(
    driver: &mut Driver<'_>,
    states: Vec<NodeState>,
) -> Result<Vec<NodeState>, PassFailure> {
    let n = driver.graph.n();
    driver.run_pass("put-aside-color", states, |st| {
        PutAsideColorPass::new(st, n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    /// A clique where everyone is an inlier of a low-slack clique with
    /// leader/hub 0.
    fn clique_states(g: &Graph, c: u32) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..=(d as u64 + 4)).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 16, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st.class = AcdClass::Dense;
                st.clique = Some(0);
                st.neighbor_clique = vec![Some(0); d];
                st.clique_size = c;
                st.leader = Some(0);
                st.leader_adjacent = v != 0;
                st.is_inlier = v != 0;
                st.low_slack_clique = true;
                st
            })
            .collect()
    }

    #[test]
    fn selection_parks_about_ell_nodes() {
        let g = gen::complete(30);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(4));
        let states = select_put_aside(&mut driver, clique_states(&g, 30), &profile, 29).unwrap();
        let ell = profile.ell(29);
        let pc = states.iter().filter(|s| s.put_aside).count();
        assert!(pc >= 1, "no put-aside nodes selected");
        assert!(
            pc as u64 <= 3 * ell,
            "put-aside too large: {pc} vs ℓ = {ell}"
        );
        // Members' pc_neighbors views agree with the actual set.
        for st in &states {
            for &u in &st.pc_neighbors {
                assert!(states[u as usize].put_aside, "stale pc view at {}", st.id);
            }
        }
    }

    #[test]
    fn coloring_put_aside_is_conflict_free() {
        let g = gen::complete(24);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(9));
        let mut states =
            select_put_aside(&mut driver, clique_states(&g, 24), &profile, 23).unwrap();
        // Pretend everyone else was colored by earlier stages: color all
        // non-PC nodes distinctly (big colors outside lists don't matter —
        // just mark them colored so only PC remains).
        for st in &mut states {
            if !st.put_aside {
                let c = st.palette.colors()[st.id as usize % st.palette.len()];
                st.color = Some(c);
            }
        }
        let pc_before: Vec<NodeId> = states
            .iter()
            .filter(|s| s.put_aside && s.uncolored())
            .map(|s| s.id)
            .collect();
        let states = color_put_aside(&mut driver, states).unwrap();
        for &v in &pc_before {
            assert!(
                states[v as usize].color.is_some(),
                "PC node {v} left uncolored"
            );
        }
        // Distinct colors among adjacent PC members.
        for &v in &pc_before {
            for &u in &states[v as usize].pc_neighbors {
                assert_ne!(
                    states[v as usize].color, states[u as usize].color,
                    "PC conflict {v}–{u}"
                );
            }
        }
    }

    #[test]
    fn cross_clique_sampled_neighbors_cancel() {
        // Two K6 cliques joined by one edge (5–6): if both endpoints
        // sample, both drop. Force sampling with ps = 0.5 over many seeds
        // and just verify the invariant that adjacent PC nodes never
        // belong to different cliques.
        let mut b = graphs::GraphBuilder::new(12);
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    b.add_edge(base + i, base + j);
                }
            }
        }
        b.add_edge(5, 6);
        let g = b.build();
        let profile = ParamProfile::laptop();
        for seed in 0..10 {
            let states: Vec<NodeState> = (0..g.n())
                .map(|v| {
                    let d = g.degree(v as NodeId);
                    let list: Vec<u64> = (0..=(d as u64 + 2)).collect();
                    let cid = if v < 6 { 0 } else { 6 };
                    let mut st = NodeState::new(
                        v as NodeId,
                        Palette::new(list),
                        ColorCodec::new(&profile, 1, g.n(), 16, d),
                        d,
                    );
                    st.active = true;
                    st.neighbor_active = vec![true; d];
                    st.class = AcdClass::Dense;
                    st.clique = Some(cid);
                    st.neighbor_clique = g
                        .neighbors(v as NodeId)
                        .iter()
                        .map(|&u| Some(if u < 6 { 0 } else { 6 }))
                        .collect();
                    st.clique_size = 6;
                    st.leader = Some(cid);
                    st.leader_adjacent = v as NodeId != cid;
                    st.is_inlier = v as NodeId != cid;
                    st.low_slack_clique = true;
                    st
                })
                .collect();
            let mut driver = Driver::new(&g, SimConfig::seeded(seed));
            let states = select_put_aside(&mut driver, states, &profile, 6).unwrap();
            if states[5].put_aside {
                assert!(
                    !states[6].put_aside,
                    "seed {seed}: adjacent cross-clique PC"
                );
            }
        }
    }
}
