//! The wire format shared by all D1LC passes, and the large-color codec of
//! Appendix D.3.
//!
//! Colors may live in a space of up to `2^64` values (standing in for the
//! paper's `exp(n^Θ(1))`). Sending a raw color costs its declared bit
//! width; the codec instead has every node `v` broadcast (once) the index
//! of a universal hash `h_v` with range `M = (n+1)^d`, after which any
//! neighbor announces a color `ψ` to `v` as the `O(d·log n)`-bit image
//! `h_v(ψ)`. With `d ≥ 6` no collision occurs in any neighborhood w.h.p.,
//! so images are faithful stand-ins for colors: equality tests compare
//! images, palette updates remove the (w.h.p. unique) preimage.

use crate::config::ParamProfile;
use congest::Message;
use graphs::Color;
use prand::{ColorHash, ColorHashFamily};
use rand::Rng;

/// A color on the wire: raw or hashed through the *receiver's* universal
/// hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorWire {
    /// The color itself; costs the declared color width.
    Raw(Color),
    /// The image under the receiver's hash; costs `⌈log₂ M⌉` bits.
    Hashed(u64),
}

/// Semantic tag distinguishing messages that share a round.
pub type Tag = u8;

/// Tags used across the pipeline passes.
pub mod tags {
    /// A color being tried this round.
    pub const TRIED: super::Tag = 1;
    /// A color permanently adopted.
    pub const ADOPTED: super::Tag = 2;
    /// Activation / participation announcements.
    pub const ACTIVE: super::Tag = 3;
    /// Clique identifier announcements.
    pub const CLIQUE: super::Tag = 4;
    /// Adjacent-to-hub / adjacent-to-leader flags.
    pub const HUB_ADJ: super::Tag = 5;
    /// Aggregation payloads flowing toward the hub.
    pub const AGG_UP: super::Tag = 6;
    /// Aggregation results flowing back from the hub.
    pub const AGG_DOWN: super::Tag = 7;
    /// Put-aside sampling announcements.
    pub const SAMPLED: super::Tag = 8;
    /// Leader color assignment (SynchColorTrial).
    pub const ASSIGN: super::Tag = 9;
    /// Put-aside palette upload chunks.
    pub const PAL_UP: super::Tag = 10;
    /// Put-aside final colors flowing back.
    pub const PAL_DOWN: super::Tag = 11;
    /// Uncolored-status announcements (cleanup).
    pub const UNCOLORED: super::Tag = 12;
    /// Degree announcements.
    pub const DEGREE: super::Tag = 13;
    /// Requests (e.g. inlier asks leader for a color).
    pub const REQUEST: super::Tag = 14;
}

/// The single message type of every D1LC pass.
#[derive(Clone, Debug)]
pub enum Wire {
    /// A one-bit flag.
    Flag {
        /// Semantic tag.
        tag: Tag,
        /// The bit.
        on: bool,
    },
    /// A bounded integer.
    Uint {
        /// Semantic tag.
        tag: Tag,
        /// Payload.
        value: u64,
        /// Declared width.
        bits: u32,
    },
    /// A color announcement (tried/adopted/assigned).
    Color {
        /// Semantic tag.
        tag: Tag,
        /// The (possibly hashed) color.
        payload: ColorWire,
        /// Declared width of the payload.
        bits: u32,
    },
    /// MultiTrial hash announcement `(λ_v, i_v)`.
    MtHash {
        /// The sender's hash range `λ_v = 6|Ψ_v|`.
        lambda: u64,
        /// Family member index.
        index: u64,
        /// Combined declared width.
        bits: u32,
    },
    /// A window bitmap (`b_{v→u}` of Alg. 4, line 6).
    Bitmap {
        /// Semantic tag.
        tag: Tag,
        /// Packed bits.
        words: Vec<u64>,
        /// Number of meaningful bits (σ).
        bits: u64,
    },
    /// A list of bounded integers (palette-hash uploads, topology lists).
    UintList {
        /// Semantic tag.
        tag: Tag,
        /// Payload values.
        values: Vec<u64>,
        /// Declared width of each value.
        bits_each: u32,
    },
}

impl Message for Wire {
    fn bit_cost(&self) -> u64 {
        match self {
            Wire::Flag { .. } => 1,
            Wire::Uint { bits, .. } | Wire::Color { bits, .. } | Wire::MtHash { bits, .. } => {
                u64::from(*bits)
            }
            Wire::Bitmap { bits, .. } => *bits,
            Wire::UintList {
                values, bits_each, ..
            } => values.len() as u64 * u64::from(*bits_each),
        }
    }
}

/// Per-node large-color codec: the node's own universal hash plus the
/// indices its neighbors announced.
#[derive(Clone, Debug)]
pub struct ColorCodec {
    family: ColorHashFamily,
    raw_bits: u32,
    hashed: bool,
    my_index: u64,
    /// Hash index of each neighbor, aligned with the sorted neighbor list.
    neighbor_index: Vec<u64>,
}

impl ColorCodec {
    /// A codec for one node of an `n`-node graph with colors of
    /// `color_bits` bits. All nodes must share `seed`.
    pub fn new(
        profile: &ParamProfile,
        seed: u64,
        n: usize,
        color_bits: u32,
        degree: usize,
    ) -> Self {
        let family = ColorHashFamily::for_graph(n.max(2), profile.color_hash_d, seed);
        let hashed = color_bits > profile.hash_colors_above_bits
            && u64::from(color_bits) > u64::from(family.value_bits());
        ColorCodec {
            family,
            raw_bits: color_bits,
            hashed,
            my_index: 0,
            neighbor_index: vec![0; degree],
        }
    }

    /// Whether colors are hashed on the wire.
    pub fn hashed(&self) -> bool {
        self.hashed
    }

    /// Draw this node's hash index (done once, round 0 of the setup pass).
    pub fn choose_index<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        self.my_index = self.family.sample_index(rng);
        self.my_index
    }

    /// Bits of an index announcement.
    pub fn index_bits(&self) -> u32 {
        self.family.index_bits()
    }

    /// Bits of one encoded color on the wire.
    pub fn color_bits(&self) -> u32 {
        if self.hashed {
            self.family.value_bits()
        } else {
            self.raw_bits
        }
    }

    /// Record a neighbor's announced index (setup pass, round 1).
    pub fn set_neighbor_index(&mut self, pos: usize, index: u64) {
        self.neighbor_index[pos] = index;
    }

    /// This node's own hash (what neighbors encode colors with).
    pub fn my_hash(&self) -> ColorHash {
        self.family.member(self.my_index)
    }

    /// The hash of the neighbor at `pos`.
    pub fn neighbor_hash(&self, pos: usize) -> ColorHash {
        self.family.member(self.neighbor_index[pos])
    }

    /// Encode `color` for the neighbor at `pos`.
    pub fn encode_for(&self, pos: usize, color: Color) -> ColorWire {
        if self.hashed {
            ColorWire::Hashed(self.neighbor_hash(pos).hash(color))
        } else {
            ColorWire::Raw(color)
        }
    }

    /// Encode `color` under this node's *own* hash (leader → inlier
    /// assignments go through the leader's hash, which inliers know).
    pub fn encode_own(&self, color: Color) -> ColorWire {
        if self.hashed {
            ColorWire::Hashed(self.my_hash().hash(color))
        } else {
            ColorWire::Raw(color)
        }
    }

    /// Whether an incoming wire color (encoded with *my* hash) equals my
    /// candidate color.
    pub fn matches_mine(&self, mine: Color, wire: ColorWire) -> bool {
        match wire {
            ColorWire::Raw(c) => c == mine,
            ColorWire::Hashed(img) => self.my_hash().hash(mine) == img,
        }
    }

    /// Remove an announced (wire-encoded, under my hash) color from a
    /// palette; returns the number of colors removed.
    pub fn remove_from(&self, palette: &mut crate::palette::Palette, wire: ColorWire) -> usize {
        match wire {
            ColorWire::Raw(c) => usize::from(palette.remove(c)),
            ColorWire::Hashed(img) => palette.remove_by_hash(&self.my_hash(), img),
        }
    }

    /// Whether the original list contains the announced color (chromatic
    /// slack counting).
    pub fn original_contains(&self, palette: &crate::palette::Palette, wire: ColorWire) -> bool {
        match wire {
            ColorWire::Raw(c) => palette.original().binary_search(&c).is_ok(),
            ColorWire::Hashed(img) => palette.original_has_hash(&self.my_hash(), img),
        }
    }

    /// Decode a wire color (encoded with the hash of the *sender*, whose
    /// neighbor position is `sender_pos`) to a palette color of mine, if
    /// any matches. Used by inliers decoding leader assignments.
    pub fn decode_via_neighbor(
        &self,
        palette: &crate::palette::Palette,
        sender_pos: usize,
        wire: ColorWire,
    ) -> Option<Color> {
        match wire {
            ColorWire::Raw(c) => palette.contains(c).then_some(c),
            ColorWire::Hashed(img) => {
                palette.first_matching_hash(&self.neighbor_hash(sender_pos), img)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Palette;

    fn codec(color_bits: u32) -> ColorCodec {
        let mut c = ColorCodec::new(&ParamProfile::laptop(), 7, 1000, color_bits, 3);
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        c.choose_index(&mut rng);
        c
    }

    #[test]
    fn small_colors_ride_raw() {
        let c = codec(16);
        assert!(!c.hashed());
        assert_eq!(c.color_bits(), 16);
        assert_eq!(c.encode_for(0, 99), ColorWire::Raw(99));
    }

    #[test]
    fn large_colors_are_hashed() {
        let c = codec(63);
        assert!(c.hashed());
        // M = 1001^6 needs ~60 bits... value_bits < 63 required for
        // hashing to pay off; for n = 1000, d = 6 → 60 bits < 63. ✓
        assert!(c.color_bits() < 63);
        match c.encode_own(123456789) {
            ColorWire::Hashed(img) => assert_eq!(img, c.my_hash().hash(123456789)),
            ColorWire::Raw(_) => panic!("expected hashed"),
        }
    }

    #[test]
    fn matches_mine_is_exact_for_raw() {
        let c = codec(16);
        assert!(c.matches_mine(5, ColorWire::Raw(5)));
        assert!(!c.matches_mine(5, ColorWire::Raw(6)));
    }

    #[test]
    fn matches_mine_via_hash() {
        let c = codec(63);
        let img = c.my_hash().hash(777);
        assert!(c.matches_mine(777, ColorWire::Hashed(img)));
        assert!(
            !c.matches_mine(778, ColorWire::Hashed(img)) || {
                // collision — astronomically unlikely with M = n^6
                false
            }
        );
    }

    #[test]
    fn remove_from_palette_by_wire() {
        let c = codec(63);
        let mut p = Palette::new((0..40).map(|i| i * 97).collect());
        let wire = c.encode_own(5 * 97); // own hash == "my hash" on receiver side
        let removed = c.remove_from(&mut p, wire);
        assert_eq!(removed, 1);
        assert!(!p.contains(5 * 97));
    }

    #[test]
    fn original_contains_via_wire() {
        let c = codec(63);
        let mut p = Palette::new(vec![10, 20, 30]);
        p.remove(20);
        assert!(c.original_contains(&p, c.encode_own(20)));
        assert!(!c.original_contains(&p, c.encode_own(999)));
    }

    #[test]
    fn wire_bit_costs() {
        assert_eq!(Wire::Flag { tag: 1, on: true }.bit_cost(), 1);
        assert_eq!(
            Wire::Uint {
                tag: 1,
                value: 9,
                bits: 12
            }
            .bit_cost(),
            12
        );
        assert_eq!(
            Wire::Bitmap {
                tag: 1,
                words: vec![0, 0],
                bits: 100
            }
            .bit_cost(),
            100
        );
        assert_eq!(
            Wire::UintList {
                tag: 1,
                values: vec![1, 2, 3],
                bits_each: 20
            }
            .bit_cost(),
            60
        );
    }
}
