//! Serving-layer vocabulary: requests, configuration, and errors shared
//! by the concurrent [`crate::server`] and the deprecated batched
//! [`SolveService`] shim.
//!
//! The serving stack exploits one repo-wide invariant: the solver is
//! **deterministic** — a [`crate::SolveResult`] is a pure function of
//! `(graph, lists, options)`. That is what makes session reuse
//! transcript-invariant and response memoization sound (a memo hit
//! returns the byte-identical result a recompute would produce).
//!
//! * [`SolveRequest`] — an `Arc`-shared instance plus [`crate::SolveOptions`]
//!   and a per-request [`RequestPolicy`] (deadline, retry limit). Identity
//!   (`Arc` pointer equality) keys both the same-graph session rebind and
//!   the response memo.
//! * [`ServiceConfig`] — built through [`ServiceConfig::builder`] with
//!   validation errors ([`ConfigError`]) instead of silently-clamped
//!   fields; [`ServiceConfig::fresh_per_solve`] and
//!   [`ServiceConfig::pooled_only`] remain as presets.
//! * [`ServeError`] — the typed serving-path error: admission rejection,
//!   deadline expiry, retry exhaustion, engine errors, shutdown.
//!
//! The always-on concurrent frontend lives in [`crate::server`]; see
//! DESIGN.md §7 for the queue/admission/deadline lifecycle.

use crate::driver::Driver;
use crate::pipeline::{solve_on, SolveOptions, SolveResult};
use crate::wire::Wire;
use congest::{Session, SessionCore, SimConfig, SimError};
use graphs::palette::ListAssignment;
use graphs::Graph;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-request serving policy: how long the serving layer may spend on
/// this request and how often it may retry a failed pass sequence.
/// Policy rides the **request**, not the service configuration — two
/// requests for the same instance with different deadlines are the same
/// memo key (policy never affects the solve's output, only whether the
/// serving layer keeps working on it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestPolicy {
    /// Wall-clock budget measured from submission. `None` = no deadline.
    /// Checked at dequeue and cooperatively at every pass boundary
    /// ([`crate::driver::CancelToken`]); an expired request fails with
    /// [`ServeError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Additional attempts after a failed solve (engine error). `0`
    /// (default) fails fast with [`ServeError::Engine`]; `k > 0` re-runs
    /// **transient** failures ([`SimError::is_transient`], i.e. injected
    /// faults) up to `k` more times — each retry re-salts the request's
    /// [`congest::FaultPlan`] so the dice actually re-roll — and reports
    /// [`ServeError::RetriesExhausted`] if none succeeds. Deterministic
    /// failures (a strict bandwidth cap the protocol genuinely exceeds)
    /// are never retried: they would fail identically every time, so
    /// they fail fast with [`ServeError::Engine`] whatever the limit.
    pub retry_limit: u32,
    /// Chaos instrumentation: make the worker that dequeues this request
    /// **panic** before touching the engine. Exists to test the server's
    /// supervision path (ticket resolved with
    /// [`ServeError::WorkerPanicked`], resident core quarantined, worker
    /// respawned) without a special test build. Like the rest of the
    /// policy it is not part of the memo key — but a chaos request that
    /// joins an in-flight duplicate simply shares that flight's outcome
    /// and never reaches a worker.
    pub chaos_panic: bool,
}

/// One solve request: an instance plus the full option set and the
/// per-request serving policy.
///
/// The graph and lists travel as `Arc`s so a request stream can repeat
/// an instance without copying it — and so the serving layer can
/// recognize repeats *by identity* (pointer equality), which is what
/// keys both the same-graph session rebind and the response memo. Two
/// structurally equal instances behind different `Arc`s are treated as
/// distinct (they solve correctly, just without the reuse fast paths).
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The graph to color.
    pub graph: Arc<Graph>,
    /// The (degree+1)-list assignment.
    pub lists: Arc<ListAssignment>,
    /// Solve options (profile, seed, engine config). Part of the memo
    /// key: equal options on an identical instance determine the result.
    pub options: SolveOptions,
    /// Serving policy (deadline, retry limit). **Not** part of the memo
    /// key.
    policy: RequestPolicy,
}

impl SolveRequest {
    /// Wrap an owned instance into a request.
    #[deprecated(
        since = "0.2.0",
        note = "wrap the instance in `Arc`s once and use `SolveRequest::shared` (or \
                `from_arcs`): the owning form re-allocates fresh `Arc`s every call, so \
                repeated requests are never recognized as identical and every \
                identity-keyed fast path (memo, same-graph rebind, single-flight \
                dedup) is defeated"
    )]
    pub fn new(graph: Graph, lists: ListAssignment, options: SolveOptions) -> Self {
        SolveRequest::from_arcs(Arc::new(graph), Arc::new(lists), options)
    }

    /// A request over an already-shared instance (clones the `Arc`s, not
    /// the data) — how streams express same-instance repeats.
    pub fn shared(graph: &Arc<Graph>, lists: &Arc<ListAssignment>, options: SolveOptions) -> Self {
        SolveRequest::from_arcs(Arc::clone(graph), Arc::clone(lists), options)
    }

    /// A request taking ownership of the shared handles.
    pub fn from_arcs(graph: Arc<Graph>, lists: Arc<ListAssignment>, options: SolveOptions) -> Self {
        SolveRequest {
            graph,
            lists,
            options,
            policy: RequestPolicy::default(),
        }
    }

    /// Give this request a wall-clock deadline, measured from submission
    /// (see [`RequestPolicy::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.policy.deadline = Some(deadline);
        self
    }

    /// Allow up to `retries` additional solve attempts after a failure
    /// (see [`RequestPolicy::retry_limit`]).
    #[must_use]
    pub fn with_retry_limit(mut self, retries: u32) -> Self {
        self.policy.retry_limit = retries;
        self
    }

    /// Make the worker that picks this request up panic (see
    /// [`RequestPolicy::chaos_panic`]) — supervision-test
    /// instrumentation, not a serving feature.
    #[must_use]
    pub fn with_chaos_panic(mut self) -> Self {
        self.policy.chaos_panic = true;
        self
    }

    /// The request's serving policy.
    pub fn policy(&self) -> RequestPolicy {
        self.policy
    }
}

/// What a submitter experiences when the work queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Admission {
    /// Block the submitting thread until a queue slot frees up —
    /// closed-loop callers that prefer latency over errors.
    #[default]
    Block,
    /// Fail fast with [`ServeError::Overloaded`] — open-loop callers
    /// that must never stall the arrival process (load shedding).
    Reject,
}

/// Why a [`ServiceConfig`] could not be built. Construction validates
/// instead of silently clamping: a nonsensical knob is an error at
/// `build()` time, never a quietly different deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: a server with no workers can never complete a
    /// request.
    ZeroWorkers,
    /// `queue == 0`: a zero-depth queue can never admit a request.
    ZeroQueueDepth,
    /// More workers than [`ConfigError::MAX_WORKERS`] — almost certainly
    /// a typo (workers are OS threads each owning an engine core).
    TooManyWorkers {
        /// The requested worker count.
        workers: usize,
    },
}

impl ConfigError {
    /// Upper bound on the worker count a config will accept.
    pub const MAX_WORKERS: usize = 512;
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be >= 1"),
            ConfigError::ZeroQueueDepth => write!(f, "queue depth must be >= 1"),
            ConfigError::TooManyWorkers { workers } => write!(
                f,
                "workers = {workers} exceeds the sanity cap of {}",
                ConfigError::MAX_WORKERS
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Serving-stack tuning knobs, built through [`ServiceConfig::builder`].
///
/// ```
/// use d1lc::service::{Admission, ServiceConfig};
///
/// let config = ServiceConfig::builder()
///     .workers(8)
///     .queue(32)
///     .pool(8)
///     .memo(256)
///     .admission(Admission::Reject)
///     .build()
///     .unwrap();
/// assert_eq!(config.workers(), 8);
/// assert!(ServiceConfig::builder().workers(0).build().is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    workers: usize,
    queue_depth: usize,
    pool_size: usize,
    memo_capacity: usize,
    admission: Admission,
    watchdog: Option<Duration>,
    shed_after: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig::builder().build().expect("default is valid")
    }
}

impl ServiceConfig {
    /// Start building a configuration (see [`ServiceConfigBuilder`]).
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder::default()
    }

    /// The fresh-session-per-solve baseline: no pooling, no memoization —
    /// every request pays exactly what a one-shot [`crate::solve`] pays.
    /// This is the baseline arm of experiments E0c/E0d.
    pub fn fresh_per_solve() -> Self {
        ServiceConfig::builder()
            .pool(0)
            .memo(0)
            .build()
            .expect("preset is valid")
    }

    /// Session pooling only (memoization off) — isolates what warm
    /// engine storage buys on streams with no repeated requests.
    pub fn pooled_only() -> Self {
        ServiceConfig::builder()
            .memo(0)
            .build()
            .expect("preset is valid")
    }

    /// Worker threads draining the queue (each owns a rebindable
    /// [`congest::SessionCore`]).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Bounded work-queue depth (admission control triggers beyond it).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Maximum engine cores kept warm across solves. `0` reproduces the
    /// fresh-session-per-solve baseline.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Whether finished solves keep their session for reuse.
    pub fn reuse_sessions(&self) -> bool {
        self.pool_size > 0
    }

    /// Maximum memoized responses (FIFO eviction). `0` disables both
    /// memoization and single-flight deduplication.
    pub fn memo_capacity(&self) -> usize {
        self.memo_capacity
    }

    /// Behaviour when the queue is full.
    pub fn admission(&self) -> Admission {
        self.admission
    }

    /// Wedged-solve watchdog budget: the longest a single solve may run
    /// after dequeue before the server escalates it (cooperative cancel
    /// at the next pass boundary, surfaced as
    /// [`ServeError::DeadlineExceeded`] with this budget). `None`
    /// (default) = no watchdog thread at all.
    pub fn watchdog(&self) -> Option<Duration> {
        self.watchdog
    }

    /// Graceful-degradation load shedding for [`Admission::Block`]: once
    /// the queue has been continuously full for this long, blocked
    /// submitters stop waiting and fail with [`ServeError::Overloaded`]
    /// (counted in [`crate::server::HealthSnapshot::shed`]). `None`
    /// (default) = block indefinitely. Irrelevant under
    /// [`Admission::Reject`], which sheds instantly.
    pub fn shed_after(&self) -> Option<Duration> {
        self.shed_after
    }
}

/// Builder for [`ServiceConfig`]; `build()` validates every knob.
///
/// Defaults: 1 worker, queue depth 64, pool = worker count, memo
/// capacity 128, [`Admission::Block`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfigBuilder {
    workers: Option<usize>,
    queue_depth: Option<usize>,
    pool: Option<usize>,
    memo: Option<usize>,
    admission: Option<Admission>,
    watchdog: Option<Duration>,
    shed_after: Option<Duration>,
}

impl ServiceConfigBuilder {
    /// Worker threads draining the queue (must be ≥ 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Bounded work-queue depth (must be ≥ 1).
    #[must_use]
    pub fn queue(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self
    }

    /// Maximum warm engine cores (default: the worker count, so every
    /// worker keeps its core; `0` = fresh engine per solve).
    #[must_use]
    pub fn pool(mut self, pool: usize) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Maximum memoized responses (`0` disables memo + single-flight).
    #[must_use]
    pub fn memo(mut self, capacity: usize) -> Self {
        self.memo = Some(capacity);
        self
    }

    /// Behaviour when the queue is full.
    #[must_use]
    pub fn admission(mut self, admission: Admission) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Wedged-solve watchdog budget (see [`ServiceConfig::watchdog`]).
    #[must_use]
    pub fn watchdog(mut self, budget: Duration) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Sustained-overload shedding threshold for blocking admission (see
    /// [`ServiceConfig::shed_after`]).
    #[must_use]
    pub fn shed_after(mut self, after: Duration) -> Self {
        self.shed_after = Some(after);
        self
    }

    /// Validate and assemble the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroWorkers`], [`ConfigError::ZeroQueueDepth`], or
    /// [`ConfigError::TooManyWorkers`] — invalid knobs error instead of
    /// being silently clamped.
    pub fn build(self) -> Result<ServiceConfig, ConfigError> {
        let workers = self.workers.unwrap_or(1);
        if workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if workers > ConfigError::MAX_WORKERS {
            return Err(ConfigError::TooManyWorkers { workers });
        }
        let queue_depth = self.queue_depth.unwrap_or(64);
        if queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        Ok(ServiceConfig {
            workers,
            queue_depth,
            pool_size: self.pool.unwrap_or(workers),
            memo_capacity: self.memo.unwrap_or(128),
            admission: self.admission.unwrap_or_default(),
            watchdog: self.watchdog,
            shed_after: self.shed_after,
        })
    }
}

/// The typed serving-path error. Engine errors stay [`SimError`] inside;
/// everything the *serving layer* adds (admission, deadlines, retries,
/// lifecycle) is its own variant, so callers can branch on the policy
/// outcome without string-matching.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request: the bounded work queue
    /// was full and the service runs [`Admission::Reject`]. The request
    /// was **not** solved; resubmit later or switch to
    /// [`Admission::Block`].
    Overloaded {
        /// The configured queue depth that was exhausted.
        depth: usize,
    },
    /// The request's [`RequestPolicy::deadline`] expired — either while
    /// still queued (checked at dequeue) or cooperatively at a pass
    /// boundary mid-solve ([`SimError::Cancelled`] surfaced as policy).
    DeadlineExceeded {
        /// The deadline the request carried.
        deadline: Duration,
    },
    /// Every allowed attempt failed transiently. `attempts` counts all
    /// of them (first try + retries); `last` is the final engine error.
    RetriesExhausted {
        /// Total solve attempts made (`retry_limit + 1`).
        attempts: u32,
        /// The error of the last attempt.
        last: SimError,
    },
    /// The solve failed with no retry spent on it: either the request
    /// allowed none ([`RequestPolicy::retry_limit`] = 0), or the error
    /// is deterministic (not [`SimError::is_transient`] — e.g. a strict
    /// bandwidth violation) and a retry could never turn out different.
    Engine(SimError),
    /// The worker thread solving this request **panicked**. The
    /// supervisor resolved the ticket (so no waiter hangs), quarantined
    /// the worker's resident engine core, and respawned the worker;
    /// the request itself was not completed. A panic is a bug (or
    /// injected chaos, [`RequestPolicy::chaos_panic`]), not a transient
    /// fault — it is never retried by the server.
    WorkerPanicked {
        /// The index of the worker that died.
        worker: usize,
    },
    /// The server shut down: submitted after close, still queued when
    /// the server was dropped, or cancelled mid-solve by a dropping
    /// server (see `SolveServer::abort`).
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "work queue full (depth {depth}), request rejected")
            }
            ServeError::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline:?} exceeded")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "all {attempts} attempts failed; last: {last}")
            }
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::WorkerPanicked { worker } => {
                write!(f, "worker {worker} panicked while solving this request")
            }
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::RetriesExhausted { last, .. } => Some(last),
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Engine(e)
    }
}

/// Where each served request's answer came from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered (hits + solved).
    pub served: u64,
    /// Requests answered from the response memo.
    pub memo_hits: u64,
    /// Solves that rebound a pooled session to a new graph.
    pub rebinds: u64,
    /// Solves that rebound a pooled session to the *same* graph
    /// (permutation rebuild skipped).
    pub same_graph_rebinds: u64,
    /// Solves that built a session from scratch.
    pub fresh_sessions: u64,
    /// Requests honored through a legacy engine mode (one-shot path,
    /// no session pooling).
    pub legacy_engine_solves: u64,
}

/// Throughput figures for one [`SolveService::solve_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Requests served.
    pub solves: usize,
    /// End-to-end wall time of the batch.
    pub wall: Duration,
    /// `solves / wall` (0 for an empty batch).
    pub solves_per_sec: f64,
    /// Median per-request wall time (nearest rank).
    pub p50: Duration,
    /// 99th-percentile per-request wall time (nearest rank).
    pub p99: Duration,
}

impl Throughput {
    /// Aggregate a batch's per-request wall times.
    fn from_walls(wall: Duration, walls: &[Duration]) -> Self {
        let mut sorted = walls.to_vec();
        sorted.sort_unstable();
        let pct = |p: usize| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            // Nearest-rank percentile: the smallest wall time covering
            // p% of requests.
            let rank = (p * sorted.len()).div_ceil(100).max(1);
            sorted[rank - 1]
        };
        Throughput {
            solves: walls.len(),
            wall,
            solves_per_sec: if wall.is_zero() {
                0.0
            } else {
                walls.len() as f64 / wall.as_secs_f64()
            },
            p50: pct(50),
            p99: pct(99),
        }
    }
}

/// One batch's responses plus its throughput profile.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-request results, in request order. Memo hits share the `Arc`
    /// of the original response.
    pub results: Vec<Arc<SolveResult>>,
    /// Per-request wall times, in request order.
    pub walls: Vec<Duration>,
    /// Aggregate throughput (solves/sec, wall p50/p99).
    pub throughput: Throughput,
}

/// An idle session core plus the identity of the graph it last ran —
/// the unit both the deprecated batched shim and the concurrent server
/// pool and rebind.
pub(crate) struct PooledCore {
    pub(crate) core: SessionCore<Wire>,
    pub(crate) graph: Arc<Graph>,
}

/// Run one solve on an optionally-warm core, returning the outcome plus
/// the (recyclable) core. This is the single solve path shared by the
/// deprecated [`SolveService`] and the [`crate::server`] workers, so the
/// two can never drift: take the best available core for the request's
/// graph, rebind (same-graph fast path when the `Arc` matches), drive
/// the unchanged pipeline, recover the session.
///
/// `cancel` installs a cooperative [`crate::driver::CancelToken`]
/// checked at pass boundaries. Legacy engine modes
/// ([`crate::EngineMode`] other than `Session`) run the engine they ask
/// for and return no core.
///
/// `attempt` is 1-based; retries (`attempt > 1`) re-salt any active
/// [`congest::FaultPlan`] so a transient injected fault rolls fresh dice
/// instead of deterministically re-firing. Attempt 1 runs the request's
/// plan verbatim, so first-try results (the only ones a fault-free
/// request produces) stay byte-identical to one-shot [`crate::solve`]
/// and remain sound to memoize.
///
/// The caller must have validated `req.lists.is_degree_plus_one()`.
pub(crate) fn solve_with_core(
    warm: Option<PooledCore>,
    req: &SolveRequest,
    cancel: Option<crate::driver::CancelToken>,
    attempt: u32,
    stats: &mut CoreUse,
) -> (Result<SolveResult, SimError>, Option<PooledCore>) {
    let mut sim = SimConfig {
        seed: req.options.seed,
        ..req.options.sim
    };
    if attempt > 1 {
        sim.fault = sim.fault.resalted(u64::from(attempt - 1));
    }
    if req.options.engine != crate::EngineMode::Session {
        // A legacy-engine request (benchmarking / differential use): run
        // exactly the engine asked for. Results are byte-identical to
        // the session path by the cross-engine invariant, but the
        // *execution* must be the one requested.
        stats.legacy += 1;
        let mut driver = Driver::with_engine(&req.graph, sim, req.options.engine);
        if let Some(token) = cancel {
            driver.set_cancel(token);
        }
        let outcome = solve_on(&mut driver, &req.graph, &req.lists, &req.options);
        return (outcome, warm);
    }
    let session: Session<'_, Wire> = match warm {
        Some(pooled) if Arc::ptr_eq(&pooled.graph, &req.graph) => {
            stats.same_graph_rebinds += 1;
            pooled.core.bind_same_graph(&req.graph, sim)
        }
        Some(pooled) => {
            stats.rebinds += 1;
            pooled.core.bind(&req.graph, sim)
        }
        None => {
            stats.fresh += 1;
            Session::new(&req.graph, sim)
        }
    };
    let mut driver = Driver::from_session(session);
    if let Some(token) = cancel {
        driver.set_cancel(token);
    }
    let outcome = solve_on(&mut driver, &req.graph, &req.lists, &req.options);
    let recovered = driver.into_session().map(|session| PooledCore {
        core: session.unbind(),
        graph: Arc::clone(&req.graph),
    });
    (outcome, recovered)
}

/// Session-provenance counters one [`solve_with_core`] call bumps.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CoreUse {
    pub(crate) fresh: u64,
    pub(crate) rebinds: u64,
    pub(crate) same_graph_rebinds: u64,
    pub(crate) legacy: u64,
}

/// A memoized response. Holding the `Arc`s pins the graph/list
/// allocations, so the pointer keys can never be recycled to a different
/// live instance while the entry exists.
struct MemoEntry {
    graph: Arc<Graph>,
    lists: Arc<ListAssignment>,
    options: SolveOptions,
    result: Arc<SolveResult>,
}

/// A batched, single-caller solve service over pooled engine sessions.
///
/// Responses are byte-identical to one-shot [`crate::solve`] calls with
/// the same request, regardless of batch order, pool size, or
/// session-reuse history.
#[deprecated(
    since = "0.2.0",
    note = "use `d1lc::server::SolveServer`: `ServerHandle::submit` / `Ticket::wait` \
            serve concurrent request streams with admission control and deadlines, and \
            `ServerHandle::solve` is the drop-in replacement for one-at-a-time calls"
)]
pub struct SolveService {
    config: ServiceConfig,
    pool: Vec<PooledCore>,
    memo: VecDeque<MemoEntry>,
    stats: ServiceStats,
}

#[allow(deprecated)]
impl SolveService {
    /// A service with the given configuration. The `workers`, `queue`,
    /// and `admission` knobs are server-only and ignored here.
    pub fn new(config: ServiceConfig) -> Self {
        SolveService {
            config,
            pool: Vec::new(),
            memo: VecDeque::new(),
            stats: ServiceStats::default(),
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Idle sessions currently pooled.
    pub fn pooled_sessions(&self) -> usize {
        self.pool.len()
    }

    /// Serve one request: memo lookup, then a solve on a pooled (or
    /// fresh) session.
    ///
    /// # Errors
    ///
    /// Engine errors (possible only under a strict bandwidth policy)
    /// propagate; the session is still recycled into the pool — an
    /// aborted pass leaves it reusable.
    ///
    /// # Panics
    ///
    /// Panics if the request's lists are not a valid (degree+1)-list
    /// assignment for its graph, exactly as [`crate::solve`] does.
    pub fn solve(&mut self, req: &SolveRequest) -> Result<Arc<SolveResult>, SimError> {
        self.stats.served += 1;
        if let Some(hit) = self.memo_lookup(req) {
            self.stats.memo_hits += 1;
            return Ok(hit);
        }
        assert!(
            req.lists.is_degree_plus_one(&req.graph),
            "lists must give every node ≥ deg+1 colors"
        );
        let warm = self.take_core(&req.graph);
        let mut use_stats = CoreUse::default();
        let (outcome, recovered) = solve_with_core(warm, req, None, 1, &mut use_stats);
        self.stats.fresh_sessions += use_stats.fresh;
        self.stats.rebinds += use_stats.rebinds;
        self.stats.same_graph_rebinds += use_stats.same_graph_rebinds;
        self.stats.legacy_engine_solves += use_stats.legacy;
        if let Some(pooled) = recovered {
            if self.config.reuse_sessions() && self.pool.len() < self.config.pool_size() {
                self.pool.push(pooled);
            }
        }
        let result = Arc::new(outcome?);
        self.memo_insert(req, &result);
        Ok(result)
    }

    /// Serve a batch in order, timing each request, and aggregate the
    /// throughput profile.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first engine error.
    pub fn solve_batch(&mut self, requests: &[SolveRequest]) -> Result<BatchOutcome, SimError> {
        let start = Instant::now();
        let mut results = Vec::with_capacity(requests.len());
        let mut walls = Vec::with_capacity(requests.len());
        for req in requests {
            let t = Instant::now();
            results.push(self.solve(req)?);
            walls.push(t.elapsed());
        }
        let wall = start.elapsed();
        Ok(BatchOutcome {
            throughput: Throughput::from_walls(wall, &walls),
            results,
            walls,
        })
    }

    /// Take the pooled core best suited for `graph`: one that last ran
    /// this exact graph if available (same-graph rebind fast path), else
    /// the most recently parked one.
    fn take_core(&mut self, graph: &Arc<Graph>) -> Option<PooledCore> {
        if let Some(i) = self.pool.iter().position(|p| Arc::ptr_eq(&p.graph, graph)) {
            return Some(self.pool.remove(i));
        }
        self.pool.pop()
    }

    fn memo_lookup(&self, req: &SolveRequest) -> Option<Arc<SolveResult>> {
        self.memo
            .iter()
            .find(|e| {
                Arc::ptr_eq(&e.graph, &req.graph)
                    && Arc::ptr_eq(&e.lists, &req.lists)
                    && e.options == req.options
            })
            .map(|e| Arc::clone(&e.result))
    }

    fn memo_insert(&mut self, req: &SolveRequest, result: &Arc<SolveResult>) {
        if self.config.memo_capacity() == 0 {
            return;
        }
        if self.memo.len() >= self.config.memo_capacity() {
            self.memo.pop_front();
        }
        self.memo.push_back(MemoEntry {
            graph: Arc::clone(&req.graph),
            lists: Arc::clone(&req.lists),
            options: req.options,
            result: Arc::clone(result),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;
    use graphs::palette::random_lists;

    fn instance(n: usize, seed: u64) -> (Arc<Graph>, Arc<ListAssignment>) {
        let graph = gen::gnp(n, 0.08, seed);
        let lists = random_lists(&graph, 32, 0, seed ^ 0x55);
        (Arc::new(graph), Arc::new(lists))
    }

    #[test]
    fn builder_defaults_and_presets() {
        let d = ServiceConfig::default();
        assert_eq!(
            (
                d.workers(),
                d.queue_depth(),
                d.pool_size(),
                d.memo_capacity()
            ),
            (1, 64, 1, 128)
        );
        assert_eq!(d.admission(), Admission::Block);
        // pool defaults to the worker count.
        let eight = ServiceConfig::builder().workers(8).build().unwrap();
        assert_eq!(eight.pool_size(), 8);
        // Presets.
        let fresh = ServiceConfig::fresh_per_solve();
        assert!(!fresh.reuse_sessions());
        assert_eq!(fresh.memo_capacity(), 0);
        let pooled = ServiceConfig::pooled_only();
        assert!(pooled.reuse_sessions());
        assert_eq!(pooled.memo_capacity(), 0);
    }

    #[test]
    fn builder_validates_instead_of_clamping() {
        assert_eq!(
            ServiceConfig::builder().workers(0).build(),
            Err(ConfigError::ZeroWorkers)
        );
        assert_eq!(
            ServiceConfig::builder().queue(0).build(),
            Err(ConfigError::ZeroQueueDepth)
        );
        assert_eq!(
            ServiceConfig::builder().workers(100_000).build(),
            Err(ConfigError::TooManyWorkers { workers: 100_000 })
        );
        // Errors display actionable text and implement std::error::Error.
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroWorkers);
        assert!(err.to_string().contains(">= 1"));
    }

    #[test]
    fn request_policy_rides_the_request() {
        let (g, lists) = instance(20, 1);
        let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(1))
            .with_deadline(Duration::from_millis(250))
            .with_retry_limit(3);
        assert_eq!(req.policy().deadline, Some(Duration::from_millis(250)));
        assert_eq!(req.policy().retry_limit, 3);
        // The default policy is unconstrained.
        let plain = SolveRequest::shared(&g, &lists, SolveOptions::seeded(1));
        assert_eq!(plain.policy(), RequestPolicy::default());
    }

    #[test]
    fn serve_error_display_and_source() {
        let sim = SimError::BandwidthExceeded {
            from: 1,
            to: 2,
            bits: 99,
            limit: 32,
            round: 7,
        };
        let e = ServeError::RetriesExhausted {
            attempts: 3,
            last: sim.clone(),
        };
        assert!(e.to_string().contains("3 attempts"));
        use std::error::Error as _;
        assert!(e.source().is_some());
        assert_eq!(ServeError::from(sim.clone()), ServeError::Engine(sim));
        assert!(ServeError::Overloaded { depth: 4 }
            .to_string()
            .contains("4"));
        assert!(ServeError::DeadlineExceeded {
            deadline: Duration::from_millis(5)
        }
        .source()
        .is_none());
    }

    /// The deprecated batched shim still serves correctly (compat cover;
    /// the concurrent server carries the real test load).
    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_serves_and_memoizes() {
        let (g, lists) = instance(50, 3);
        let mut service = SolveService::new(ServiceConfig::default());
        let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(9));
        let first = service.solve(&req).expect("miss");
        let second = service.solve(&req).expect("hit");
        assert!(Arc::ptr_eq(&first, &second), "hit shares the response");
        assert_eq!(service.stats().memo_hits, 1);
        let direct = crate::solve(&g, &lists, SolveOptions::seeded(9)).expect("one-shot");
        assert_eq!(first.coloring, direct.coloring);
        assert_eq!(first.log.passes(), direct.log.passes());
        let batch = service
            .solve_batch(&[req.clone(), req])
            .expect("batch serves");
        assert_eq!(batch.results.len(), 2);
        assert!(batch.throughput.p50 <= batch.throughput.p99);
    }

    /// Nearest-rank percentiles on a known distribution.
    #[test]
    fn throughput_percentiles_nearest_rank() {
        let walls: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let t = Throughput::from_walls(Duration::from_secs(10), &walls);
        assert_eq!(t.p50, Duration::from_millis(50));
        assert_eq!(t.p99, Duration::from_millis(99));
        assert_eq!(t.solves, 100);
        assert!((t.solves_per_sec - 10.0).abs() < 1e-9);
        let empty = Throughput::from_walls(Duration::ZERO, &[]);
        assert_eq!(empty.p50, Duration::ZERO);
        assert_eq!(empty.solves_per_sec, 0.0);
    }
}
