//! Throughput-mode solving: a batched [`SolveService`] over pooled,
//! rebindable engine sessions.
//!
//! One-shot [`crate::solve`] builds a fresh engine — mailbox plane,
//! dirty board, RNG/inbox vectors, scheduler scratch, worker pool — for
//! every call. A service that fields a *stream* of solve requests can do
//! better, and because the solver is **deterministic** (the repo's core
//! invariant: the result is a pure function of `(graph, lists,
//! options)`), it can do so without changing a single byte of any
//! response:
//!
//! * **Session pooling** — finished solves return their
//!   [`congest::SessionCore`] (allocations + parked worker pool + epoch
//!   counter) to a bounded pool; the next request rebinds a pooled core
//!   to its graph instead of building a fresh engine. With the default
//!   `pool_size = 1` every solve in the stream runs on **one shared
//!   persistent worker pool**. When a request's graph is *identical* (the
//!   same `Arc<Graph>`) to the one a pooled core last ran, the rebind
//!   also skips rebuilding the reverse-CSR permutation
//!   ([`congest::SessionCore::bind_same_graph`]).
//! * **Response memoization** — requests are keyed by graph and list
//!   *identity* (`Arc` pointer) plus full [`SolveOptions`] equality; a
//!   repeated request is answered with the cached [`SolveResult`]
//!   (shared via `Arc`, bounded FIFO). Memoizing a pure function is
//!   sound by construction: the hit returns the byte-identical result
//!   the solver would recompute.
//!
//! Honest accounting (measured by experiment `E0c`, committed full-scale
//! snapshot `BENCH_5.json`): engine construction is a small fraction of
//! a solve (the distributed passes dominate), so on streams of all-new
//! requests session pooling buys only the setup constant. The large
//! throughput wins come from memoization on repeat-heavy serving mixes —
//! [`ServiceStats`] splits hits from solved misses so the two effects
//! are never conflated.
//!
//! # Example
//!
//! ```
//! use d1lc::service::{ServiceConfig, SolveRequest, SolveService};
//! use d1lc::SolveOptions;
//!
//! let graph = graphs::gen::gnp(60, 0.1, 7);
//! let lists = graphs::palette::degree_plus_one_lists(&graph);
//! let mut service = SolveService::new(ServiceConfig::default());
//! // A serving stream: the same instance, re-requested.
//! let req = SolveRequest::new(graph, lists, SolveOptions::seeded(1));
//! let batch = service
//!     .solve_batch(&[req.clone(), req.clone(), req])
//!     .unwrap();
//! assert_eq!(batch.results.len(), 3);
//! assert_eq!(service.stats().memo_hits, 2);
//! assert!(batch.throughput.solves_per_sec > 0.0);
//! ```

use crate::driver::Driver;
use crate::pipeline::{solve_on, SolveOptions, SolveResult};
use crate::wire::Wire;
use congest::{Session, SessionCore, SimConfig, SimError};
use graphs::palette::ListAssignment;
use graphs::Graph;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One solve request: an instance plus the full option set.
///
/// The graph and lists travel as `Arc`s so a request stream can repeat
/// an instance without copying it — and so the service can recognize
/// repeats *by identity* (pointer equality), which is what keys both the
/// same-graph session rebind and the response memo. Two structurally
/// equal instances behind different `Arc`s are treated as distinct (they
/// solve correctly, just without the reuse fast paths).
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// The graph to color.
    pub graph: Arc<Graph>,
    /// The (degree+1)-list assignment.
    pub lists: Arc<ListAssignment>,
    /// Solve options (profile, seed, engine config).
    pub options: SolveOptions,
}

impl SolveRequest {
    /// Wrap an owned instance into a request.
    pub fn new(graph: Graph, lists: ListAssignment, options: SolveOptions) -> Self {
        SolveRequest {
            graph: Arc::new(graph),
            lists: Arc::new(lists),
            options,
        }
    }

    /// A request over an already-shared instance (clones the `Arc`s, not
    /// the data) — how streams express same-topology repeats.
    pub fn shared(graph: &Arc<Graph>, lists: &Arc<ListAssignment>, options: SolveOptions) -> Self {
        SolveRequest {
            graph: Arc::clone(graph),
            lists: Arc::clone(lists),
            options,
        }
    }
}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum idle [`SessionCore`]s kept for reuse. `0` (or
    /// `reuse_sessions = false`) reproduces the fresh-session-per-solve
    /// baseline.
    pub pool_size: usize,
    /// Whether finished solves return their session to the pool.
    pub reuse_sessions: bool,
    /// Maximum memoized responses (FIFO eviction). `0` disables
    /// memoization.
    pub memo_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool_size: 1,
            reuse_sessions: true,
            memo_capacity: 128,
        }
    }
}

impl ServiceConfig {
    /// The fresh-session-per-solve baseline: no pooling, no memoization —
    /// every request pays exactly what a one-shot [`crate::solve`] pays.
    /// This is the E0c baseline arm.
    pub fn fresh_per_solve() -> Self {
        ServiceConfig {
            pool_size: 0,
            reuse_sessions: false,
            memo_capacity: 0,
        }
    }

    /// Session pooling only (memoization off) — isolates what warm
    /// engine storage buys on streams with no repeated requests.
    pub fn pooled_only() -> Self {
        ServiceConfig {
            memo_capacity: 0,
            ..ServiceConfig::default()
        }
    }
}

/// Where each served request's answer came from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered (hits + solved).
    pub served: u64,
    /// Requests answered from the response memo.
    pub memo_hits: u64,
    /// Solves that rebound a pooled session to a new graph.
    pub rebinds: u64,
    /// Solves that rebound a pooled session to the *same* graph
    /// (permutation rebuild skipped).
    pub same_graph_rebinds: u64,
    /// Solves that built a session from scratch.
    pub fresh_sessions: u64,
    /// Requests honored through a legacy engine mode (one-shot path,
    /// no session pooling).
    pub legacy_engine_solves: u64,
}

/// Throughput figures for one [`SolveService::solve_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Requests served.
    pub solves: usize,
    /// End-to-end wall time of the batch.
    pub wall: Duration,
    /// `solves / wall` (0 for an empty batch).
    pub solves_per_sec: f64,
    /// Median per-request wall time (nearest rank).
    pub p50: Duration,
    /// 99th-percentile per-request wall time (nearest rank).
    pub p99: Duration,
}

impl Throughput {
    /// Aggregate a batch's per-request wall times.
    fn from_walls(wall: Duration, walls: &[Duration]) -> Self {
        let mut sorted = walls.to_vec();
        sorted.sort_unstable();
        let pct = |p: usize| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            // Nearest-rank percentile: the smallest wall time covering
            // p% of requests.
            let rank = (p * sorted.len()).div_ceil(100).max(1);
            sorted[rank - 1]
        };
        Throughput {
            solves: walls.len(),
            wall,
            solves_per_sec: if wall.is_zero() {
                0.0
            } else {
                walls.len() as f64 / wall.as_secs_f64()
            },
            p50: pct(50),
            p99: pct(99),
        }
    }
}

/// One batch's responses plus its throughput profile.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Per-request results, in request order. Memo hits share the `Arc`
    /// of the original response.
    pub results: Vec<Arc<SolveResult>>,
    /// Per-request wall times, in request order.
    pub walls: Vec<Duration>,
    /// Aggregate throughput (solves/sec, wall p50/p99).
    pub throughput: Throughput,
}

/// An idle session core plus the identity of the graph it last ran.
struct PooledCore {
    core: SessionCore<Wire>,
    graph: Arc<Graph>,
}

/// A memoized response. Holding the `Arc`s pins the graph/list
/// allocations, so the pointer keys can never be recycled to a different
/// live instance while the entry exists.
struct MemoEntry {
    graph: Arc<Graph>,
    lists: Arc<ListAssignment>,
    options: SolveOptions,
    result: Arc<SolveResult>,
}

/// A batched solve service over pooled engine sessions (module docs).
///
/// Responses are byte-identical to one-shot [`crate::solve`] calls with
/// the same request, regardless of batch order, pool size, or
/// session-reuse history (differentially tested in
/// `tests/prop_invariants.rs`).
pub struct SolveService {
    config: ServiceConfig,
    pool: Vec<PooledCore>,
    memo: VecDeque<MemoEntry>,
    stats: ServiceStats,
}

impl SolveService {
    /// A service with the given configuration.
    pub fn new(config: ServiceConfig) -> Self {
        SolveService {
            config,
            pool: Vec::new(),
            memo: VecDeque::new(),
            stats: ServiceStats::default(),
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Idle sessions currently pooled.
    pub fn pooled_sessions(&self) -> usize {
        self.pool.len()
    }

    /// Serve one request: memo lookup, then a solve on a pooled (or
    /// fresh) session.
    ///
    /// Requests asking for a legacy engine (`options.engine` other than
    /// [`crate::EngineMode::Session`]) are honored through the one-shot
    /// [`crate::solve`] path — the legacy modes own no session to pool —
    /// and still memoized.
    ///
    /// # Errors
    ///
    /// Engine errors (possible only under a strict bandwidth policy)
    /// propagate; the session is still recycled into the pool — an
    /// aborted pass leaves it reusable.
    ///
    /// # Panics
    ///
    /// Panics if the request's lists are not a valid (degree+1)-list
    /// assignment for its graph, exactly as [`crate::solve`] does.
    pub fn solve(&mut self, req: &SolveRequest) -> Result<Arc<SolveResult>, SimError> {
        self.stats.served += 1;
        if let Some(hit) = self.memo_lookup(req) {
            self.stats.memo_hits += 1;
            return Ok(hit);
        }
        if req.options.engine != crate::EngineMode::Session {
            // A legacy-engine request (benchmarking / differential use):
            // run exactly the engine asked for. Results are byte-identical
            // to the session path by the cross-engine invariant, but the
            // *execution* must be the one requested.
            self.stats.legacy_engine_solves += 1;
            let result = Arc::new(crate::solve(&req.graph, &req.lists, req.options)?);
            self.memo_insert(req, &result);
            return Ok(result);
        }
        assert!(
            req.lists.is_degree_plus_one(&req.graph),
            "lists must give every node ≥ deg+1 colors"
        );
        let sim = SimConfig {
            seed: req.options.seed,
            ..req.options.sim
        };
        let session: Session<'_, Wire> = match self.take_core(&req.graph) {
            Some(pooled) if Arc::ptr_eq(&pooled.graph, &req.graph) => {
                self.stats.same_graph_rebinds += 1;
                pooled.core.bind_same_graph(&req.graph, sim)
            }
            Some(pooled) => {
                self.stats.rebinds += 1;
                pooled.core.bind(&req.graph, sim)
            }
            None => {
                self.stats.fresh_sessions += 1;
                Session::new(&req.graph, sim)
            }
        };
        let mut driver = Driver::from_session(session);
        let outcome = solve_on(&mut driver, &req.graph, &req.lists, &req.options);
        if self.config.reuse_sessions && self.pool.len() < self.config.pool_size {
            if let Some(session) = driver.into_session() {
                self.pool.push(PooledCore {
                    core: session.unbind(),
                    graph: Arc::clone(&req.graph),
                });
            }
        }
        let result = Arc::new(outcome?);
        self.memo_insert(req, &result);
        Ok(result)
    }

    /// Serve a batch in order, timing each request, and aggregate the
    /// throughput profile.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first engine error.
    pub fn solve_batch(&mut self, requests: &[SolveRequest]) -> Result<BatchOutcome, SimError> {
        let start = Instant::now();
        let mut results = Vec::with_capacity(requests.len());
        let mut walls = Vec::with_capacity(requests.len());
        for req in requests {
            let t = Instant::now();
            results.push(self.solve(req)?);
            walls.push(t.elapsed());
        }
        let wall = start.elapsed();
        Ok(BatchOutcome {
            throughput: Throughput::from_walls(wall, &walls),
            results,
            walls,
        })
    }

    /// Take the pooled core best suited for `graph`: one that last ran
    /// this exact graph if available (same-graph rebind fast path), else
    /// the most recently parked one.
    fn take_core(&mut self, graph: &Arc<Graph>) -> Option<PooledCore> {
        if let Some(i) = self.pool.iter().position(|p| Arc::ptr_eq(&p.graph, graph)) {
            return Some(self.pool.remove(i));
        }
        self.pool.pop()
    }

    fn memo_lookup(&self, req: &SolveRequest) -> Option<Arc<SolveResult>> {
        self.memo
            .iter()
            .find(|e| {
                Arc::ptr_eq(&e.graph, &req.graph)
                    && Arc::ptr_eq(&e.lists, &req.lists)
                    && e.options == req.options
            })
            .map(|e| Arc::clone(&e.result))
    }

    fn memo_insert(&mut self, req: &SolveRequest, result: &Arc<SolveResult>) {
        if self.config.memo_capacity == 0 {
            return;
        }
        if self.memo.len() >= self.config.memo_capacity {
            self.memo.pop_front();
        }
        self.memo.push_back(MemoEntry {
            graph: Arc::clone(&req.graph),
            lists: Arc::clone(&req.lists),
            options: req.options,
            result: Arc::clone(result),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve;
    use graphs::gen;
    use graphs::palette::{check_coloring, degree_plus_one_lists, random_lists};

    fn instance(n: usize, seed: u64) -> (Arc<Graph>, Arc<ListAssignment>) {
        let graph = gen::gnp(n, 0.08, seed);
        let lists = random_lists(&graph, 32, 0, seed ^ 0x55);
        (Arc::new(graph), Arc::new(lists))
    }

    /// Every service response equals the one-shot solve, across pooled
    /// rebinds over different graphs.
    #[test]
    fn service_matches_one_shot_solves() {
        let mut service = SolveService::new(ServiceConfig::default());
        let instances: Vec<_> = (0..3).map(|i| instance(40 + 20 * i, i as u64)).collect();
        for round in 0..2u64 {
            for (g, lists) in &instances {
                let opts = SolveOptions::seeded(round);
                let req = SolveRequest::shared(g, lists, opts);
                let served = service.solve(&req).expect("service solve");
                let direct = solve(g, lists, opts).expect("one-shot solve");
                assert_eq!(served.coloring, direct.coloring);
                assert_eq!(served.log.passes(), direct.log.passes());
                assert_eq!(check_coloring(g, lists, &served.coloring), Ok(()));
            }
        }
        let stats = service.stats();
        assert_eq!(stats.served, 6);
        assert_eq!(stats.memo_hits, 0, "all requests distinct");
        assert_eq!(stats.fresh_sessions, 1, "one cold start only");
        assert_eq!(stats.rebinds + stats.same_graph_rebinds, 5);
    }

    /// Duplicate requests are served from the memo as the *same* Arc.
    #[test]
    fn duplicate_requests_hit_the_memo() {
        let (g, lists) = instance(50, 3);
        let mut service = SolveService::new(ServiceConfig::default());
        let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(9));
        let first = service.solve(&req).expect("miss");
        let second = service.solve(&req).expect("hit");
        assert!(Arc::ptr_eq(&first, &second), "hit shares the response");
        assert_eq!(service.stats().memo_hits, 1);
        // A different seed is a different request.
        let other = SolveRequest::shared(&g, &lists, SolveOptions::seeded(10));
        let third = service.solve(&other).expect("different seed");
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(service.stats().memo_hits, 1);
    }

    /// The memo is FIFO-bounded and disabled at capacity 0.
    #[test]
    fn memo_respects_capacity() {
        let (g, lists) = instance(40, 1);
        let mut service = SolveService::new(ServiceConfig {
            memo_capacity: 2,
            ..ServiceConfig::default()
        });
        let req = |seed| SolveRequest::shared(&g, &lists, SolveOptions::seeded(seed));
        for seed in 0..3 {
            service.solve(&req(seed)).expect("solve");
        }
        // Seed 0 was evicted; seeds 1 and 2 still hit.
        service.solve(&req(1)).expect("hit 1");
        service.solve(&req(2)).expect("hit 2");
        service.solve(&req(0)).expect("evicted -> resolve");
        assert_eq!(service.stats().memo_hits, 2);

        let mut off = SolveService::new(ServiceConfig {
            memo_capacity: 0,
            ..ServiceConfig::default()
        });
        off.solve(&req(0)).expect("solve");
        off.solve(&req(0)).expect("resolve");
        assert_eq!(off.stats().memo_hits, 0);
    }

    /// The fresh-per-solve baseline never pools or memoizes.
    #[test]
    fn fresh_baseline_builds_every_session() {
        let (g, lists) = instance(40, 2);
        let mut service = SolveService::new(ServiceConfig::fresh_per_solve());
        let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(4));
        for _ in 0..3 {
            service.solve(&req).expect("solve");
        }
        let stats = service.stats();
        assert_eq!(stats.fresh_sessions, 3);
        assert_eq!(stats.memo_hits, 0);
        assert_eq!(service.pooled_sessions(), 0);
    }

    /// Same-graph repeats take the permutation-reusing rebind fast path.
    #[test]
    fn same_graph_repeats_use_fast_rebind() {
        let (g, lists) = instance(60, 5);
        let mut service = SolveService::new(ServiceConfig::pooled_only());
        for seed in 0..4 {
            let req = SolveRequest::shared(&g, &lists, SolveOptions::seeded(seed));
            service.solve(&req).expect("solve");
        }
        let stats = service.stats();
        assert_eq!(stats.fresh_sessions, 1);
        assert_eq!(stats.same_graph_rebinds, 3);
        assert_eq!(stats.rebinds, 0);
    }

    /// Batch serving reports ordered results and a throughput profile.
    #[test]
    fn batch_reports_throughput() {
        let (g, lists) = instance(40, 7);
        let (g2, lists2) = instance(60, 8);
        let mut service = SolveService::new(ServiceConfig::default());
        let reqs = vec![
            SolveRequest::shared(&g, &lists, SolveOptions::seeded(1)),
            SolveRequest::shared(&g2, &lists2, SolveOptions::seeded(1)),
            SolveRequest::shared(&g, &lists, SolveOptions::seeded(1)),
        ];
        let batch = service.solve_batch(&reqs).expect("batch");
        assert_eq!(batch.results.len(), 3);
        assert_eq!(batch.walls.len(), 3);
        assert!(Arc::ptr_eq(&batch.results[0], &batch.results[2]));
        assert_eq!(batch.throughput.solves, 3);
        assert!(batch.throughput.solves_per_sec > 0.0);
        assert!(batch.throughput.p50 <= batch.throughput.p99);
        assert!(batch.throughput.p99 <= batch.throughput.wall);
    }

    /// An engine error propagates but leaves the service (and its pooled
    /// session) serviceable.
    #[test]
    fn engine_error_leaves_service_usable() {
        let graph = Arc::new(gen::complete(8));
        let lists = Arc::new(degree_plus_one_lists(&graph));
        let mut service = SolveService::new(ServiceConfig::default());
        let strict = SolveOptions {
            sim: SimConfig {
                bandwidth: congest::Bandwidth::Strict(8),
                ..SimConfig::default()
            },
            ..SolveOptions::seeded(3)
        };
        let err = service
            .solve(&SolveRequest::shared(&graph, &lists, strict))
            .expect_err("8-bit cap must abort");
        assert!(matches!(err, SimError::BandwidthExceeded { .. }));
        assert_eq!(service.pooled_sessions(), 1, "session recycled on error");
        let ok = service
            .solve(&SolveRequest::shared(
                &graph,
                &lists,
                SolveOptions::seeded(3),
            ))
            .expect("tracking-mode solve succeeds");
        assert_eq!(check_coloring(&graph, &lists, &ok.coloring), Ok(()));
        assert_eq!(service.stats().same_graph_rebinds, 1);
    }

    /// A legacy-engine request runs the engine it asked for (counted
    /// separately, no session pooled) and matches the session path.
    #[test]
    fn legacy_engine_requests_are_honored() {
        let (g, lists) = instance(50, 6);
        let mut service = SolveService::new(ServiceConfig::default());
        let legacy = SolveOptions {
            engine: crate::EngineMode::PerPass,
            ..SolveOptions::seeded(2)
        };
        let served_legacy = service
            .solve(&SolveRequest::shared(&g, &lists, legacy))
            .expect("legacy solve");
        assert_eq!(service.stats().legacy_engine_solves, 1);
        assert_eq!(service.pooled_sessions(), 0, "no session to pool");
        let served_session = service
            .solve(&SolveRequest::shared(&g, &lists, SolveOptions::seeded(2)))
            .expect("session solve");
        assert_eq!(served_legacy.coloring, served_session.coloring);
        assert_eq!(served_legacy.log.passes(), served_session.log.passes());
        assert!(
            !Arc::ptr_eq(&served_legacy, &served_session),
            "different engine field => different memo key"
        );
        // The legacy response was memoized too.
        service
            .solve(&SolveRequest::shared(&g, &lists, legacy))
            .expect("hit");
        assert_eq!(service.stats().memo_hits, 1);
    }

    /// Nearest-rank percentiles on a known distribution.
    #[test]
    fn throughput_percentiles_nearest_rank() {
        let walls: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let t = Throughput::from_walls(Duration::from_secs(10), &walls);
        assert_eq!(t.p50, Duration::from_millis(50));
        assert_eq!(t.p99, Duration::from_millis(99));
        assert_eq!(t.solves, 100);
        assert!((t.solves_per_sec - 10.0).abs() < 1e-9);
        let empty = Throughput::from_walls(Duration::ZERO, &[]);
        assert_eq!(empty.p50, Duration::ZERO);
        assert_eq!(empty.solves_per_sec, 0.0);
    }
}
