//! A node's color palette `Ψ_v`: its list minus the colors adopted by
//! neighbors.

use graphs::Color;
use prand::ColorHash;

/// A palette: the remaining candidate colors of one node, kept sorted.
///
/// Removal by *hash* implements Appendix D.3: neighbors announce adopted
/// colors as `h_v(ψ)` images under this node's universal hash, and the
/// node removes every palette color with a matching image (exactly the
/// true color w.h.p.).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Palette {
    colors: Vec<Color>,
    original: Vec<Color>,
}

impl Palette {
    /// A palette initialized to `list` (sorted, deduplicated).
    pub fn new(mut list: Vec<Color>) -> Self {
        list.sort_unstable();
        list.dedup();
        Palette {
            colors: list.clone(),
            original: list,
        }
    }

    /// Remaining colors, sorted.
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// The original list (used for chromatic-slack counting, which is
    /// defined against `Ψ_v` at phase start).
    pub fn original(&self) -> &[Color] {
        &self.original
    }

    /// Number of remaining colors.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether no colors remain.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Whether `c` is still available.
    pub fn contains(&self, c: Color) -> bool {
        self.colors.binary_search(&c).is_ok()
    }

    /// Remove an exact color (a neighbor adopted it). Returns whether it
    /// was present.
    pub fn remove(&mut self, c: Color) -> bool {
        match self.colors.binary_search(&c) {
            Ok(i) => {
                self.colors.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Remove every color whose image under `h` equals `image` (App. D.3
    /// hashed announcement). Returns how many colors were removed (w.h.p.
    /// 0 or 1).
    pub fn remove_by_hash(&mut self, h: &ColorHash, image: u64) -> usize {
        let before = self.colors.len();
        self.colors.retain(|&c| h.hash(c) != image);
        before - self.colors.len()
    }

    /// First color whose image under `h` equals `image`, if any (used by
    /// inliers decoding a leader's color assignment).
    pub fn first_matching_hash(&self, h: &ColorHash, image: u64) -> Option<Color> {
        self.colors.iter().copied().find(|&c| h.hash(c) == image)
    }

    /// Whether the *original* list contains a color with the given image
    /// (chromatic-slack test: did the neighbor adopt outside my list?).
    pub fn original_has_hash(&self, h: &ColorHash, image: u64) -> bool {
        self.original.iter().any(|&c| h.hash(c) == image)
    }
}

impl FromIterator<Color> for Palette {
    fn from_iter<T: IntoIterator<Item = Color>>(iter: T) -> Self {
        Palette::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prand::ColorHashFamily;

    #[test]
    fn construction_sorts_and_dedups() {
        let p = Palette::new(vec![5, 1, 3, 1]);
        assert_eq!(p.colors(), &[1, 3, 5]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn exact_removal() {
        let mut p = Palette::new(vec![1, 2, 3]);
        assert!(p.remove(2));
        assert!(!p.remove(2));
        assert_eq!(p.colors(), &[1, 3]);
        assert!(p.contains(1) && !p.contains(2));
    }

    #[test]
    fn original_is_preserved() {
        let mut p = Palette::new(vec![1, 2, 3]);
        p.remove(1);
        assert_eq!(p.original(), &[1, 2, 3]);
    }

    #[test]
    fn hash_removal_removes_the_announced_color() {
        let fam = ColorHashFamily::for_graph(1000, 6, 3);
        let h = fam.member(5);
        let mut p = Palette::new((0..50).collect());
        let removed = p.remove_by_hash(&h, h.hash(17));
        assert!(removed >= 1);
        assert!(!p.contains(17));
        // W.h.p. exactly one color was removed.
        assert_eq!(p.len(), 49, "collision removed extra colors");
    }

    #[test]
    fn hash_lookup_finds_assigned_color() {
        let fam = ColorHashFamily::for_graph(1000, 6, 9);
        let h = fam.member(2);
        let p = Palette::new(vec![100, 200, 300]);
        assert_eq!(p.first_matching_hash(&h, h.hash(200)), Some(200));
        assert!(p.original_has_hash(&h, h.hash(300)));
    }

    #[test]
    fn from_iterator() {
        let p: Palette = [3u64, 1, 2].into_iter().collect();
        assert_eq!(p.colors(), &[1, 2, 3]);
    }
}
