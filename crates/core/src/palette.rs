//! A node's color palette `Ψ_v`: its list minus the colors adopted by
//! neighbors.

use graphs::Color;
use prand::ColorHash;

/// A palette: the remaining candidate colors of one node, kept sorted.
///
/// Removal by *hash* implements Appendix D.3: neighbors announce adopted
/// colors as `h_v(ψ)` images under this node's universal hash, and the
/// node removes every palette color with a matching image (exactly the
/// true color w.h.p.).
///
/// The original list is kept **copy-on-write**: until the first removal,
/// `colors` *is* the original (one shared allocation — construction
/// never clones), and the snapshot materializes lazily when a removal
/// actually happens. Nodes that keep their full palette (the common case
/// early in a solve) never pay the second allocation.
#[derive(Clone, Debug)]
pub struct Palette {
    colors: Vec<Color>,
    /// `None` while no color has been removed (`colors` doubles as the
    /// original list); the pre-removal snapshot afterwards.
    original: Option<Vec<Color>>,
}

/// Equality is semantic — remaining colors and (materialized-or-not)
/// original list — so a never-touched palette equals a touched one whose
/// removals were re-added via [`Palette::reset`].
impl PartialEq for Palette {
    fn eq(&self, other: &Self) -> bool {
        self.colors == other.colors && self.original() == other.original()
    }
}

impl Eq for Palette {}

impl Palette {
    /// A palette initialized to `list` (sorted, deduplicated).
    pub fn new(mut list: Vec<Color>) -> Self {
        list.sort_unstable();
        list.dedup();
        Palette {
            colors: list,
            original: None,
        }
    }

    /// Re-initialize to `list` in place, reusing the palette's
    /// allocations (the larger of the two retained buffers keeps its
    /// capacity) — for recycling node state across solves or phases.
    pub fn reset(&mut self, list: impl IntoIterator<Item = Color>) {
        let mut buf = std::mem::take(&mut self.colors);
        if let Some(orig) = self.original.take() {
            if orig.capacity() > buf.capacity() {
                buf = orig;
            }
        }
        buf.clear();
        buf.extend(list);
        buf.sort_unstable();
        buf.dedup();
        self.colors = buf;
    }

    /// Snapshot the original list before the first mutation of `colors`.
    fn materialize(&mut self) {
        if self.original.is_none() {
            self.original = Some(self.colors.clone());
        }
    }

    /// Remaining colors, sorted.
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// The original list (used for chromatic-slack counting, which is
    /// defined against `Ψ_v` at phase start).
    pub fn original(&self) -> &[Color] {
        self.original.as_deref().unwrap_or(&self.colors)
    }

    /// Number of remaining colors.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether no colors remain.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Whether `c` is still available.
    pub fn contains(&self, c: Color) -> bool {
        self.colors.binary_search(&c).is_ok()
    }

    /// Remove an exact color (a neighbor adopted it). Returns whether it
    /// was present.
    pub fn remove(&mut self, c: Color) -> bool {
        match self.colors.binary_search(&c) {
            Ok(i) => {
                self.materialize();
                self.colors.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Remove every color whose image under `h` equals `image` (App. D.3
    /// hashed announcement). Returns how many colors were removed (w.h.p.
    /// 0 or 1).
    pub fn remove_by_hash(&mut self, h: &ColorHash, image: u64) -> usize {
        // Probe first: a no-match announcement (the common case — each
        // announcement targets one neighbor's color) must not force the
        // copy-on-write snapshot.
        if !self.colors.iter().any(|&c| h.hash(c) == image) {
            return 0;
        }
        self.materialize();
        let before = self.colors.len();
        self.colors.retain(|&c| h.hash(c) != image);
        before - self.colors.len()
    }

    /// First color whose image under `h` equals `image`, if any (used by
    /// inliers decoding a leader's color assignment).
    pub fn first_matching_hash(&self, h: &ColorHash, image: u64) -> Option<Color> {
        self.colors.iter().copied().find(|&c| h.hash(c) == image)
    }

    /// Whether the *original* list contains a color with the given image
    /// (chromatic-slack test: did the neighbor adopt outside my list?).
    pub fn original_has_hash(&self, h: &ColorHash, image: u64) -> bool {
        self.original().iter().any(|&c| h.hash(c) == image)
    }
}

impl FromIterator<Color> for Palette {
    fn from_iter<T: IntoIterator<Item = Color>>(iter: T) -> Self {
        Palette::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prand::ColorHashFamily;

    #[test]
    fn construction_sorts_and_dedups() {
        let p = Palette::new(vec![5, 1, 3, 1]);
        assert_eq!(p.colors(), &[1, 3, 5]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn exact_removal() {
        let mut p = Palette::new(vec![1, 2, 3]);
        assert!(p.remove(2));
        assert!(!p.remove(2));
        assert_eq!(p.colors(), &[1, 3]);
        assert!(p.contains(1) && !p.contains(2));
    }

    #[test]
    fn original_is_preserved() {
        let mut p = Palette::new(vec![1, 2, 3]);
        p.remove(1);
        assert_eq!(p.original(), &[1, 2, 3]);
    }

    #[test]
    fn hash_removal_removes_the_announced_color() {
        let fam = ColorHashFamily::for_graph(1000, 6, 3);
        let h = fam.member(5);
        let mut p = Palette::new((0..50).collect());
        let removed = p.remove_by_hash(&h, h.hash(17));
        assert!(removed >= 1);
        assert!(!p.contains(17));
        // W.h.p. exactly one color was removed.
        assert_eq!(p.len(), 49, "collision removed extra colors");
    }

    #[test]
    fn hash_lookup_finds_assigned_color() {
        let fam = ColorHashFamily::for_graph(1000, 6, 9);
        let h = fam.member(2);
        let p = Palette::new(vec![100, 200, 300]);
        assert_eq!(p.first_matching_hash(&h, h.hash(200)), Some(200));
        assert!(p.original_has_hash(&h, h.hash(300)));
    }

    #[test]
    fn from_iterator() {
        let p: Palette = [3u64, 1, 2].into_iter().collect();
        assert_eq!(p.colors(), &[1, 2, 3]);
    }

    /// Satellite: construction shares one allocation; the original list
    /// materializes only when a removal actually happens.
    #[test]
    fn original_materializes_lazily() {
        let mut p = Palette::new(vec![1, 2, 3]);
        assert!(p.original.is_none(), "no snapshot before any removal");
        assert_eq!(p.original(), &[1, 2, 3]);
        assert!(!p.remove(9), "miss must not snapshot");
        let fam = ColorHashFamily::for_graph(1000, 6, 3);
        let h = fam.member(1);
        assert_eq!(p.remove_by_hash(&h, h.hash(77)), 0);
        assert!(p.original.is_none(), "no-op removals keep sharing");
        assert!(p.remove(2));
        assert!(p.original.is_some(), "first hit snapshots");
        assert_eq!(p.colors(), &[1, 3]);
        assert_eq!(p.original(), &[1, 2, 3]);
    }

    /// Semantic equality ignores whether the snapshot materialized.
    #[test]
    fn equality_is_semantic() {
        let fresh = Palette::new(vec![1, 2, 3]);
        let mut touched = Palette::new(vec![1, 2, 3]);
        assert!(!touched.remove(9));
        assert_eq!(fresh, touched);
        let mut removed = Palette::new(vec![1, 2, 3]);
        removed.remove(2);
        assert_ne!(fresh, removed, "different original views");
    }

    /// `reset` re-initializes in place, reusing the larger retained
    /// buffer's capacity and clearing the snapshot.
    #[test]
    fn reset_reuses_capacity() {
        let mut p = Palette::new((0..64).collect());
        p.remove(10);
        let cap_before = p
            .colors
            .capacity()
            .max(p.original.as_ref().map_or(0, std::vec::Vec::capacity));
        p.reset([5, 3, 3, 1]);
        assert_eq!(p.colors(), &[1, 3, 5]);
        assert_eq!(p.original(), &[1, 3, 5]);
        assert!(p.original.is_none(), "reset restores the shared state");
        assert!(p.colors.capacity() >= cap_before, "capacity retained");
        assert_eq!(p, Palette::new(vec![1, 3, 5]));
    }
}
