//! Clique-local aggregation (sum / min) through the hub, with random
//! relays for distance-2 members.
//!
//! Almost-cliques have diameter ≤ 2 but no member is adjacent to everyone,
//! so clique-wide computations (clique size, leader arg-min, …) route
//! through the *hub* (the minimum-id member, whose id is the clique id):
//! members adjacent to the hub aggregate the values of their non-adjacent
//! clique-mates (each of whom picks one random adjacent relay) and forward
//! partial aggregates; the hub combines and the result flows back the same
//! way. 6 rounds, `O(log n)` bits per edge.
//!
//! This is the communication pattern Appendix D.1/D.2 relies on for
//! leader selection, slackability estimation and put-aside coordination.

use crate::passes::StatePass;
use crate::state::NodeState;
use crate::wire::{tags, Wire};
use congest::{Ctx, Program};
use graphs::NodeId;
use rand::Rng;

/// Aggregation operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of member inputs.
    Sum,
    /// Minimum of member inputs (use packed `(value, id)` words for
    /// arg-min).
    Min,
}

impl AggOp {
    fn identity(self) -> u64 {
        match self {
            AggOp::Sum => 0,
            AggOp::Min => u64::MAX,
        }
    }

    fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a.saturating_add(b),
            AggOp::Min => a.min(b),
        }
    }
}

/// One clique-wide aggregation; every member ends with the clique's
/// aggregate in [`CliqueAggregatePass::result`] (None for non-members or
/// members cut off from the hub, which the caller demotes).
#[derive(Debug)]
pub struct CliqueAggregatePass {
    st: NodeState,
    op: AggOp,
    input: u64,
    bits: u32,
    /// The aggregate, filled on members at the end of the pass.
    pub result: Option<u64>,
    hub_adjacent: bool,
    partial: u64,
    done: bool,
}

impl CliqueAggregatePass {
    /// Aggregate `input` across this node's clique with `op`; payload
    /// messages are declared `bits` wide.
    pub fn new(st: NodeState, op: AggOp, input: u64, bits: u32) -> Self {
        CliqueAggregatePass {
            st,
            op,
            input,
            bits,
            result: None,
            hub_adjacent: false,
            partial: 0,
            done: false,
        }
    }

    fn member(&self) -> bool {
        self.st.clique.is_some()
    }

    fn hub(&self) -> NodeId {
        self.st.clique.expect("member() checked")
    }

    fn am_hub(&self) -> bool {
        self.member() && self.hub() == self.st.id
    }

    /// Positions of same-clique neighbors.
    fn clique_positions(&self) -> Vec<usize> {
        let cid = self.st.clique;
        self.st
            .neighbor_clique
            .iter()
            .enumerate()
            .filter(|&(_, c)| *c == cid && cid.is_some())
            .map(|(i, _)| i)
            .collect()
    }
}

impl Program for CliqueAggregatePass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        if !self.member() {
            self.done = ctx.round() >= 5;
            return;
        }
        match ctx.round() {
            0 => {
                self.hub_adjacent =
                    self.am_hub() || ctx.neighbors().binary_search(&self.hub()).is_ok();
                self.partial = self.op.identity();
                ctx.broadcast(Wire::Flag {
                    tag: tags::HUB_ADJ,
                    on: self.hub_adjacent,
                });
            }
            1 => {
                if self.hub_adjacent {
                    self.partial = self.input;
                } else {
                    // Pick a random same-clique hub-adjacent relay.
                    let mut relays: Vec<NodeId> = Vec::new();
                    for &(from, ref msg) in ctx.inbox() {
                        if let Wire::Flag {
                            tag: tags::HUB_ADJ,
                            on: true,
                        } = msg
                        {
                            let pos = ctx.neighbor_index(from).expect("flag from non-neighbor");
                            if self.st.neighbor_clique[pos] == self.st.clique {
                                relays.push(from);
                            }
                        }
                    }
                    if !relays.is_empty() {
                        let relay = relays[ctx.rng().gen_range(0..relays.len())];
                        ctx.send(
                            relay,
                            Wire::Uint {
                                tag: tags::AGG_UP,
                                value: self.input,
                                bits: self.bits,
                            },
                        );
                    }
                }
            }
            2 => {
                if self.hub_adjacent {
                    for (_, msg) in ctx.inbox() {
                        if let Wire::Uint {
                            tag: tags::AGG_UP,
                            value,
                            ..
                        } = msg
                        {
                            self.partial = self.op.combine(self.partial, *value);
                        }
                    }
                    if !self.am_hub() {
                        ctx.send(
                            self.hub(),
                            Wire::Uint {
                                tag: tags::AGG_UP,
                                value: self.partial,
                                bits: self.bits,
                            },
                        );
                    }
                }
            }
            3 => {
                if self.am_hub() {
                    let mut agg = self.partial;
                    for (_, msg) in ctx.inbox() {
                        if let Wire::Uint {
                            tag: tags::AGG_UP,
                            value,
                            ..
                        } = msg
                        {
                            agg = self.op.combine(agg, *value);
                        }
                    }
                    self.result = Some(agg);
                    ctx.broadcast(Wire::Uint {
                        tag: tags::AGG_DOWN,
                        value: agg,
                        bits: self.bits,
                    });
                }
            }
            4 => {
                if self.result.is_none() {
                    for &(from, ref msg) in ctx.inbox() {
                        if let Wire::Uint {
                            tag: tags::AGG_DOWN,
                            value,
                            ..
                        } = msg
                        {
                            let pos = ctx.neighbor_index(from).expect("agg from non-neighbor");
                            if self.st.neighbor_clique[pos] == self.st.clique {
                                self.result = Some(*value);
                                break;
                            }
                        }
                    }
                }
                // Hub-adjacent members relay the result outward.
                if self.hub_adjacent {
                    if let Some(r) = self.result {
                        for pos in self.clique_positions() {
                            let to = ctx.neighbors()[pos];
                            ctx.send(
                                to,
                                Wire::Uint {
                                    tag: tags::AGG_DOWN,
                                    value: r,
                                    bits: self.bits,
                                },
                            );
                        }
                    }
                }
            }
            _ => {
                if self.result.is_none() {
                    for &(from, ref msg) in ctx.inbox() {
                        if let Wire::Uint {
                            tag: tags::AGG_DOWN,
                            value,
                            ..
                        } = msg
                        {
                            let pos = ctx.neighbor_index(from).expect("agg from non-neighbor");
                            if self.st.neighbor_clique[pos] == self.st.clique {
                                self.result = Some(*value);
                                break;
                            }
                        }
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for CliqueAggregatePass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Pack `(value, id)` for arg-min aggregation: the minimum of packed words
/// is the lexicographic minimum of `(value, id)` pairs.
pub fn pack_argmin(value: u64, id: NodeId) -> u64 {
    (value.min((1 << 38) - 1) << 26) | u64::from(id) & ((1 << 26) - 1)
}

/// Recover the id from a packed arg-min word.
pub fn unpack_argmin_id(packed: u64) -> NodeId {
    (packed & ((1 << 26) - 1)) as NodeId
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    /// States where everyone belongs to one clique with hub = node 0.
    fn clique_states(g: &Graph) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(vec![0]),
                    ColorCodec::new(&profile, 1, g.n(), 16, d),
                    d,
                );
                st.clique = Some(0);
                st.neighbor_clique = vec![Some(0); d];
                st
            })
            .collect()
    }

    fn run_agg(g: &Graph, states: Vec<NodeState>, op: AggOp, inputs: &[u64]) -> Vec<Option<u64>> {
        let programs: Vec<_> = states
            .into_iter()
            .map(|st| {
                let x = inputs[st.id as usize];
                CliqueAggregatePass::new(st, op, x, 48)
            })
            .collect();
        let (programs, report) = congest::run(g, programs, SimConfig::seeded(3)).unwrap();
        assert!(report.completed);
        assert!(report.rounds <= 6);
        programs.into_iter().map(|p| p.result).collect()
    }

    #[test]
    fn sum_over_complete_clique() {
        let g = gen::complete(10);
        let inputs: Vec<u64> = (0..10).collect();
        let results = run_agg(&g, clique_states(&g), AggOp::Sum, &inputs);
        for (v, r) in results.iter().enumerate() {
            assert_eq!(*r, Some(45), "node {v}");
        }
    }

    #[test]
    fn min_over_diameter_two_clique() {
        // A K10 minus a perfect-ish matching still has diameter 2; remove
        // some edges touching the hub so relays actually fire.
        let mut b = graphs::GraphBuilder::new(10);
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                // Drop edges (0,7), (0,8), (0,9): those members reach the
                // hub via relays.
                if u == 0 && v >= 7 {
                    continue;
                }
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let inputs: Vec<u64> = (0..10).map(|i| 100 - i).collect();
        let results = run_agg(&g, clique_states(&g), AggOp::Min, &inputs);
        for (v, r) in results.iter().enumerate() {
            assert_eq!(*r, Some(91), "node {v}");
        }
    }

    #[test]
    fn argmin_packing_roundtrip() {
        let p = pack_argmin(500, 123);
        assert_eq!(unpack_argmin_id(p), 123);
        assert!(pack_argmin(2, 999) < pack_argmin(3, 0));
        // Ties broken by id.
        assert!(pack_argmin(5, 3) < pack_argmin(5, 4));
    }

    #[test]
    fn non_members_stay_out() {
        let g = gen::complete(6);
        let mut states = clique_states(&g);
        states[5].clique = None;
        for st in &mut states {
            let pos5 = g.neighbors(st.id).binary_search(&5).ok();
            if let Some(p) = pos5 {
                st.neighbor_clique[p] = None;
            }
        }
        let inputs = vec![1u64; 6];
        let results = run_agg(&g, states, AggOp::Sum, &inputs);
        assert_eq!(results[5], None);
        for (v, r) in results.iter().enumerate().take(5) {
            assert_eq!(*r, Some(5), "node {v}");
        }
    }

    #[test]
    fn two_cliques_aggregate_independently() {
        // Two disjoint K5s.
        let g = gen::disjoint_cliques(2, 5);
        let profile = ParamProfile::laptop();
        let states: Vec<NodeState> = (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(vec![0]),
                    ColorCodec::new(&profile, 1, g.n(), 16, d),
                    d,
                );
                let cid = if v < 5 { 0 } else { 5 };
                st.clique = Some(cid);
                st.neighbor_clique = vec![Some(cid); d];
                st
            })
            .collect();
        let inputs: Vec<u64> = (0..10).collect();
        let results = run_agg(&g, states, AggOp::Sum, &inputs);
        for (v, r) in results.iter().enumerate() {
            let expected = if v < 5 {
                1 + 2 + 3 + 4
            } else {
                5 + 6 + 7 + 8 + 9
            };
            assert_eq!(*r, Some(expected), "node {v}");
        }
    }
}
