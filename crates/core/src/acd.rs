//! `ComputeACD` — the almost-clique decomposition (§4.2, Definitions 2
//! and 6).
//!
//! The decomposition partitions the active nodes into `V^{sparse}`,
//! `V^{uneven}` and `V^{dense}`, the latter further partitioned into
//! almost-cliques. Following §4.2 the `ε-friend` predicate is evaluated
//! with `EstimateSimilarity` on every edge (`ε-Buddy`):
//!
//! 1. **Estimate pass** (4 rounds) — Alg. 1 on every active edge with
//!    `S_v` = the active neighborhood of `v`;
//! 2. local classification — an edge is a *buddy* iff it is ε-balanced and
//!    the estimated `|N(u) ∩ N(v)|` clears `(1 − 2ε)·min(d_u, d_v)`; a
//!    node is *dense* iff most of its edges are buddies, *uneven* iff its
//!    unevenness `η_v` exceeds `ε·d_v` (Definition 5), else *sparse*;
//! 3. **clique formation** (4 rounds) — dense nodes adopt the minimum id
//!    within distance 2 of the buddy graph as clique id (almost-cliques
//!    have diameter ≤ 2, \[ACK19\]);
//! 4. **size & pruning** (8 rounds) — the hub aggregates `|C|`; members
//!    violating Definition 6's conditions 3–4 are demoted to sparse and
//!    the clique neighborhood view is refreshed.

use crate::clique_comm::{AggOp, CliqueAggregatePass};
use crate::config::ParamProfile;
use crate::driver::{Driver, PassFailure};
use crate::passes::{inbox_positions, StatePass};
use crate::state::{AcdClass, NodeState};
use crate::wire::{tags, Wire};
use congest::message::bits_for_range;
use congest::{Ctx, Program};
use estimate::{
    intersection_size, window_signature, window_signature_reference, EdgeSetup, SimilarityScheme,
};
use graphs::NodeId;
use prand::mix::mix3;

/// Pass 1: per-edge similarity estimates over the *active* subgraph.
#[derive(Debug)]
struct BuddyEstimatePass {
    st: NodeState,
    scheme: SimilarityScheme,
    seed: u64,
    /// Use the preserved pre-fusion signature path (legacy engine modes;
    /// identical outputs, see `Driver::legacy_compute`).
    reference_compute: bool,
    degree_bits: u32,
    neighbor_adeg: Vec<u32>,
    edge_index: Vec<u64>,
    /// Round-2 signatures, cached per neighbor: the compare round needs
    /// exactly the signature this node already computed and sent, so it
    /// is reused instead of recomputed (signature evaluation is the
    /// pass's dominant cost).
    my_sigs: Vec<Vec<u64>>,
    /// Output: per-neighbor estimate of the active-neighborhood overlap.
    estimates: Vec<f64>,
    done: bool,
}

impl BuddyEstimatePass {
    fn new(
        st: NodeState,
        scheme: SimilarityScheme,
        seed: u64,
        n: usize,
        reference_compute: bool,
    ) -> Self {
        let degree = st.neighbor_active.len();
        BuddyEstimatePass {
            st,
            scheme,
            seed,
            reference_compute,
            degree_bits: bits_for_range(n as u64) as u32,
            neighbor_adeg: vec![0; degree],
            edge_index: vec![0; degree],
            my_sigs: vec![Vec::new(); degree],
            estimates: vec![0.0; degree],
            done: false,
        }
    }

    fn active_degree(&self) -> usize {
        self.st.neighbor_active.iter().filter(|&&a| a).count()
    }

    /// The active neighborhood as a sorted u64 set.
    fn active_set(&self, ctx: &Ctx<'_, Wire>) -> Vec<u64> {
        ctx.neighbors()
            .iter()
            .enumerate()
            .filter(|&(pos, _)| self.st.neighbor_active[pos])
            .map(|(_, &w)| u64::from(w))
            .collect()
    }

    fn edge_setup(&self, a: NodeId, b: NodeId, da: usize, db: usize) -> EdgeSetup {
        let seed = mix3(self.seed, u64::from(a.min(b)), u64::from(a.max(b)));
        EdgeSetup::new(&self.scheme, da, db, seed)
    }
}

impl Program for BuddyEstimatePass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        if !self.st.active {
            self.done = ctx.round() >= 3;
            return;
        }
        match ctx.round() {
            0 => {
                ctx.broadcast(Wire::Uint {
                    tag: tags::DEGREE,
                    value: self.active_degree() as u64,
                    bits: self.degree_bits,
                });
            }
            1 => {
                for (pos, _, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::Uint {
                        tag: tags::DEGREE,
                        value,
                        ..
                    } = msg
                    {
                        self.neighbor_adeg[pos] = *value as u32;
                    }
                }
                let me = ctx.id();
                let my_deg = self.active_degree();
                for pos in 0..ctx.neighbors().len() {
                    let nb = ctx.neighbors()[pos];
                    if self.st.neighbor_active[pos] && me < nb {
                        let setup =
                            self.edge_setup(me, nb, my_deg, self.neighbor_adeg[pos] as usize);
                        let index = setup.family.sample_index(ctx.rng());
                        self.edge_index[pos] = index;
                        ctx.send(
                            nb,
                            Wire::Uint {
                                tag: tags::AGG_UP,
                                value: index,
                                bits: setup.family.index_bits(),
                            },
                        );
                    }
                }
            }
            2 => {
                for (pos, _, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::Uint {
                        tag: tags::AGG_UP,
                        value,
                        ..
                    } = msg
                    {
                        self.edge_index[pos] = *value;
                    }
                }
                let me = ctx.id();
                let my_deg = self.active_degree();
                let own = self.active_set(ctx);
                for pos in 0..ctx.neighbors().len() {
                    if !self.st.neighbor_active[pos] {
                        continue;
                    }
                    let nb = ctx.neighbors()[pos];
                    let setup = self.edge_setup(me, nb, my_deg, self.neighbor_adeg[pos] as usize);
                    let h = setup.family.member(self.edge_index[pos]);
                    let words = if self.reference_compute {
                        window_signature_reference(&setup, &h, &own)
                    } else {
                        let words = window_signature(&setup, &h, &own);
                        self.my_sigs[pos] = words.clone();
                        words
                    };
                    ctx.send(
                        nb,
                        Wire::Bitmap {
                            tag: tags::TRIED,
                            words,
                            bits: setup.sigma(),
                        },
                    );
                }
            }
            _ => {
                let me = ctx.id();
                let my_deg = self.active_degree();
                let own = self.reference_compute.then(|| self.active_set(ctx));
                for (pos, from, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::Bitmap { words, .. } = msg {
                        let setup =
                            self.edge_setup(me, from, my_deg, self.neighbor_adeg[pos] as usize);
                        // This node's signature for the edge is exactly
                        // the one computed (and sent) last round: reuse
                        // it (the legacy arm recomputes it, as the
                        // pre-PR pass did).
                        let mine = match &own {
                            Some(own) => {
                                let h = setup.family.member(self.edge_index[pos]);
                                window_signature_reference(&setup, &h, own)
                            }
                            None => std::mem::take(&mut self.my_sigs[pos]),
                        };
                        self.estimates[pos] = setup.descale(intersection_size(&mine, words));
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for BuddyEstimatePass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Pass 3: minimum-id propagation over buddy edges (2 hops).
#[derive(Debug)]
struct CliqueFormPass {
    st: NodeState,
    buddy: Vec<bool>,
    cid: NodeId,
    id_bits: u32,
    done: bool,
}

impl CliqueFormPass {
    fn new(st: NodeState, buddy: Vec<bool>, n: usize) -> Self {
        let cid = st.id;
        CliqueFormPass {
            st,
            buddy,
            cid,
            id_bits: bits_for_range(n as u64) as u32,
            done: false,
        }
    }

    fn dense(&self) -> bool {
        self.st.class == AcdClass::Dense
    }

    fn fold_min(&mut self, ctx: &Ctx<'_, Wire>) {
        for &(from, ref msg) in ctx.inbox() {
            if let Wire::Uint {
                tag: tags::CLIQUE,
                value,
                ..
            } = msg
            {
                let pos = ctx.neighbor_index(from).expect("cid from non-neighbor");
                if self.buddy[pos] {
                    self.cid = self.cid.min(*value as NodeId);
                }
            }
        }
    }

    fn broadcast_cid(&self, ctx: &mut Ctx<'_, Wire>) {
        ctx.broadcast(Wire::Uint {
            tag: tags::CLIQUE,
            value: u64::from(self.cid),
            bits: self.id_bits,
        });
    }
}

impl Program for CliqueFormPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                if self.dense() {
                    self.broadcast_cid(ctx);
                }
            }
            1 | 2 => {
                if self.dense() {
                    self.fold_min(ctx);
                    self.broadcast_cid(ctx);
                }
            }
            _ => {
                // Record neighbors' final clique ids (only dense nodes
                // broadcast in round 2, so this inbox is authoritative).
                for c in &mut self.st.neighbor_clique {
                    *c = None;
                }
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Uint {
                        tag: tags::CLIQUE,
                        value,
                        ..
                    } = msg
                    {
                        let pos = ctx.neighbor_index(from).expect("cid from non-neighbor");
                        self.st.neighbor_clique[pos] = Some(*value as NodeId);
                    }
                }
                if self.dense() {
                    self.st.clique = Some(self.cid);
                    refresh_clique_counts(&mut self.st);
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for CliqueFormPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Refresh `nc` / `ext` from the `neighbor_clique` + `neighbor_active`
/// views.
pub(crate) fn refresh_clique_counts(st: &mut NodeState) {
    let mut nc = 0u32;
    let mut ext = 0u32;
    for pos in 0..st.neighbor_clique.len() {
        if !st.neighbor_active[pos] {
            continue;
        }
        if st.clique.is_some() && st.neighbor_clique[pos] == st.clique {
            nc += 1;
        } else {
            ext += 1;
        }
    }
    st.nc = nc;
    st.ext = ext;
}

/// Pass 5: re-announce clique membership after pruning (2 rounds).
#[derive(Debug)]
pub(crate) struct CliqueRefreshPass {
    st: NodeState,
    id_bits: u32,
    done: bool,
}

impl CliqueRefreshPass {
    pub(crate) fn new(st: NodeState, n: usize) -> Self {
        CliqueRefreshPass {
            st,
            id_bits: bits_for_range(n as u64) as u32 + 1,
            done: false,
        }
    }
}

impl Program for CliqueRefreshPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        match ctx.round() {
            0 => {
                if let Some(cid) = self.st.clique {
                    ctx.broadcast(Wire::Uint {
                        tag: tags::CLIQUE,
                        value: u64::from(cid),
                        bits: self.id_bits,
                    });
                }
            }
            _ => {
                for c in &mut self.st.neighbor_clique {
                    *c = None;
                }
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Uint {
                        tag: tags::CLIQUE,
                        value,
                        ..
                    } = msg
                    {
                        let pos = ctx.neighbor_index(from).expect("cid from non-neighbor");
                        self.st.neighbor_clique[pos] = Some(*value as NodeId);
                    }
                }
                refresh_clique_counts(&mut self.st);
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for CliqueRefreshPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Run the full ACD over the active nodes: classifies every active node
/// and assembles almost-cliques with verified size bounds.
///
/// # Errors
///
/// Propagates engine errors.
pub fn compute_acd(
    driver: &mut Driver<'_>,
    states: Vec<NodeState>,
    profile: &ParamProfile,
    seed: u64,
) -> Result<Vec<NodeState>, PassFailure> {
    let n = driver.graph.n();
    // The in-pipeline similarity scheme: §4.2's buddy test needs coarse
    // discrimination only, so the window is capped near the bandwidth
    // (`sim_sigma_cap`) rather than at Lemma 2's accuracy-driven size.
    let scheme = SimilarityScheme {
        sigma_cap: profile.sim_sigma_cap,
        scale_cap: 16,
        family_bits: profile.family_bits,
        ..SimilarityScheme::practical(profile.sim_eps)
    };
    let eps = profile.eps_acd;

    // Pass 1: similarity estimates.
    let reference_compute = driver.legacy_compute();
    let programs: Vec<BuddyEstimatePass> = states
        .into_iter()
        .map(|st| BuddyEstimatePass::new(st, scheme, seed, n, reference_compute))
        .collect();
    let programs = driver
        .run_seeded("acd-estimate", prand::mix::mix2(seed, 0xacd), programs)
        .map_err(PassFailure::from_programs)?;

    // Pass 2: local classification from the per-edge estimates.
    let mut states = Vec::with_capacity(programs.len());
    let mut buddy_masks = Vec::with_capacity(programs.len());
    for p in programs {
        let BuddyEstimatePass {
            mut st,
            neighbor_adeg,
            estimates,
            ..
        } = p;
        let degree = st.neighbor_active.len();
        let mut buddy = vec![false; degree];
        if st.active {
            let dv = st.neighbor_active.iter().filter(|&&a| a).count() as f64;
            for pos in 0..degree {
                if !st.neighbor_active[pos] {
                    continue;
                }
                let du = f64::from(neighbor_adeg[pos]);
                let balanced = dv.min(du) >= (1.0 - eps) * dv.max(du);
                if balanced && estimates[pos] >= (1.0 - 2.0 * eps) * dv.min(du) {
                    buddy[pos] = true;
                }
            }
        }
        classify(&mut st, &buddy, &neighbor_adeg, eps);
        buddy_masks.push(buddy);
        states.push(st);
    }

    // Passes 3–5: clique formation, size verification, refresh.
    finish_acd(driver, states, buddy_masks, profile, seed)
}

/// Classify one node from its buddy mask and its neighbors' active degrees
/// (shared by the representative-hash and uniform ACD variants).
pub(crate) fn classify(st: &mut NodeState, buddy: &[bool], neighbor_adeg: &[u32], eps: f64) {
    if !st.active {
        return;
    }
    let dv = st.neighbor_active.iter().filter(|&&a| a).count() as f64;
    let buddy_count = buddy.iter().filter(|&&b| b).count() as f64;
    let mut eta = 0.0;
    for (pos, &adeg) in neighbor_adeg.iter().enumerate().take(buddy.len()) {
        if st.neighbor_active[pos] {
            let du = f64::from(adeg);
            eta += (du - dv).max(0.0) / (du + 1.0);
        }
    }
    st.class = if dv > 0.0 && buddy_count >= (1.0 - 2.0 * eps) * dv {
        AcdClass::Dense
    } else if eta >= eps * dv {
        AcdClass::Uneven
    } else {
        AcdClass::Sparse
    };
}

/// The ACD tail shared by both buddy variants: clique formation (min-id
/// over buddy edges), clique-size verification against Definition 6, and
/// the neighborhood-view refresh.
pub(crate) fn finish_acd(
    driver: &mut Driver<'_>,
    states: Vec<NodeState>,
    buddy_masks: Vec<Vec<bool>>,
    profile: &ParamProfile,
    seed: u64,
) -> Result<Vec<NodeState>, PassFailure> {
    let n = driver.graph.n();
    let eps = profile.eps_acd;

    // Clique formation.
    let mut masks = buddy_masks.into_iter();
    let states = driver.run_pass("acd-cliques", states, |st| {
        let mask = masks.next().expect("one mask per node");
        CliqueFormPass::new(st, mask, n)
    })?;

    // Clique sizes via hub aggregation; prune Def. 6 violators.
    let bits = bits_for_range(n as u64) as u32;
    let programs: Vec<CliqueAggregatePass> = states
        .into_iter()
        .map(|st| CliqueAggregatePass::new(st, AggOp::Sum, 1, bits))
        .collect();
    let programs = driver
        .run_seeded("acd-size", prand::mix::mix2(seed, 0xacd2), programs)
        .map_err(PassFailure::from_programs)?;
    let mut states: Vec<NodeState> = programs
        .into_iter()
        .map(|p| {
            let result = p.result;
            let mut st = p.into_state();
            if st.class == AcdClass::Dense {
                match result {
                    Some(size) => {
                        st.clique_size = size as u32;
                        let dv = st.neighbor_active.iter().filter(|&&a| a).count() as f64;
                        let c = size as f64;
                        let ok = dv <= (1.0 + 2.0 * eps) * c
                            && (1.0 + 2.0 * eps) * f64::from(st.nc + 1) >= c;
                        if !ok {
                            demote(&mut st);
                        }
                    }
                    None => demote(&mut st),
                }
            }
            st
        })
        .collect();

    states = driver.run_pass("acd-refresh", states, |st| CliqueRefreshPass::new(st, n))?;
    Ok(states)
}

fn demote(st: &mut NodeState) {
    st.class = AcdClass::Sparse;
    st.clique = None;
    st.clique_size = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    fn fresh_active(g: &Graph) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..=(d as u64)).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 16, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect()
    }

    #[test]
    fn disjoint_cliques_are_recovered_exactly() {
        let g = gen::disjoint_cliques(3, 12);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(3));
        let states = compute_acd(&mut driver, fresh_active(&g), &profile, 7).unwrap();
        for st in &states {
            assert_eq!(st.class, AcdClass::Dense, "node {} not dense", st.id);
            let expected_hub = (st.id / 12) * 12;
            assert_eq!(st.clique, Some(expected_hub), "node {}", st.id);
            assert_eq!(st.clique_size, 12, "node {}", st.id);
            assert_eq!(st.nc, 11);
            assert_eq!(st.ext, 0);
        }
    }

    #[test]
    fn gnp_nodes_are_sparse_or_uneven() {
        // G(n, p) has no almost-cliques; nodes split between sparse and
        // (for below-average degrees) uneven — both non-dense classes are
        // handled by the Alg. 8 path.
        let g = gen::gnp(120, 0.1, 9);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(5));
        let states = compute_acd(&mut driver, fresh_active(&g), &profile, 11).unwrap();
        let dense = states.iter().filter(|s| s.class == AcdClass::Dense).count();
        let sparse = states
            .iter()
            .filter(|s| s.class == AcdClass::Sparse)
            .count();
        assert!(dense <= g.n() / 20, "{dense}/{} spuriously dense", g.n());
        assert!(sparse >= g.n() / 2, "only {sparse}/{} sparse", g.n());
    }

    #[test]
    fn planted_blend_separates_dense_from_sparse() {
        let (g, truth) = gen::planted_acd(3, 20, 0.05, 60, 0.05, 13);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(7));
        let states = compute_acd(&mut driver, fresh_active(&g), &profile, 17).unwrap();
        let mut dense_right = 0;
        let mut dense_total = 0;
        let mut cliques_agree = 0;
        for (v, t) in truth.iter().enumerate() {
            if t.is_some() {
                dense_total += 1;
                if states[v].class == AcdClass::Dense {
                    dense_right += 1;
                    // Same planted clique ⇒ same hub.
                    let mate = (v / 20) * 20;
                    if states[v].clique == states[mate].clique {
                        cliques_agree += 1;
                    }
                }
            }
        }
        assert!(
            dense_right * 10 >= dense_total * 8,
            "{dense_right}/{dense_total} planted members classified dense"
        );
        assert!(
            cliques_agree * 10 >= dense_right * 9,
            "{cliques_agree}/{dense_right} hubs agree"
        );
    }

    #[test]
    fn hub_and_spokes_marks_spokes_uneven_or_sparse() {
        let g = gen::hub_and_spokes(4, 40, 3);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(2));
        let states = compute_acd(&mut driver, fresh_active(&g), &profile, 5).unwrap();
        // Spokes (id ≥ 4) have 1–2 neighbors of enormous degree: never dense.
        for st in states.iter().skip(4) {
            assert_ne!(st.class, AcdClass::Dense, "spoke {} dense", st.id);
        }
        let uneven = states
            .iter()
            .skip(4)
            .filter(|s| s.class == AcdClass::Uneven)
            .count();
        assert!(uneven > 100, "only {uneven} spokes uneven");
    }

    #[test]
    fn inactive_nodes_are_untouched() {
        let g = gen::complete(10);
        let mut states = fresh_active(&g);
        for st in &mut states {
            if st.id >= 5 {
                st.active = false;
            }
            for pos in 0..st.neighbor_active.len() {
                let nb = g.neighbors(st.id)[pos];
                st.neighbor_active[pos] = nb < 5;
            }
        }
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(4));
        let states = compute_acd(&mut driver, states, &profile, 21).unwrap();
        for st in states.iter().skip(5) {
            assert_eq!(st.class, AcdClass::Unclassified);
        }
        // The active half forms its own K5 clique.
        for st in states.iter().take(5) {
            assert_eq!(st.class, AcdClass::Dense, "node {}", st.id);
            assert_eq!(st.clique, Some(0));
            assert_eq!(st.clique_size, 5);
        }
    }
}
