//! The (degree+1)-list-coloring CONGEST algorithm of *Overcoming
//! Congestion in Distributed Coloring* (§4–5 and the appendices) — the
//! paper's primary contribution.
//!
//! Entry point: [`solve`] runs the full Theorem 1 pipeline (almost-clique
//! decomposition → sparse path → dense path per degree range, then the
//! shattering fallback and deterministic cleanup) and always returns a
//! proper list-coloring with per-pass round/bit metrics. Building blocks
//! are public for experimentation:
//!
//! * [`multitrial`] — Alg. 4's representative-hash `MultiTrial(x)`;
//! * [`acd`] / [`acd_uniform`] — §4.2's decomposition, non-uniform and
//!   uniform (§5) variants;
//! * [`slackcolor`] — Alg. 15's tetration ladder;
//! * [`leader`], [`putaside`], [`synchtrial`] — the App. D dense-path
//!   machinery;
//! * [`baseline`] — the classical comparators;
//! * [`server`] — throughput-mode solving: an always-on concurrent
//!   [`server::SolveServer`] over pooled, rebindable engine sessions
//!   with admission control, per-request deadlines/retries, and
//!   single-flight deterministic response memoization ([`service`]
//!   holds the shared request/config/error vocabulary).
//!
//! # Example
//!
//! ```
//! use d1lc::{solve, SolveOptions};
//!
//! let graph = graphs::gen::gnp(150, 0.1, 7);
//! let lists = graphs::palette::random_lists(&graph, 48, 0, 3);
//! let result = solve(&graph, &lists, SolveOptions::seeded(1)).unwrap();
//! assert_eq!(
//!     graphs::palette::check_coloring(&graph, &lists, &result.coloring),
//!     Ok(())
//! );
//! println!("{} rounds, {} repairs", result.rounds(), result.stats.repairs);
//! ```

#![warn(missing_docs)]

pub mod acd;
pub mod acd_uniform;
pub mod baseline;
pub mod buddy_uniform;
pub mod clique_comm;
pub mod colorspace;
pub mod config;
pub mod dense;
pub mod driver;
pub mod leader;
pub mod multitrial;
pub mod multitrial_uniform;
pub mod palette;
pub mod passes;
pub mod pipeline;
pub mod putaside;
pub mod server;
pub mod service;
pub mod shattering;
pub mod slackcolor;
pub mod sparse;
pub mod state;
pub mod synchtrial;
pub mod trycolor;
pub mod wire;

pub use baseline::{greedy_oracle, solve_naive_multitrial, solve_random_trial};
pub use buddy_uniform::{uniform_buddy, BuddyOutcome, UniformBuddyParams};
pub use config::ParamProfile;
pub use driver::{CancelToken, Driver, EngineMode, PassFailure};
pub use palette::Palette;
pub use pipeline::{solve, SolveOptions, SolveResult, Stats};
pub use server::{ServerHandle, ServerStats, SolveServer, Ticket};
#[allow(deprecated)]
pub use service::SolveService;
pub use service::{Admission, ConfigError, RequestPolicy, ServeError, ServiceConfig, SolveRequest};
pub use state::{AcdClass, NodeState};
