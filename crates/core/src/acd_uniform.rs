//! Uniform almost-clique decomposition: §4.2's `ComputeACD` with the
//! explicit `ε-Buddy` of Algorithm 6 (§5.2) run distributedly on every
//! edge, replacing representative hash functions with pairwise hashing,
//! averaging samplers and the identifier error-correcting code.
//!
//! Per-edge protocol (5 rounds, all edges in parallel):
//!
//! 0. active nodes broadcast their active degree;
//! 1. on each balanced edge the lower-id endpoint picks a low-collision
//!    pairwise hash over `λ = 6·max(d_u,d_v)/ε` plus the multiset seed and
//!    sends `(λ is implicit, hash index, seed)` — Alg. 6 lines 2–3;
//! 2. both endpoints exchange the σ-bit unique-preimage mark vectors
//!    (lines 4–8);
//! 3. endpoints that pass the common-marks test exchange the sampled bits
//!    of their ECC-encoded common preimages (lines 10–15; the position
//!    multiset is derived from the shared edge seed, costing no message);
//! 4. verdicts are computed symmetrically (both sides see the same data),
//!    classification runs locally, and the shared ACD tail (clique
//!    formation + Def. 6 verification) finishes the decomposition.
//!
//! The line-9 threshold is the relative form (see `buddy_uniform` module
//! docs; deviation recorded in DESIGN.md).

use crate::acd::{classify, finish_acd};
use crate::config::ParamProfile;
use crate::driver::{Driver, PassFailure};
use crate::passes::StatePass;
use crate::state::NodeState;
use crate::wire::{tags, Wire};
use congest::message::bits_for_range;
use congest::{Ctx, Program};
use graphs::NodeId;
use prand::mix::{mix2, mix3};
use prand::{IdCode, MultisetSampler, PairwiseFamily, PairwiseHash};

/// Per-edge scratch for the distributed uniform buddy test.
#[derive(Clone, Debug, Default)]
struct EdgeScratch {
    hash_index: u64,
    set_seed: u64,
    /// This side's unique-preimage picks per sampled position.
    my_picks: Vec<Option<u64>>,
    /// The other side's σ-bit mark vector.
    their_marks: Vec<u64>,
    /// My sampled ECC bits (sent in round 3).
    my_bits: Vec<u64>,
    /// Number of sampled positions in round 3 (σ′).
    sigma2: u64,
    verdict: bool,
}

/// The distributed uniform ε-Buddy pass (5 rounds). Produces a per-edge
/// buddy mask identical on both endpoints.
#[derive(Debug)]
pub struct UniformBuddyPass {
    st: NodeState,
    profile: ParamProfile,
    seed: u64,
    degree_bits: u32,
    neighbor_adeg: Vec<u32>,
    edges: Vec<Option<EdgeScratch>>,
    /// Output: per-neighbor buddy verdicts.
    buddy: Vec<bool>,
    done: bool,
}

impl UniformBuddyPass {
    /// Wrap a node state; all nodes share `profile` and `seed`.
    pub fn new(st: NodeState, profile: ParamProfile, seed: u64, n: usize) -> Self {
        let degree = st.neighbor_active.len();
        UniformBuddyPass {
            st,
            profile,
            seed,
            degree_bits: bits_for_range(n as u64) as u32,
            neighbor_adeg: vec![0; degree],
            edges: vec![None; degree],
            buddy: vec![false; degree],
            done: false,
        }
    }

    fn active_degree(&self) -> usize {
        self.st.neighbor_active.iter().filter(|&&a| a).count()
    }

    fn active_set(&self, ctx: &Ctx<'_, Wire>) -> Vec<u64> {
        ctx.neighbors()
            .iter()
            .enumerate()
            .filter(|&(pos, _)| self.st.neighbor_active[pos])
            .map(|(_, &w)| u64::from(w))
            .collect()
    }

    fn edge_seed(&self, a: NodeId, b: NodeId) -> u64 {
        mix3(self.seed, u64::from(a.min(b)), u64::from(a.max(b)))
    }

    fn balanced(&self, my_deg: usize, their_deg: usize) -> bool {
        let (du, dv) = (my_deg as f64, their_deg as f64);
        du > 0.0
            && dv > 0.0
            && du <= dv / (1.0 - self.profile.eps_acd)
            && dv <= du / (1.0 - self.profile.eps_acd)
    }

    fn lambda(&self, my_deg: usize, their_deg: usize) -> u64 {
        ((6.0 * my_deg.max(their_deg) as f64 / self.profile.eps_acd).ceil() as u64).max(4)
    }

    fn family(&self, lambda: u64) -> PairwiseFamily {
        PairwiseFamily::new(mix2(self.seed, lambda), lambda, self.profile.family_bits)
    }

    fn sampler(&self, lambda: u64) -> MultisetSampler {
        let sigma = self.profile.sim_sigma_cap.min(lambda).clamp(16, 512);
        MultisetSampler::new(mix2(self.seed, 0x5e77), lambda, sigma as u32, 20)
    }

    /// Unique-preimage picks of `set` over the sampled positions.
    fn picks(
        h: &PairwiseHash,
        sampler: &MultisetSampler,
        set_seed: u64,
        set: &[u64],
    ) -> Vec<Option<u64>> {
        sampler
            .multiset(set_seed)
            .map(|s| {
                let mut found = None;
                for &w in set {
                    if h.hash(w) == s {
                        if found.is_some() {
                            return None;
                        }
                        found = Some(w);
                    }
                }
                found
            })
            .collect()
    }

    fn marks_bitmap(picks: &[Option<u64>]) -> (Vec<u64>, u64) {
        let bits = picks.len() as u64;
        let mut words = vec![0u64; picks.len().div_ceil(64)];
        for (i, p) in picks.iter().enumerate() {
            if p.is_some() {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        (words, bits)
    }

    /// Concatenated ECC encoding of the common-position preimages, then
    /// sampled at σ′ positions drawn from the shared edge seed.
    fn sampled_ecc_bits(
        &self,
        picks: &[Option<u64>],
        common: &[usize],
        edge_seed: u64,
    ) -> (Vec<u64>, u64) {
        let code = IdCode::new();
        let ell = (common.len() * code.bits()).max(1);
        let sigma2 = self.profile.sim_sigma_cap.min(ell as u64).max(1);
        let sampler = MultisetSampler::new(mix2(edge_seed, 0xecc), ell as u64, sigma2 as u32, 20);
        // Build the concatenated codeword lazily per sampled position.
        let mut words = vec![0u64; (sigma2 as usize).div_ceil(64)];
        for (j, pos) in sampler.multiset(0).enumerate() {
            let block = (pos as usize) / code.bits();
            let bit = (pos as usize) % code.bits();
            let w = common.get(block).and_then(|&i| picks[i]);
            if let Some(id) = w {
                let cw = code.encode(id);
                if IdCode::bit(&cw, bit) {
                    words[j / 64] |= 1 << (j % 64);
                }
            }
        }
        (words, sigma2)
    }
}

impl Program for UniformBuddyPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        if !self.st.active {
            self.done = ctx.round() >= 4;
            return;
        }
        match ctx.round() {
            0 => {
                ctx.broadcast(Wire::Uint {
                    tag: tags::DEGREE,
                    value: self.active_degree() as u64,
                    bits: self.degree_bits,
                });
            }
            1 => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Uint {
                        tag: tags::DEGREE,
                        value,
                        ..
                    } = msg
                    {
                        let pos = ctx.neighbor_index(from).expect("degree from non-neighbor");
                        self.neighbor_adeg[pos] = *value as u32;
                    }
                }
                // Lower-id endpoint chooses per balanced active edge.
                let me = ctx.id();
                let my_deg = self.active_degree();
                let own = self.active_set(ctx);
                for pos in 0..ctx.neighbors().len() {
                    let nb = ctx.neighbors()[pos];
                    let their = self.neighbor_adeg[pos] as usize;
                    if !self.st.neighbor_active[pos] || me >= nb || !self.balanced(my_deg, their) {
                        continue;
                    }
                    let lambda = self.lambda(my_deg, their);
                    let family = self.family(lambda);
                    // Alg. 6 line 2: a hash with few collisions in the
                    // chooser's own neighborhood.
                    let cap = ((self.profile.eps_acd * my_deg as f64 / 3.0).ceil() as usize).max(1);
                    let mut best = (usize::MAX, 0u64);
                    for _ in 0..16 {
                        let idx = family.sample_index(ctx.rng());
                        let c = family.member(idx).collision_count(&own);
                        if c < best.0 {
                            best = (c, idx);
                        }
                        if best.0 <= cap {
                            break;
                        }
                    }
                    let sampler = self.sampler(lambda);
                    let set_seed = sampler.sample_seed(ctx.rng());
                    self.edges[pos] = Some(EdgeScratch {
                        hash_index: best.1,
                        set_seed,
                        ..Default::default()
                    });
                    ctx.send(
                        nb,
                        Wire::UintList {
                            tag: tags::AGG_UP,
                            values: vec![best.1, set_seed],
                            bits_each: self.profile.family_bits.max(20),
                        },
                    );
                }
            }
            2 => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::UintList {
                        tag: tags::AGG_UP,
                        values,
                        ..
                    } = msg
                    {
                        if let [hash_index, set_seed] = values[..] {
                            let pos = ctx.neighbor_index(from).expect("setup from non-neighbor");
                            self.edges[pos] = Some(EdgeScratch {
                                hash_index,
                                set_seed,
                                ..Default::default()
                            });
                        }
                    }
                }
                // Compute and exchange mark vectors on every set-up edge.
                let my_deg = self.active_degree();
                let own = self.active_set(ctx);
                for pos in 0..ctx.neighbors().len() {
                    let their = self.neighbor_adeg[pos] as usize;
                    let Some(scratch) = self.edges[pos].as_mut() else {
                        continue;
                    };
                    let lambda = {
                        let (du, dv) = (my_deg, their);
                        ((6.0 * du.max(dv) as f64 / self.profile.eps_acd).ceil() as u64).max(4)
                    };
                    let h = PairwiseFamily::new(
                        mix2(self.seed, lambda),
                        lambda,
                        self.profile.family_bits,
                    )
                    .member(scratch.hash_index);
                    let sigma = self.profile.sim_sigma_cap.min(lambda).clamp(16, 512);
                    let sampler =
                        MultisetSampler::new(mix2(self.seed, 0x5e77), lambda, sigma as u32, 20);
                    let picks = Self::picks(&h, &sampler, scratch.set_seed, &own);
                    let (words, bits) = Self::marks_bitmap(&picks);
                    scratch.my_picks = picks;
                    ctx.send(
                        ctx.neighbors()[pos],
                        Wire::Bitmap {
                            tag: tags::TRIED,
                            words,
                            bits,
                        },
                    );
                }
            }
            3 => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Bitmap {
                        tag: tags::TRIED,
                        words,
                        ..
                    } = msg
                    {
                        let pos = ctx.neighbor_index(from).expect("marks from non-neighbor");
                        if let Some(scratch) = self.edges[pos].as_mut() {
                            scratch.their_marks = words.clone();
                        }
                    }
                }
                // Line 9 (relative form) + prepare ECC samples for edges
                // that pass.
                let me = ctx.id();
                let eps = self.profile.eps_acd;
                for pos in 0..ctx.neighbors().len() {
                    let nb = ctx.neighbors()[pos];
                    let Some(scratch) = self.edges[pos].clone() else {
                        continue;
                    };
                    if scratch.their_marks.is_empty() {
                        self.edges[pos] = None;
                        continue;
                    }
                    let my_marks: Vec<usize> = scratch
                        .my_picks
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.is_some())
                        .map(|(i, _)| i)
                        .collect();
                    let their_count = scratch
                        .their_marks
                        .iter()
                        .map(|w| w.count_ones() as usize)
                        .sum::<usize>();
                    let common: Vec<usize> = my_marks
                        .iter()
                        .copied()
                        .filter(|&i| {
                            scratch
                                .their_marks
                                .get(i / 64)
                                .is_some_and(|w| w & (1 << (i % 64)) != 0)
                        })
                        .collect();
                    if common.is_empty()
                        || (common.len() as f64)
                            <= (1.0 - 3.0 * eps) * my_marks.len().min(their_count) as f64
                    {
                        self.edges[pos] = None;
                        continue;
                    }
                    let edge_seed = self.edge_seed(me, nb);
                    let (bits_words, sigma2) =
                        self.sampled_ecc_bits(&scratch.my_picks, &common, edge_seed);
                    let scratch = self.edges[pos].as_mut().expect("still set");
                    scratch.my_bits = bits_words.clone();
                    scratch.sigma2 = sigma2;
                    ctx.send(
                        nb,
                        Wire::Bitmap {
                            tag: tags::ASSIGN,
                            words: bits_words,
                            bits: sigma2,
                        },
                    );
                }
            }
            _ => {
                for &(from, ref msg) in ctx.inbox() {
                    if let Wire::Bitmap {
                        tag: tags::ASSIGN,
                        words,
                        ..
                    } = msg
                    {
                        let pos = ctx.neighbor_index(from).expect("bits from non-neighbor");
                        if let Some(scratch) = self.edges[pos].as_mut() {
                            let differing: u32 = scratch
                                .my_bits
                                .iter()
                                .zip(words)
                                .map(|(a, b)| (a ^ b).count_ones())
                                .sum();
                            scratch.verdict =
                                f64::from(differing) < self.profile.eps_acd * scratch.sigma2 as f64;
                        }
                    }
                }
                for pos in 0..self.buddy.len() {
                    self.buddy[pos] = self.edges[pos]
                        .as_ref()
                        .is_some_and(|s| s.verdict && !s.my_bits.is_empty());
                }
                classify(
                    &mut self.st,
                    &self.buddy,
                    &self.neighbor_adeg,
                    self.profile.eps_acd,
                );
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for UniformBuddyPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// The fully uniform `ComputeACD`: Alg. 6 buddy tests on every edge, then
/// the shared clique-formation/verification tail.
///
/// # Errors
///
/// Propagates engine errors.
pub fn compute_acd_uniform(
    driver: &mut Driver<'_>,
    states: Vec<NodeState>,
    profile: &ParamProfile,
    seed: u64,
) -> Result<Vec<NodeState>, PassFailure> {
    let n = driver.graph.n();
    let programs: Vec<UniformBuddyPass> = states
        .into_iter()
        .map(|st| UniformBuddyPass::new(st, *profile, seed, n))
        .collect();
    let programs = driver
        .run_seeded("acd-uniform-buddy", mix2(seed, 0xacd3), programs)
        .map_err(PassFailure::from_programs)?;
    let mut states = Vec::with_capacity(programs.len());
    let mut masks = Vec::with_capacity(programs.len());
    for p in programs {
        masks.push(p.buddy.clone());
        states.push(p.into_state());
    }
    finish_acd(driver, states, masks, profile, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Palette;
    use crate::state::AcdClass;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    fn fresh_active(g: &Graph) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..=(d as u64)).collect();
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(list),
                    ColorCodec::new(&profile, 1, g.n(), 16, d),
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect()
    }

    #[test]
    fn uniform_acd_recovers_disjoint_cliques() {
        let g = gen::disjoint_cliques(3, 14);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(3));
        let states = compute_acd_uniform(&mut driver, fresh_active(&g), &profile, 7).unwrap();
        for st in &states {
            assert_eq!(st.class, AcdClass::Dense, "node {} not dense", st.id);
            assert_eq!(st.clique, Some((st.id / 14) * 14), "node {}", st.id);
            assert_eq!(st.clique_size, 14, "node {}", st.id);
        }
    }

    #[test]
    fn uniform_acd_keeps_gnp_non_dense() {
        let g = gen::gnp(100, 0.12, 5);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(4));
        let states = compute_acd_uniform(&mut driver, fresh_active(&g), &profile, 9).unwrap();
        let dense = states.iter().filter(|s| s.class == AcdClass::Dense).count();
        assert!(dense <= g.n() / 20, "{dense}/{} spuriously dense", g.n());
    }

    #[test]
    fn uniform_acd_on_planted_blend() {
        let (g, truth) = gen::planted_acd(3, 18, 0.04, 50, 0.05, 11);
        let profile = ParamProfile::laptop();
        let mut driver = Driver::new(&g, SimConfig::seeded(8));
        let states = compute_acd_uniform(&mut driver, fresh_active(&g), &profile, 13).unwrap();
        let mut dense_right = 0;
        let mut planted = 0;
        let mut bg_dense = 0;
        for (v, t) in truth.iter().enumerate() {
            if t.is_some() {
                planted += 1;
                if states[v].class == AcdClass::Dense {
                    dense_right += 1;
                }
            } else if states[v].class == AcdClass::Dense {
                bg_dense += 1;
            }
        }
        assert!(
            dense_right * 10 >= planted * 7,
            "{dense_right}/{planted} planted members dense"
        );
        assert!(
            bg_dense <= 3,
            "{bg_dense} background nodes spuriously dense"
        );
    }

    #[test]
    fn verdicts_are_symmetric() {
        // Both endpoints of every edge must reach the same buddy verdict
        // (they act on identical data).
        let g = gen::clique_blend(Default::default(), 5);
        let profile = ParamProfile::laptop();
        let programs: Vec<UniformBuddyPass> = fresh_active(&g)
            .into_iter()
            .map(|st| UniformBuddyPass::new(st, profile, 21, g.n()))
            .collect();
        let (programs, _) = congest::run(&g, programs, SimConfig::seeded(2)).unwrap();
        let masks: Vec<Vec<bool>> = programs.iter().map(|p| p.buddy.clone()).collect();
        for (u, v) in g.edges() {
            let pu = g.neighbors(u).binary_search(&v).unwrap();
            let pv = g.neighbors(v).binary_search(&u).unwrap();
            assert_eq!(
                masks[u as usize][pu], masks[v as usize][pv],
                "asymmetric verdict on ({u},{v})"
            );
        }
    }

    #[test]
    fn uniform_acd_is_congest_legal() {
        let g = gen::disjoint_cliques(2, 16);
        let profile = ParamProfile::laptop();
        let cap = congest::SimConfig::congest_bits(g.n(), 96);
        let mut driver = Driver::new(
            &g,
            congest::SimConfig {
                bandwidth: congest::Bandwidth::Strict(cap),
                ..SimConfig::seeded(6)
            },
        );
        compute_acd_uniform(&mut driver, fresh_active(&g), &profile, 3)
            .expect("uniform ACD exceeded the bandwidth cap");
    }
}
