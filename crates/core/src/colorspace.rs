//! Color-space reduction — Lemma 17 (Appendix D.3, post-shattering).
//!
//! The deterministic algorithms used after shattering have round
//! complexities depending on the color-space size, so each shattered
//! cluster first maps its colors into a `poly(log n)`-sized space by a
//! function injective on every member's palette. The paper obtains the
//! function by derandomizing a random choice with the method of
//! conditional expectations; operationally this is a deterministic scan of
//! a universal family for the first member with no palette collisions —
//! which is exactly what we implement (the scan *is* the derandomization:
//! each member either passes the exact test or the next is tried, and a
//! random member passes with probability ≥ 1/2, so the scan is short).
//!
//! The cluster leader performs the scan and broadcasts the winning index
//! (`O(log log n)`-bit description in the paper; a family index here);
//! [`reduce_color_space`] is that computation, plus the injectivity
//! certificate.

use graphs::Color;
use prand::{ColorHash, ColorHashFamily};

/// Outcome of a color-space reduction for one cluster.
#[derive(Clone, Debug)]
pub struct ColorSpaceReduction {
    /// Index of the chosen family member (what the leader broadcasts).
    pub index: u64,
    /// The reduced space size `M`.
    pub m: u64,
    /// How many members were scanned before one passed (the
    /// derandomization cost; expected ≤ 2).
    pub scanned: u32,
}

/// Find the first member of a universal family with range
/// `M = max(palette sizes)²·reserve` that is injective on every palette.
///
/// Returns `None` if no member of the family works (statistically
/// impossible for sane parameters; callers treat it as "skip reduction").
///
/// # Example
///
/// ```
/// use d1lc::colorspace::{reduce_color_space, reduced_color};
///
/// let palettes: Vec<Vec<u64>> = (0..8)
///     .map(|i| (0..20u64).map(|c| c * 1_000_003 + i).collect())
///     .collect();
/// let red = reduce_color_space(&palettes, 64, 7).expect("reduction exists");
/// // Injective on each palette: distinct colors get distinct images.
/// let h = reduced_color(&red, 7);
/// let images: std::collections::HashSet<u64> =
///     palettes[0].iter().map(|&c| h.hash(c)).collect();
/// assert_eq!(images.len(), palettes[0].len());
/// ```
pub fn reduce_color_space(
    palettes: &[Vec<Color>],
    reserve: u64,
    seed: u64,
) -> Option<ColorSpaceReduction> {
    let largest = palettes.iter().map(Vec::len).max().unwrap_or(0) as u64;
    if largest == 0 {
        return Some(ColorSpaceReduction {
            index: 0,
            m: 1,
            scanned: 0,
        });
    }
    // Birthday bound: M = L²·reserve makes a random member injective on a
    // size-L palette w.p. ≥ 1 − 1/(2·reserve); a union bound over the
    // cluster's palettes leaves success probability ≥ 1/2 for
    // reserve ≥ #palettes.
    let m = largest
        .saturating_mul(largest)
        .saturating_mul(reserve.max(1))
        .clamp(2, 1 << 60);
    let family = ColorHashFamily::new(seed, m, 16);
    let total = 1u64 << 16;
    for index in 0..total {
        let h = family.member(index);
        if palettes.iter().all(|p| h.injective_on(p)) {
            return Some(ColorSpaceReduction {
                index,
                m,
                scanned: (index + 1) as u32,
            });
        }
    }
    None
}

/// The hash the reduction denotes (receivers reconstruct it from the
/// broadcast index).
pub fn reduced_color(reduction: &ColorSpaceReduction, seed: u64) -> ColorHash {
    ColorHashFamily::new(seed, reduction.m, 16).member(reduction.index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn palettes(k: usize, len: usize, stride: u64) -> Vec<Vec<Color>> {
        (0..k as u64)
            .map(|i| (0..len as u64).map(|c| c * stride + i * 31).collect())
            .collect()
    }

    #[test]
    fn reduction_is_injective_on_every_palette() {
        let ps = palettes(10, 30, 999_983);
        let red = reduce_color_space(&ps, 64, 3).expect("reduction");
        let h = reduced_color(&red, 3);
        for p in &ps {
            let images: HashSet<u64> = p.iter().map(|&c| h.hash(c)).collect();
            assert_eq!(images.len(), p.len());
        }
    }

    #[test]
    fn scan_is_short() {
        // A random member passes w.p. ≥ 1/2, so the scan should terminate
        // within a handful of members.
        let ps = palettes(16, 25, 104_729);
        let red = reduce_color_space(&ps, 64, 9).expect("reduction");
        assert!(red.scanned <= 8, "scanned {} members", red.scanned);
    }

    #[test]
    fn reduced_space_is_quadratic_not_linear_in_colors() {
        // Colors are 60-bit; the reduced space is ~L²·reserve ≪ 2^60.
        let ps: Vec<Vec<Color>> = (0..4)
            .map(|i| (0..20u64).map(|c| (c << 50) + i).collect())
            .collect();
        let red = reduce_color_space(&ps, 16, 1).expect("reduction");
        assert!(red.m <= 20 * 20 * 16);
    }

    #[test]
    fn empty_cluster_is_trivial() {
        let red = reduce_color_space(&[], 8, 1).expect("trivial");
        assert_eq!(red.m, 1);
        let red2 = reduce_color_space(&[vec![]], 8, 1).expect("trivial");
        assert_eq!(red2.scanned, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let ps = palettes(6, 12, 7919);
        let a = reduce_color_space(&ps, 32, 5).expect("a");
        let b = reduce_color_space(&ps, 32, 5).expect("b");
        assert_eq!(a.index, b.index);
        assert_eq!(a.m, b.m);
    }
}
