//! `TryColor`, `TryRandomColor` and `GenerateSlack` (Algorithms 10–12).
//!
//! One pass = one synchronized color trial (3 rounds):
//!
//! 0. each participant draws a uniform palette color and sends it to all
//!    neighbors (encoded per receiver, App. D.3);
//! 1. a participant keeps its color iff no neighbor tried a matching one;
//!    keepers announce the adoption. Equal colors always hash equally, so
//!    mutual drops are guaranteed — simultaneous conflicts are impossible;
//! 2. everyone digests adoption announcements (palette update, `κ_v` and
//!    slack-gain accounting when requested).
//!
//! `GenerateSlack` (Alg. 10) is this pass with participation probability
//! `p_g` and chromatic-slack counting on.

use crate::passes::{announce_adoption, digest_adoption, inbox_positions, StatePass};
use crate::state::NodeState;
use crate::wire::{tags, Wire};
use congest::{Ctx, Program};
use graphs::Color;
use rand::Rng;

/// One synchronized random-color trial.
#[derive(Debug)]
pub struct TryColorPass {
    st: NodeState,
    participate_prob: f64,
    count_chroma: bool,
    pass_name: &'static str,
    candidate: Option<Color>,
    done: bool,
}

impl TryColorPass {
    /// A trial where every active uncolored node participates.
    pub fn every_node(st: NodeState, pass_name: &'static str) -> Self {
        TryColorPass {
            st,
            participate_prob: 1.0,
            count_chroma: false,
            pass_name,
            candidate: None,
            done: false,
        }
    }

    /// The `GenerateSlack` variant: participate with probability `pg` and
    /// account chromatic slack / slack gain (Alg. 10).
    pub fn generate_slack(st: NodeState, pg: f64) -> Self {
        TryColorPass {
            st,
            participate_prob: pg,
            count_chroma: true,
            pass_name: "generate-slack",
            candidate: None,
            done: false,
        }
    }
}

impl Program for TryColorPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                let participates = self.st.active
                    && self.st.uncolored()
                    && !self.st.palette.is_empty()
                    && ctx.rng().gen::<f64>() < self.participate_prob;
                if participates {
                    let colors = self.st.palette.colors();
                    let pick = ctx.rng().gen_range(0..colors.len());
                    let c = colors[pick];
                    self.candidate = Some(c);
                    let bits = self.st.codec.color_bits();
                    for pos in 0..ctx.neighbors().len() {
                        let to = ctx.neighbors()[pos];
                        let payload = self.st.codec.encode_for(pos, c);
                        ctx.send(
                            to,
                            Wire::Color {
                                tag: tags::TRIED,
                                payload,
                                bits,
                            },
                        );
                    }
                }
            }
            1 => {
                if let Some(c) = self.candidate {
                    let conflict = ctx.inbox().iter().any(|(_, msg)| {
                        matches!(msg, Wire::Color { tag: tags::TRIED, payload, .. }
                            if self.st.codec.matches_mine(c, *payload))
                    });
                    if conflict {
                        self.candidate = None;
                    } else {
                        self.st.adopt(c, self.pass_name);
                        announce_adoption(&self.st, ctx, c);
                    }
                }
            }
            _ => {
                for (pos, _, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::Color {
                        tag: tags::ADOPTED,
                        payload,
                        ..
                    } = msg
                    {
                        digest_adoption(&mut self.st, pos, *payload, self.count_chroma);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for TryColorPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph, NodeId};

    fn states_with_lists(g: &Graph, color_bits: u32, extra: usize) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..(d + 1 + extra) as u64).collect();
                let codec = ColorCodec::new(&profile, 7, g.n(), color_bits, d);
                let mut st = NodeState::new(v as NodeId, Palette::new(list), codec, d);
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect()
    }

    fn run_trials(g: &Graph, mut states: Vec<NodeState>, trials: u32, seed: u64) -> Vec<NodeState> {
        for t in 0..trials {
            let programs: Vec<_> = states
                .into_iter()
                .map(|st| TryColorPass::every_node(st, "trial"))
                .collect();
            let (programs, report) =
                congest::run(g, programs, SimConfig::seeded(seed + u64::from(t))).unwrap();
            assert!(report.completed);
            states = programs.into_iter().map(StatePass::into_state).collect();
        }
        states
    }

    fn assert_proper(g: &Graph, states: &[NodeState]) {
        for (u, v) in g.edges() {
            let (cu, cv) = (states[u as usize].color, states[v as usize].color);
            if let (Some(a), Some(b)) = (cu, cv) {
                assert_ne!(a, b, "conflict on edge ({u},{v})");
            }
        }
    }

    #[test]
    fn repeated_trials_color_a_cycle() {
        let g = gen::cycle(30);
        let states = run_trials(&g, states_with_lists(&g, 8, 0), 40, 3);
        assert_proper(&g, &states);
        let colored = states.iter().filter(|s| s.color.is_some()).count();
        assert!(colored >= 28, "only {colored}/30 colored after 40 trials");
    }

    #[test]
    fn trials_never_conflict_even_mid_run() {
        let g = gen::complete(12);
        let states = run_trials(&g, states_with_lists(&g, 8, 0), 5, 9);
        assert_proper(&g, &states);
    }

    #[test]
    fn hashed_colors_also_color_properly() {
        // 63-bit colors force the hashed path end to end.
        let g = gen::gnp(40, 0.15, 5);
        let profile = ParamProfile::laptop();
        let lists = graphs::palette::random_lists(&g, 63, 0, 11);
        let mut states: Vec<NodeState> = (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let codec = ColorCodec::new(&profile, 7, g.n(), 63, d);
                let mut st = NodeState::new(
                    v as NodeId,
                    Palette::new(lists.list(v as NodeId).to_vec()),
                    codec,
                    d,
                );
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect();
        // Codec setup first so neighbor hashes are known.
        let programs: Vec<_> = states
            .into_iter()
            .map(crate::passes::CodecSetupPass::new)
            .collect();
        let (programs, _) = congest::run(&g, programs, SimConfig::seeded(1)).unwrap();
        states = programs.into_iter().map(StatePass::into_state).collect();
        assert!(states[0].codec.hashed());
        let states = run_trials(&g, states, 30, 21);
        assert_proper(&g, &states);
        let colored = states.iter().filter(|s| s.color.is_some()).count();
        assert!(colored >= g.n() - 2, "only {colored}/{} colored", g.n());
    }

    #[test]
    fn generate_slack_counts_kappa() {
        // Star: leaves share only color space {0,1}; center list is
        // disjoint {100..}. When the center adopts, every leaf gains
        // chromatic slack.
        let g = gen::star(8);
        let profile = ParamProfile::laptop();
        let mut states: Vec<NodeState> = (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = if v == 0 {
                    (100..109).collect()
                } else {
                    vec![0, 1]
                };
                let codec = ColorCodec::new(&profile, 7, g.n(), 16, d);
                let mut st = NodeState::new(v as NodeId, Palette::new(list), codec, d);
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect();
        // Force participation: pg = 1.
        for _ in 0..3 {
            let programs: Vec<_> = states
                .into_iter()
                .map(|st| TryColorPass::generate_slack(st, 1.0))
                .collect();
            let (programs, _) = congest::run(&g, programs, SimConfig::seeded(5)).unwrap();
            states = programs.into_iter().map(StatePass::into_state).collect();
        }
        assert!(states[0].color.is_some(), "center should color itself");
        for (leaf, st) in states.iter().enumerate().take(9).skip(1) {
            assert!(
                st.chroma_slack >= 1,
                "leaf {leaf} should have chromatic slack"
            );
        }
    }

    #[test]
    fn inactive_nodes_do_not_try_but_do_digest() {
        let g = gen::path(2);
        let mut states = states_with_lists(&g, 8, 0);
        states[1].active = false;
        let states = run_trials(&g, states, 3, 2);
        assert!(states[1].color.is_none());
        if let Some(c0) = states[0].color {
            assert!(!states[1].palette.contains(c0), "digest must prune palette");
            assert!(!states[1].neighbor_uncolored[0]);
        }
    }
}
