//! Parameter profiles: every constant of the D1LC pipeline in one place.
//!
//! The paper's constants (`log⁷ n` degree threshold, `ℓ = log^{2.1} Δ`,
//! `p_g = 1/10`, `α = 1/12`, `β = 1/3`, …) are tuned for asymptotics; at
//! laptop scale `log⁷ n` exceeds `n` itself. [`ParamProfile::paper`] keeps
//! the verbatim formulas for documentation and formula-level tests, while
//! [`ParamProfile::laptop`] uses the same *shapes* with constants that let
//! every code path (sparse, uneven, dense, put-aside, shattering) actually
//! fire on graphs with `n ≤ 10⁵` (see DESIGN.md §3.3).

/// All tunable constants of the D1LC pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamProfile {
    /// `GenerateSlack` participation probability `p_g` (Alg. 10).
    pub pg: f64,
    /// ACD accuracy ε for the balanced/friend predicates (Def. 2).
    pub eps_acd: f64,
    /// Accuracy of the `EstimateSimilarity` calls inside the ACD.
    pub sim_eps: f64,
    /// Window cap for the ACD's similarity signatures (§4.2 claims the
    /// decomposition works with `log n` bandwidth; the laptop profile caps
    /// the signature at a few hundred bits accordingly).
    pub sim_sigma_cap: u64,
    /// `MultiTrial` hash parameter α (paper: 1/12).
    pub mt_alpha: f64,
    /// `MultiTrial` hash parameter β (paper: 1/3).
    pub mt_beta: f64,
    /// Base window bits per `log₂ n` for MultiTrial (σ = this · log₂ n).
    pub mt_sigma_per_log_n: u64,
    /// Lower/upper clamps on the MultiTrial window σ.
    pub mt_sigma_clamp: (u64, u64),
    /// SlackColor ladder exponent κ ∈ (1/s_min, 1] (Alg. 15).
    pub kappa: f64,
    /// Number of initial `TryRandomColor` rounds in SlackColor ("for O(1)
    /// rounds do TryRandomColor").
    pub slackcolor_initial_trials: u32,
    /// Exponent `e` of the degree-threshold function `T(x) = ⌈log₂ x⌉^e`
    /// (paper: 7).
    pub degree_threshold_exp: f64,
    /// Floor for the degree threshold (below it, the low-degree fallback
    /// phase takes over).
    pub degree_threshold_floor: usize,
    /// Exponent of the low-slack threshold `ℓ = ⌈log₂ Δ⌉^e` (paper: 2.1).
    pub ell_exp: f64,
    /// Clamps on ℓ.
    pub ell_clamp: (u64, u64),
    /// Put-aside sampling constant: `p_s = ℓ²/(c·Δ_C)` (paper: c = 48).
    pub putaside_c: f64,
    /// Number of random-color-trial rounds in the low-degree fallback
    /// phase before the deterministic cleanup.
    pub fallback_trials: u32,
    /// Exponent `d` of the color-hash space `M = (n+1)^d` (App. D.3;
    /// paper: ≥ 6).
    pub color_hash_d: u32,
    /// Hash colors on the wire when the declared color width exceeds this
    /// many bits (below it raw colors are cheap enough).
    pub hash_colors_above_bits: u32,
    /// `V_start` threshold ε̂ (App. D: slack / slack-neighbor fraction).
    pub eps_start: f64,
    /// Alg. 15 line-2 entry factor: drop out of SlackColor when
    /// `s(v) < factor·d̂(v)` (paper: 2.0; 0.0 disables the check and lets
    /// the ladder's own progress checks evict non-progressors).
    pub slack_entry_factor: f64,
    /// Whether BAD nodes (no slack, no slack-rich neighbors) skip straight
    /// to the cleanup (paper: true; at laptop scale slack amounts are tiny
    /// integers, so the laptop profile lets them try SlackColor anyway).
    pub bad_to_cleanup: bool,
    /// Family index width in bits for all representative families.
    pub family_bits: u32,
}

impl ParamProfile {
    /// The verbatim paper constants. **Not** meant to color laptop-scale
    /// graphs (the degree ladder immediately collapses: `log⁷ n > n`); it
    /// exists so the formulas themselves are testable and the asymptotic
    /// claims documented.
    pub fn paper() -> Self {
        ParamProfile {
            pg: 0.1,
            eps_acd: 0.1,
            sim_eps: 0.05,
            sim_sigma_cap: u64::MAX,
            mt_alpha: 1.0 / 12.0,
            mt_beta: 1.0 / 3.0,
            mt_sigma_per_log_n: 540, // 45·α⁻¹ = 540: Claim 1's constant
            mt_sigma_clamp: (1, u64::MAX),
            kappa: 0.5,
            slackcolor_initial_trials: 3,
            degree_threshold_exp: 7.0,
            degree_threshold_floor: 2,
            ell_exp: 2.1,
            ell_clamp: (1, u64::MAX),
            putaside_c: 48.0,
            fallback_trials: 0,
            color_hash_d: 6,
            hash_colors_above_bits: 0, // always hash
            eps_start: 0.1,
            slack_entry_factor: 2.0,
            bad_to_cleanup: true,
            family_bits: 24,
        }
    }

    /// Laptop-scale constants (default for tests, examples and benches).
    pub fn laptop() -> Self {
        ParamProfile {
            pg: 0.1,
            eps_acd: 0.25,
            // Coarser similarity ε means a smaller hash range λ relative
            // to the window σ, hence *lower* estimator variance per bit —
            // the buddy test needs coarse discrimination only.
            sim_eps: 0.5,
            sim_sigma_cap: 512,
            mt_alpha: 1.0 / 12.0,
            mt_beta: 1.0 / 3.0,
            mt_sigma_per_log_n: 12,
            mt_sigma_clamp: (96, 512),
            kappa: 0.5,
            slackcolor_initial_trials: 3,
            degree_threshold_exp: 2.0,
            degree_threshold_floor: 24,
            ell_exp: 1.2,
            ell_clamp: (4, 64),
            putaside_c: 48.0,
            fallback_trials: 48,
            color_hash_d: 6,
            hash_colors_above_bits: 40,
            eps_start: 0.1,
            slack_entry_factor: 0.0,
            bad_to_cleanup: false,
            family_bits: 16,
        }
    }

    /// MultiTrial window σ for an `n`-node graph.
    pub fn mt_sigma(&self, n: usize) -> u64 {
        let log_n = u64::from(64 - (n.max(2) as u64).leading_zeros());
        (self.mt_sigma_per_log_n * log_n).clamp(self.mt_sigma_clamp.0, self.mt_sigma_clamp.1)
    }

    /// The degree-range threshold `T(x) = max(floor, ⌈log₂ x⌉^e)`: a phase
    /// handling degrees up to `x` covers `[T(x), x]` (paper: `[log⁷x, x]`).
    pub fn degree_threshold(&self, x: usize) -> usize {
        if x < 2 {
            return self.degree_threshold_floor;
        }
        let log_x = (x as f64).log2().ceil();
        (log_x.powf(self.degree_threshold_exp) as usize).max(self.degree_threshold_floor)
    }

    /// The low-slack threshold `ℓ` (paper: `log^{2.1} Δ`, Appendix C).
    pub fn ell(&self, delta: usize) -> u64 {
        let log_d = (delta.max(2) as f64).log2().ceil();
        (log_d.powf(self.ell_exp) as u64).clamp(self.ell_clamp.0, self.ell_clamp.1)
    }

    /// The descending ladder of phase degree bounds: `Δ, T(Δ), T(T(Δ)), …`
    /// down to the floor. Phase `i` handles original degrees in
    /// `(ladder[i+1], ladder[i]]`; degrees ≤ the last entry fall to the
    /// low-degree fallback.
    pub fn degree_ladder(&self, delta: usize) -> Vec<usize> {
        let mut ladder = vec![delta.max(1)];
        loop {
            let cur = *ladder.last().expect("ladder is never empty");
            let next = self.degree_threshold(cur);
            if next >= cur || next <= self.degree_threshold_floor {
                break;
            }
            ladder.push(next);
        }
        ladder
    }
}

impl Default for ParamProfile {
    fn default() -> Self {
        Self::laptop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_degree_threshold_is_log_to_the_seventh() {
        let p = ParamProfile::paper();
        // x = 2^10: T(x) = 10^7.
        assert_eq!(p.degree_threshold(1024), 10_000_000);
        // Which exceeds any laptop-scale n — documenting why the laptop
        // profile exists.
        assert!(p.degree_threshold(1 << 20) > (1 << 20));
    }

    #[test]
    fn laptop_ladder_descends() {
        let p = ParamProfile::laptop();
        let ladder = p.degree_ladder(5000);
        assert!(ladder.windows(2).all(|w| w[1] < w[0]), "ladder {ladder:?}");
        assert_eq!(ladder[0], 5000);
        // T(5000) = ceil(log2 5000)² = 13² = 169.
        assert_eq!(ladder[1], 169);
    }

    #[test]
    fn ladder_of_tiny_graph_is_single_phase() {
        let p = ParamProfile::laptop();
        assert_eq!(p.degree_ladder(10), vec![10]);
    }

    #[test]
    fn sigma_is_clamped() {
        let p = ParamProfile::laptop();
        assert_eq!(p.mt_sigma(2), 96);
        assert!(p.mt_sigma(1 << 30) <= 512);
    }

    #[test]
    fn ell_tracks_delta() {
        let p = ParamProfile::laptop();
        assert!(p.ell(4096) >= p.ell(16));
        assert!(p.ell(1 << 30) <= 64);
        let paper = ParamProfile::paper();
        // log2(1024) = 10 → 10^2.1 ≈ 125.
        assert_eq!(paper.ell(1024), 125);
    }

    #[test]
    fn default_is_laptop() {
        assert_eq!(ParamProfile::default(), ParamProfile::laptop());
    }
}
