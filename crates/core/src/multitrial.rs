//! `MultiTrial(x)` — Algorithm 4, Lemma 6.
//!
//! A node tries up to `x = Θ(log n)` palette colors in **one** message
//! exchange of `O(log n)` bits per edge, using representative hash
//! functions:
//!
//! 0. `v` picks `h_v` from the shared family for `λ_v = 6|Ψ_v|` and
//!    broadcasts `(λ_v, i_v)`;
//! 1. `v` draws `X_v`: `x` random colors from `Ψ_v ¬_{h_v} Ψ_v` (palette
//!    colors with a unique in-window hash). For each participating
//!    neighbor `u`, `v` sends the σ-bit bitmap `b_{v→u}` marking which
//!    window values of `h_u` the colors of `X_v` occupy;
//! 2. `v` adopts a `ψ ∈ X_v` with `b_{u→v}[h_v(ψ)] = 0` for all `u` — no
//!    neighbor tried anything hashing there, so no neighbor can adopt `ψ`
//!    this round (the exclusion is *mutual*: if `u` tried `ψ` too, both
//!    see the bit set and both abstain). Adoptions are announced;
//! 3. everyone digests the announcements.
//!
//! Lemma 6: if `x ≤ |Ψ_v|/(2|N(v)|)`, one execution colors `v` with
//! probability `≥ 1 − (7/8)^x − 2ν`.

use crate::config::ParamProfile;
use crate::passes::{announce_adoption, digest_adoption, inbox_positions, StatePass};
use crate::state::NodeState;
use crate::wire::{tags, Wire};
use congest::message::bits_for_range;
use congest::{Ctx, Program};
use graphs::Color;
use prand::mix::mix2;
use prand::{bitmap_get, RepHash, RepHashFamily, RepParams};
use rand::seq::SliceRandom;

/// Shared hash-family lookup: the family for range `λ` under the global
/// MultiTrial seed. Every node derives identical families, so announcing
/// `(λ, index)` identifies a function.
pub fn family_for_lambda(
    profile: &ParamProfile,
    seed: u64,
    n: usize,
    lambda: u64,
) -> RepHashFamily {
    let sigma = profile.mt_sigma(n).min(lambda);
    let params = RepParams::practical(
        profile.mt_alpha,
        profile.mt_beta,
        lambda,
        sigma,
        profile.family_bits,
    );
    RepHashFamily::new(mix2(seed, lambda), params)
}

/// The `λ_v = 6|Ψ_v|` rule of Alg. 4, line 1.
pub fn lambda_for_palette(palette_len: usize) -> u64 {
    6 * palette_len.max(1) as u64
}

/// One `MultiTrial(x)` execution (4 rounds).
#[derive(Debug)]
pub struct MultiTrialPass {
    st: NodeState,
    x: u32,
    profile: ParamProfile,
    seed: u64,
    n: usize,
    pass_name: &'static str,
    my_hash: Option<RepHash>,
    /// `(λ_u, index_u)` for each participating neighbor position.
    neighbor_hash: Vec<Option<(u64, u64)>>,
    tried: Vec<Color>,
    done: bool,
}

impl MultiTrialPass {
    /// Try up to `x` colors for this node.
    pub fn new(
        st: NodeState,
        x: u32,
        profile: ParamProfile,
        seed: u64,
        n: usize,
        pass_name: &'static str,
    ) -> Self {
        MultiTrialPass {
            st,
            x,
            profile,
            seed,
            n,
            pass_name,
            my_hash: None,
            neighbor_hash: Vec::new(),
            tried: Vec::new(),
            done: false,
        }
    }

    fn participates(&self) -> bool {
        self.st.active && self.st.uncolored() && !self.st.palette.is_empty() && self.x > 0
    }

    fn header_bits(&self) -> u32 {
        // (λ_v, i_v): λ ≤ 6(Δ+1) ≤ 6n values, plus the family index.
        bits_for_range(6 * self.n as u64 + 7) as u32 + self.profile.family_bits
    }
}

impl Program for MultiTrialPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.done {
            return;
        }
        match ctx.round() {
            0 => {
                self.neighbor_hash = vec![None; ctx.degree()];
                if self.participates() {
                    let lambda = lambda_for_palette(self.st.palette.len());
                    let family = family_for_lambda(&self.profile, self.seed, self.n, lambda);
                    let index = family.sample_index(ctx.rng());
                    self.my_hash = Some(family.member(index));
                    ctx.broadcast(Wire::MtHash {
                        lambda,
                        index,
                        bits: self.header_bits(),
                    });
                }
            }
            1 => {
                for (pos, _, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::MtHash { lambda, index, .. } = msg {
                        self.neighbor_hash[pos] = Some((*lambda, *index));
                    }
                }
                let Some(h) = self.my_hash else { return };
                // X_v ← x random colors of Ψ_v ¬_h Ψ_v.
                let palette = self.st.palette.colors();
                let mut isolated = h.isolated(palette, palette);
                isolated.shuffle(ctx.rng());
                isolated.truncate(self.x as usize);
                self.tried = isolated;
                if self.tried.is_empty() {
                    return;
                }
                // Per participating neighbor: the bitmap over [σ_{λ_u}].
                for pos in 0..ctx.neighbors().len() {
                    let Some((lambda_u, index_u)) = self.neighbor_hash[pos] else {
                        continue;
                    };
                    let fam = family_for_lambda(&self.profile, self.seed, self.n, lambda_u);
                    let hu = fam.member(index_u);
                    let words = hu.window_bitmap(&self.tried);
                    ctx.send(
                        ctx.neighbors()[pos],
                        Wire::Bitmap {
                            tag: tags::TRIED,
                            words,
                            bits: hu.sigma(),
                        },
                    );
                }
            }
            2 => {
                if let Some(h) = self.my_hash {
                    if !self.tried.is_empty() {
                        // Collect neighbors' bitmaps (missing = tried nothing).
                        let blocked = |psi: Color| {
                            let hv = h.hash(psi);
                            ctx.inbox().iter().any(|(_, msg)| {
                                matches!(msg, Wire::Bitmap { words, .. }
                                    if bitmap_get(words, hv))
                            })
                        };
                        let winner = self.tried.iter().copied().find(|&psi| !blocked(psi));
                        if let Some(psi) = winner {
                            self.st.adopt(psi, self.pass_name);
                            announce_adoption(&self.st, ctx, psi);
                        }
                    }
                }
            }
            _ => {
                for (pos, _, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::Color {
                        tag: tags::ADOPTED,
                        payload,
                        ..
                    } = msg
                    {
                        digest_adoption(&mut self.st, pos, *payload, false);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for MultiTrialPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph, NodeId};

    fn states_with_extra(g: &Graph, extra: usize) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as NodeId);
                let list: Vec<u64> = (0..(d + 1 + extra) as u64).map(|i| i * 131).collect();
                let codec = ColorCodec::new(&profile, 7, g.n(), 32, d);
                let mut st = NodeState::new(v as NodeId, Palette::new(list), codec, d);
                st.active = true;
                st.neighbor_active = vec![true; d];
                st
            })
            .collect()
    }

    fn run_multitrial(
        g: &Graph,
        states: Vec<NodeState>,
        x: u32,
        seed: u64,
    ) -> (Vec<NodeState>, congest::RunReport) {
        let profile = ParamProfile::laptop();
        let programs: Vec<_> = states
            .into_iter()
            .map(|st| MultiTrialPass::new(st, x, profile, 99, g.n(), "mt"))
            .collect();
        let (programs, report) = congest::run(g, programs, SimConfig::seeded(seed)).unwrap();
        (
            programs.into_iter().map(StatePass::into_state).collect(),
            report,
        )
    }

    fn assert_proper(g: &Graph, states: &[NodeState]) {
        for (u, v) in g.edges() {
            if let (Some(a), Some(b)) = (states[u as usize].color, states[v as usize].color) {
                assert_ne!(a, b, "conflict on edge ({u},{v})");
            }
        }
    }

    #[test]
    fn multitrial_takes_four_rounds() {
        let g = gen::cycle(16);
        let (_, report) = run_multitrial(&g, states_with_extra(&g, 10), 4, 1);
        assert_eq!(report.rounds, 4);
    }

    #[test]
    fn no_conflicts_ever() {
        for seed in 0..5 {
            let g = gen::complete(10);
            let (states, _) = run_multitrial(&g, states_with_extra(&g, 4), 3, seed);
            assert_proper(&g, &states);
        }
    }

    #[test]
    fn high_slack_nodes_color_quickly() {
        // Lemma 6 needs x ≤ |Ψ_v|/(2|N(v)|): with palettes of ~d+200
        // colors the cap comfortably admits x = 8, and one MultiTrial
        // should color nearly everyone.
        let g = gen::gnp(80, 0.15, 3);
        let (states, _) = run_multitrial(&g, states_with_extra(&g, 200), 8, 5);
        assert_proper(&g, &states);
        let colored = states.iter().filter(|s| s.color.is_some()).count();
        assert!(
            colored * 10 >= g.n() * 8,
            "only {colored}/{} colored",
            g.n()
        );
    }

    #[test]
    fn success_rate_grows_with_x() {
        // Lemma 6 shape: within the cap x ≤ |Ψ_v|/(2|N(v)|), trying more
        // colors helps. K9 with 64-color palettes: cap = 64/16 = 4.
        let trials = 60u64;
        let mut succ = [0usize; 2];
        for (xi, &x) in [1u32, 4].iter().enumerate() {
            for t in 0..trials {
                let g = gen::complete(9);
                let (states, _) = run_multitrial(&g, states_with_extra(&g, 55), x, 100 + t);
                succ[xi] += states.iter().filter(|s| s.color.is_some()).count();
            }
        }
        assert!(
            succ[1] > succ[0],
            "x=4 ({}) should beat x=1 ({})",
            succ[1],
            succ[0]
        );
    }

    #[test]
    fn bandwidth_is_logarithmic() {
        // Strict cap: header + σ bits, far below a λ·|C|-style naive cost.
        let g = gen::gnp(64, 0.2, 7);
        let profile = ParamProfile::laptop();
        let sigma = profile.mt_sigma(64);
        let cap = sigma + 64;
        let programs: Vec<_> = states_with_extra(&g, 8)
            .into_iter()
            .map(|st| MultiTrialPass::new(st, 6, profile, 3, g.n(), "mt"))
            .collect();
        let cfg = congest::SimConfig {
            bandwidth: congest::Bandwidth::Strict(cap),
            ..SimConfig::seeded(2)
        };
        let result = congest::run(&g, programs, cfg);
        assert!(result.is_ok(), "exceeded {cap} bits: {:?}", result.err());
    }

    #[test]
    fn shared_family_is_consistent() {
        let profile = ParamProfile::laptop();
        let f1 = family_for_lambda(&profile, 5, 100, 60);
        let f2 = family_for_lambda(&profile, 5, 100, 60);
        assert_eq!(f1.member(3).hash(42), f2.member(3).hash(42));
        assert_eq!(lambda_for_palette(10), 60);
        assert_eq!(lambda_for_palette(0), 6);
    }

    #[test]
    fn inactive_nodes_try_nothing() {
        let g = gen::path(3);
        let mut states = states_with_extra(&g, 5);
        for st in &mut states {
            st.active = false;
        }
        let (states, _) = run_multitrial(&g, states, 4, 9);
        assert!(states.iter().all(|s| s.color.is_none()));
    }
}
