//! Per-node state threaded through the pipeline passes.

use crate::palette::Palette;
use crate::wire::ColorCodec;
use graphs::{Color, NodeId};

/// A node's ACD classification within the current phase (Definition 6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AcdClass {
    /// Not yet classified / not active this phase.
    #[default]
    Unclassified,
    /// `V^{sparse}`: locally sparse.
    Sparse,
    /// `V^{uneven}`: adjacent to many higher-degree nodes.
    Uneven,
    /// `V^{dense}`: member of an almost-clique.
    Dense,
}

/// The mutable per-node state shared by every pass of the D1LC pipeline.
///
/// The pipeline driver moves each node's state into the pass program,
/// runs the pass, and takes it back — see `pipeline::run_pass`.
#[derive(Clone, Debug)]
pub struct NodeState {
    /// This node's identifier.
    pub id: NodeId,
    /// Remaining candidate colors.
    pub palette: Palette,
    /// Adopted color, if any.
    pub color: Option<Color>,
    /// Whether the node participates in the current phase.
    pub active: bool,
    /// Large-color codec (own hash + neighbors' hash indices).
    pub codec: ColorCodec,
    /// Per sorted-neighbor position: is that neighbor still uncolored?
    pub neighbor_uncolored: Vec<bool>,
    /// Per sorted-neighbor position: is that neighbor active this phase?
    pub neighbor_active: Vec<bool>,
    /// ACD class in the current phase.
    pub class: AcdClass,
    /// Almost-clique hub id (the minimum-id member, used for clique-local
    /// communication), if dense.
    pub clique: Option<NodeId>,
    /// Selected leader `x_C` of the clique, if dense.
    pub leader: Option<NodeId>,
    /// Chromatic slack `κ_v` accumulated during `GenerateSlack` (Def. 7).
    pub chroma_slack: u32,
    /// Slack gained during the current phase's `GenerateSlack` (colored
    /// neighbors + same-color coincidences), for `V_start` selection.
    pub slack_gain: u32,
    /// Whether the node is an inlier of its clique.
    pub is_inlier: bool,
    /// Whether the node is in its clique's put-aside set `P_C`.
    pub put_aside: bool,
    /// Whether the clique was classified low-slack (`σ̄_C ≤ ℓ`).
    pub low_slack_clique: bool,
    /// Number of same-clique neighbors `|N_C(v)|` (set by the ACD pass).
    pub nc: u32,
    /// External degree `e_v`: active neighbors outside the clique.
    pub ext: u32,
    /// Clique size `|C|` learned from the hub aggregation.
    pub clique_size: u32,
    /// Whether this node is adjacent to the selected leader.
    pub leader_adjacent: bool,
    /// Same-clique put-aside neighbors (ids), for `G[P_C]` topology upload.
    pub pc_neighbors: Vec<NodeId>,
    /// Per sorted-neighbor position: that neighbor's clique id, if dense.
    pub neighbor_clique: Vec<Option<NodeId>>,
    /// Active uncolored neighbors that announced they received slack
    /// (`V_start` selection, Proposition 2).
    pub flagged_neighbors: u32,
    /// Pass in which the node adopted its color (for stats), if any.
    pub colored_by: Option<&'static str>,
}

impl NodeState {
    /// Fresh state for node `id` with the given list and codec.
    pub fn new(id: NodeId, palette: Palette, codec: ColorCodec, degree: usize) -> Self {
        NodeState {
            id,
            palette,
            color: None,
            active: false,
            codec,
            neighbor_uncolored: vec![true; degree],
            neighbor_active: vec![false; degree],
            class: AcdClass::Unclassified,
            clique: None,
            leader: None,
            chroma_slack: 0,
            slack_gain: 0,
            is_inlier: false,
            put_aside: false,
            low_slack_clique: false,
            nc: 0,
            ext: 0,
            clique_size: 0,
            leader_adjacent: false,
            pc_neighbors: Vec::new(),
            neighbor_clique: vec![None; degree],
            flagged_neighbors: 0,
            colored_by: None,
        }
    }

    /// Whether this node still needs a color.
    pub fn uncolored(&self) -> bool {
        self.color.is_none()
    }

    /// Number of uncolored neighbors.
    pub fn uncolored_degree(&self) -> usize {
        self.neighbor_uncolored.iter().filter(|&&b| b).count()
    }

    /// Number of neighbors that are both active (this phase) and
    /// uncolored — the competition `SlackColor` counts against.
    pub fn active_uncolored_degree(&self) -> usize {
        self.neighbor_uncolored
            .iter()
            .zip(&self.neighbor_active)
            .filter(|&(&u, &a)| u && a)
            .count()
    }

    /// The node's slack within the current participant set:
    /// `s(v) = |Ψ_v| − d̂(v)`.
    pub fn slack(&self) -> i64 {
        self.palette.len() as i64 - self.active_uncolored_degree() as i64
    }

    /// Adopt `color` permanently, crediting `pass` in the stats.
    ///
    /// # Panics
    ///
    /// Panics if the node is already colored or the color is not in the
    /// palette (both would be pipeline bugs).
    pub fn adopt(&mut self, color: Color, pass: &'static str) {
        assert!(self.color.is_none(), "node {} double-colored", self.id);
        assert!(
            self.palette.contains(color),
            "node {} adopted off-palette color",
            self.id
        );
        self.color = Some(color);
        self.colored_by = Some(pass);
        self.active = false;
    }

    /// Reset the per-phase fields (called between degree-range phases).
    pub fn reset_phase(&mut self) {
        self.class = AcdClass::Unclassified;
        self.clique = None;
        self.leader = None;
        self.chroma_slack = 0;
        self.slack_gain = 0;
        self.is_inlier = false;
        self.put_aside = false;
        self.low_slack_clique = false;
        self.nc = 0;
        self.ext = 0;
        self.clique_size = 0;
        self.leader_adjacent = false;
        self.pc_neighbors.clear();
        for c in &mut self.neighbor_clique {
            *c = None;
        }
        self.flagged_neighbors = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;

    fn state() -> NodeState {
        let codec = ColorCodec::new(&ParamProfile::laptop(), 1, 100, 16, 3);
        NodeState::new(7, Palette::new(vec![1, 2, 3, 4]), codec, 3)
    }

    #[test]
    fn fresh_state_is_uncolored() {
        let s = state();
        assert!(s.uncolored());
        assert_eq!(s.uncolored_degree(), 3);
        assert_eq!(s.active_uncolored_degree(), 0); // nobody active yet
    }

    #[test]
    fn slack_counts_active_uncolored() {
        let mut s = state();
        s.neighbor_active = vec![true, true, false];
        assert_eq!(s.active_uncolored_degree(), 2);
        assert_eq!(s.slack(), 4 - 2);
        s.neighbor_uncolored[0] = false;
        assert_eq!(s.slack(), 4 - 1);
    }

    #[test]
    fn adopt_marks_and_deactivates() {
        let mut s = state();
        s.active = true;
        s.adopt(3, "test");
        assert_eq!(s.color, Some(3));
        assert_eq!(s.colored_by, Some("test"));
        assert!(!s.active);
    }

    #[test]
    #[should_panic(expected = "double-colored")]
    fn double_adopt_panics() {
        let mut s = state();
        s.adopt(1, "a");
        s.adopt(2, "b");
    }

    #[test]
    #[should_panic(expected = "off-palette")]
    fn off_palette_adopt_panics() {
        let mut s = state();
        s.adopt(99, "a");
    }

    #[test]
    fn reset_phase_clears_acd_fields() {
        let mut s = state();
        s.class = AcdClass::Dense;
        s.clique = Some(3);
        s.put_aside = true;
        s.reset_phase();
        assert_eq!(s.class, AcdClass::Unclassified);
        assert_eq!(s.clique, None);
        assert!(!s.put_aside);
    }
}
