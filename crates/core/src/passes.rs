//! Pass infrastructure: the state-threading pattern, the codec-setup and
//! activation passes, and the adoption-digest helper shared by every pass
//! that announces colors.

use crate::state::NodeState;
use crate::wire::{tags, ColorWire, Wire};
use congest::{Ctx, Program};

/// A pass program that wraps a [`NodeState`] and returns it when the pass
/// ends.
pub trait StatePass: Program<Msg = Wire> {
    /// Recover the node state.
    fn into_state(self) -> NodeState;
}

/// Walk an inbox in lockstep with the sorted neighbor list, yielding
/// `(neighbor position, sender, message)` — O(deg) for the whole inbox,
/// versus a binary search per message.
///
/// Relies on the engine's documented inbox order (sorted by sender id,
/// see [`Ctx::inbox`]); senders are guaranteed neighbors by the engine.
pub fn inbox_positions<'a, M>(
    neighbors: &'a [graphs::NodeId],
    inbox: &'a [(graphs::NodeId, M)],
) -> impl Iterator<Item = (usize, graphs::NodeId, &'a M)> {
    let mut pos = 0usize;
    inbox.iter().map(move |&(from, ref msg)| {
        while neighbors[pos] < from {
            pos += 1;
        }
        debug_assert_eq!(neighbors[pos], from, "sender must be a neighbor");
        (pos, from, msg)
    })
}

/// Digest a neighbor's permanent-color announcement: mark it colored,
/// remove the color from the palette, and (during `GenerateSlack`) account
/// chromatic slack `κ_v` and slack gain.
///
/// Hash collisions can only remove *extra* palette colors — the true color
/// always matches its own image — so colored-neighbor conflicts are
/// structurally impossible afterwards.
pub fn digest_adoption(st: &mut NodeState, from_pos: usize, wire: ColorWire, count_chroma: bool) {
    st.neighbor_uncolored[from_pos] = false;
    let in_original = count_chroma && st.codec.original_contains(&st.palette, wire);
    let removed = st.codec.remove_from(&mut st.palette, wire);
    if count_chroma {
        if !in_original {
            st.chroma_slack += 1;
        }
        if removed == 0 {
            st.slack_gain += 1;
        }
    }
}

/// Broadcast this node's adopted color to all neighbors (per-receiver
/// encoding).
pub fn announce_adoption(st: &NodeState, ctx: &mut Ctx<'_, Wire>, color: graphs::Color) {
    let bits = st.codec.color_bits();
    for pos in 0..ctx.neighbors().len() {
        let to = ctx.neighbors()[pos];
        let payload = st.codec.encode_for(pos, color);
        ctx.send(
            to,
            Wire::Color {
                tag: tags::ADOPTED,
                payload,
                bits,
            },
        );
    }
}

/// One-time setup: every node announces its universal-hash index
/// (Appendix D.3) so neighbors can encode colors for it. 2 rounds.
#[derive(Debug)]
pub struct CodecSetupPass {
    st: NodeState,
    done: bool,
}

impl CodecSetupPass {
    /// Wrap a node state.
    pub fn new(st: NodeState) -> Self {
        CodecSetupPass { st, done: false }
    }
}

impl Program for CodecSetupPass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        match ctx.round() {
            0 => {
                let index = self.st.codec.choose_index(ctx.rng());
                let bits = self.st.codec.index_bits();
                ctx.broadcast(Wire::Uint {
                    tag: tags::ACTIVE,
                    value: index,
                    bits,
                });
            }
            _ => {
                for (pos, _, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::Uint { value, .. } = msg {
                        self.st.codec.set_neighbor_index(pos, *value);
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for CodecSetupPass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

/// Phase activation: each node decides whether it participates in the
/// current phase and everyone learns their neighbors' participation and
/// coloring status. 2 rounds.
#[derive(Debug)]
pub struct ActivatePass {
    st: NodeState,
    should_activate: bool,
    done: bool,
}

impl ActivatePass {
    /// `should_activate` is the driver's decision (degree range etc.); a
    /// colored node never activates.
    pub fn new(st: NodeState, should_activate: bool) -> Self {
        ActivatePass {
            st,
            should_activate,
            done: false,
        }
    }
}

impl Program for ActivatePass {
    type Msg = Wire;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Wire>) {
        match ctx.round() {
            0 => {
                self.st.active = self.should_activate && self.st.uncolored();
                let value = u64::from(self.st.active) | (u64::from(self.st.uncolored()) << 1);
                ctx.broadcast(Wire::Uint {
                    tag: tags::ACTIVE,
                    value,
                    bits: 2,
                });
            }
            _ => {
                for (pos, _, msg) in inbox_positions(ctx.neighbors(), ctx.inbox()) {
                    if let Wire::Uint { value, .. } = msg {
                        self.st.neighbor_active[pos] = value & 1 != 0;
                        self.st.neighbor_uncolored[pos] = value & 2 != 0;
                    }
                }
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

impl StatePass for ActivatePass {
    fn into_state(self) -> NodeState {
        self.st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParamProfile;
    use crate::palette::Palette;
    use crate::wire::ColorCodec;
    use congest::SimConfig;
    use graphs::{gen, Graph};

    pub(crate) fn fresh_states(g: &Graph, color_bits: u32) -> Vec<NodeState> {
        let profile = ParamProfile::laptop();
        (0..g.n())
            .map(|v| {
                let d = g.degree(v as u32);
                let list: Vec<u64> = (0..=d as u64).collect();
                let codec = ColorCodec::new(&profile, 7, g.n(), color_bits, d);
                NodeState::new(v as u32, Palette::new(list), codec, d)
            })
            .collect()
    }

    #[test]
    fn codec_setup_exchanges_indices() {
        let g = gen::cycle(6);
        let states = fresh_states(&g, 16);
        let programs: Vec<_> = states.into_iter().map(CodecSetupPass::new).collect();
        let (programs, report) = congest::run(&g, programs, SimConfig::seeded(1)).unwrap();
        assert!(report.completed);
        assert_eq!(report.rounds, 2);
        let states: Vec<_> = programs.into_iter().map(StatePass::into_state).collect();
        // Neighbor hash indices recorded consistently: node 0's view of
        // node 1 equals node 1's own choice. We verify via hashing one
        // color both ways.
        let c0 = &states[0].codec;
        let c1 = &states[1].codec;
        let pos_of_1_at_0 = g.neighbors(0).binary_search(&1).unwrap();
        assert_eq!(
            c0.neighbor_hash(pos_of_1_at_0).hash(42),
            c1.my_hash().hash(42)
        );
    }

    #[test]
    fn activation_propagates_flags() {
        let g = gen::path(4);
        let mut states = fresh_states(&g, 16);
        states[2].color = Some(0); // pre-colored node never activates
        let programs: Vec<_> = states
            .into_iter()
            .map(|st| {
                let on = st.id != 3; // node 3 stays out by driver decision
                ActivatePass::new(st, on)
            })
            .collect();
        let (programs, _) = congest::run(&g, programs, SimConfig::seeded(2)).unwrap();
        let states: Vec<_> = programs.into_iter().map(StatePass::into_state).collect();
        assert!(states[0].active && states[1].active);
        assert!(!states[2].active, "colored node must not activate");
        assert!(!states[3].active);
        // Node 1 sees node 2 as inactive and colored.
        let pos = g.neighbors(1).binary_search(&2).unwrap();
        assert!(!states[1].neighbor_active[pos]);
        assert!(!states[1].neighbor_uncolored[pos]);
    }

    #[test]
    fn digest_adoption_updates_palette_and_slack() {
        let g = gen::path(2);
        let mut states = fresh_states(&g, 16);
        // Node 0 hears node 1 adopt color 1 (in 0's list).
        let wire = ColorWire::Raw(1);
        digest_adoption(&mut states[0], 0, wire, true);
        assert!(!states[0].neighbor_uncolored[0]);
        assert!(!states[0].palette.contains(1));
        assert_eq!(states[0].chroma_slack, 0);
        assert_eq!(states[0].slack_gain, 0);
        // A second announcement of a color outside the list gains slack.
        let mut st = states.remove(0);
        digest_adoption(&mut st, 0, ColorWire::Raw(999), true);
        assert_eq!(st.chroma_slack, 1);
        assert_eq!(st.slack_gain, 1);
    }
}
